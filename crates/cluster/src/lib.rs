//! # cluster-sim — the server-cluster substrate
//!
//! Freon (the paper's §4–5) manages a **web server cluster fronted by a
//! load balancer**: four Apache servers behind LVS, the Linux Virtual
//! Server kernel module, using *weighted least-connections* request
//! distribution. This crate is that substrate, rebuilt as a deterministic
//! discrete-time simulation:
//!
//! * [`Request`] — a web request with CPU and disk service demands (the
//!   paper's trace mixes small static files with 25 ms CGI requests);
//! * [`Server`] — an Apache-like server: processor-sharing CPU and disk,
//!   connection tracking, boot/drain/shutdown life cycle, per-tick
//!   component utilizations (which feed Mercury's `monitord`);
//! * [`LoadBalancer`] — the LVS model: per-server weights, concurrent-
//!   connection caps, weighted least-connections routing, and the
//!   statistics queries Freon's `admd` performs;
//! * [`ClusterSim`] — glue: offer arrivals, advance one second, collect
//!   [`TickStats`].
//!
//! Everything the real Freon does to a real LVS — set a weight, cap
//! connections, quiesce a server, read per-server connection counts — has
//! the same operation here, so the Freon crate's policy code is written
//! against the identical control surface.
//!
//! ```
//! use cluster_sim::{ClusterSim, Request, ServerConfig};
//!
//! let mut sim = ClusterSim::homogeneous(4, ServerConfig::default());
//! // One second of traffic: 100 static requests.
//! let arrivals: Vec<Request> = (0..100).map(|_| Request::static_file()).collect();
//! let stats = sim.tick(arrivals);
//! assert_eq!(stats.dropped, 0);
//! assert!(sim.server(0).cpu_utilization() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod lvs;
mod request;
mod server;
mod sim;

pub use lvs::{LoadBalancer, RouteOutcome};
pub use request::{Request, RequestKind};
pub use server::{PowerState, Server, ServerConfig};
pub use sim::{ClusterSim, TickStats};
