//! The cluster simulation: servers + balancer + per-tick statistics.

use crate::lvs::{LoadBalancer, RouteOutcome};
use crate::request::Request;
use crate::server::{Server, ServerConfig};
use serde::{Deserialize, Serialize};

/// What happened during one simulated second.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TickStats {
    /// Requests offered this tick.
    pub offered: usize,
    /// Requests accepted and routed.
    pub routed: usize,
    /// Requests dropped (no eligible server below its cap).
    pub dropped: usize,
    /// Requests that finished service this tick (across all servers).
    pub completed: usize,
    /// Active connections per server after the tick.
    pub connections: Vec<usize>,
    /// CPU utilization per server over the tick.
    pub cpu_utilization: Vec<f64>,
    /// Disk utilization per server over the tick.
    pub disk_utilization: Vec<f64>,
    /// Request-seconds accumulated this tick (time-integral of requests
    /// in the system, summed over servers). With completions, Little's
    /// law yields the mean response time.
    pub request_seconds: f64,
}

/// The whole simulated cluster: N servers behind one balancer.
#[derive(Debug, Clone)]
pub struct ClusterSim {
    servers: Vec<Server>,
    lvs: LoadBalancer,
    time_s: u64,
    total_offered: u64,
    total_dropped: u64,
    total_completed: u64,
    total_request_seconds: f64,
}

impl ClusterSim {
    /// Creates a cluster of identical servers.
    pub fn homogeneous(n: usize, config: ServerConfig) -> Self {
        ClusterSim::new((0..n).map(|_| config.clone()).collect())
    }

    /// Creates a cluster from per-server configurations.
    pub fn new(configs: Vec<ServerConfig>) -> Self {
        let n = configs.len();
        ClusterSim {
            servers: configs.into_iter().map(Server::new).collect(),
            lvs: LoadBalancer::new(n),
            time_s: 0,
            total_offered: 0,
            total_dropped: 0,
            total_completed: 0,
            total_request_seconds: 0.0,
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the cluster has no servers.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Elapsed simulated seconds.
    pub fn time_s(&self) -> u64 {
        self.time_s
    }

    /// A server by index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn server(&self, index: usize) -> &Server {
        &self.servers[index]
    }

    /// Mutable server access (power control).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn server_mut(&mut self, index: usize) -> &mut Server {
        &mut self.servers[index]
    }

    /// The balancer (statistics queries).
    pub fn lvs(&self) -> &LoadBalancer {
        &self.lvs
    }

    /// Mutable balancer access (weights, caps, quiescing) — the interface
    /// Freon's `admd` drives.
    pub fn lvs_mut(&mut self) -> &mut LoadBalancer {
        &mut self.lvs
    }

    /// Requests offered since construction.
    pub fn total_offered(&self) -> u64 {
        self.total_offered
    }

    /// Requests dropped since construction.
    pub fn total_dropped(&self) -> u64 {
        self.total_dropped
    }

    /// Requests completed since construction.
    pub fn total_completed(&self) -> u64 {
        self.total_completed
    }

    /// Fraction of all offered requests that were dropped, in `[0, 1]`.
    pub fn drop_rate(&self) -> f64 {
        if self.total_offered == 0 {
            0.0
        } else {
            self.total_dropped as f64 / self.total_offered as f64
        }
    }

    /// Service sub-slots per second. Arrivals are admitted in batches
    /// interleaved with 50 ms service slices so that connections drain
    /// *during* the second — a balancer sees realistic instantaneous
    /// concurrency (Little's law) instead of a second's worth of queued
    /// arrivals, and connection caps throttle concurrency rather than
    /// blocking whole seconds of traffic.
    const SLOTS: usize = 20;

    /// Routes this tick's arrivals and advances every server by one
    /// second.
    pub fn tick(&mut self, arrivals: Vec<Request>) -> TickStats {
        let mut stats = TickStats {
            offered: arrivals.len(),
            ..TickStats::default()
        };
        for server in &mut self.servers {
            server.begin_tick();
        }
        let slice = 1.0 / Self::SLOTS as f64;
        let per_slot = arrivals.len().div_ceil(Self::SLOTS.max(1));
        let mut queue = arrivals.into_iter();
        for _ in 0..Self::SLOTS {
            for request in queue.by_ref().take(per_slot) {
                match self.lvs.route(&self.servers) {
                    RouteOutcome::Routed(i) => {
                        self.servers[i].admit(request);
                        stats.routed += 1;
                    }
                    RouteOutcome::Dropped => stats.dropped += 1,
                }
            }
            for server in &mut self.servers {
                server.serve_slice(slice);
            }
        }
        for server in &mut self.servers {
            stats.completed += server.end_tick();
            stats.request_seconds += server.tick_request_seconds();
        }
        stats.connections = self.servers.iter().map(Server::connections).collect();
        stats.cpu_utilization = self.servers.iter().map(Server::cpu_utilization).collect();
        stats.disk_utilization = self.servers.iter().map(Server::disk_utilization).collect();

        self.time_s += 1;
        self.total_offered += stats.offered as u64;
        self.total_dropped += stats.dropped as u64;
        self.total_completed += stats.completed as u64;
        self.total_request_seconds += stats.request_seconds;
        stats
    }

    /// Mean response time of completed requests so far, seconds, by
    /// Little's law (`Σ request-seconds / Σ completions`). Zero before
    /// any completion. Resolution is one service slice (50 ms).
    pub fn mean_response_time_s(&self) -> f64 {
        if self.total_completed == 0 {
            0.0
        } else {
            self.total_request_seconds / self.total_completed as f64
        }
    }

    /// Number of servers currently accepting connections.
    pub fn active_servers(&self) -> usize {
        self.servers
            .iter()
            .filter(|s| s.accepts_connections())
            .count()
    }

    /// Number of servers that are powered (anything but off).
    pub fn powered_servers(&self) -> usize {
        self.servers.iter().filter(|s| s.is_powered()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burst(n: usize) -> Vec<Request> {
        (0..n)
            .map(|i| {
                if i % 10 < 3 {
                    Request::dynamic()
                } else {
                    Request::static_file()
                }
            })
            .collect()
    }

    #[test]
    fn a_quiet_cluster_serves_everything() {
        let mut sim = ClusterSim::homogeneous(4, ServerConfig::default());
        let mut completed = 0;
        for _ in 0..10 {
            let stats = sim.tick(burst(40));
            assert_eq!(stats.dropped, 0);
            completed += stats.completed;
        }
        // Everything offered eventually completes (last tick may carry
        // residue, so allow the last batch to still be in flight).
        assert!(completed >= 360, "completed {completed}");
        assert_eq!(sim.total_dropped(), 0);
        assert_eq!(sim.drop_rate(), 0.0);
        assert_eq!(sim.time_s(), 10);
    }

    #[test]
    fn load_spreads_evenly_across_equal_servers() {
        // Uniform requests: least-connections balances counts, and equal
        // counts of equal requests mean equal utilization. (A mixed burst
        // whose sizes correlate with arrival order spreads *connections*
        // evenly but not CPU — that is faithful LVS behaviour.)
        let mut sim = ClusterSim::homogeneous(4, ServerConfig::default());
        let stats = sim.tick((0..400).map(|_| Request::dynamic()).collect());
        let max = stats.cpu_utilization.iter().cloned().fold(0.0, f64::max);
        let min = stats.cpu_utilization.iter().cloned().fold(1.0, f64::min);
        assert!(max - min < 0.15, "uneven load: {:?}", stats.cpu_utilization);
    }

    #[test]
    fn weight_changes_steer_cpu_utilization() {
        let mut sim = ClusterSim::homogeneous(2, ServerConfig::default());
        sim.lvs_mut().set_weight(0, 0.25);
        let mut u0 = 0.0;
        let mut u1 = 0.0;
        for _ in 0..5 {
            let stats = sim.tick(burst(120));
            u0 = stats.cpu_utilization[0];
            u1 = stats.cpu_utilization[1];
        }
        // With weight 0.25 vs 1.0 the hot server should settle near a
        // quarter of the other's connection count; utilization follows.
        assert!(u1 > 1.7 * u0, "weights had no effect: {u0} vs {u1}");
    }

    #[test]
    fn turning_all_servers_off_drops_everything() {
        let mut sim = ClusterSim::homogeneous(2, ServerConfig::default());
        sim.server_mut(0).shutdown_graceful();
        sim.server_mut(1).shutdown_graceful();
        let stats = sim.tick(burst(10));
        assert_eq!(stats.dropped, 10);
        assert_eq!(sim.drop_rate(), 1.0);
        assert_eq!(sim.active_servers(), 0);
        assert_eq!(sim.powered_servers(), 0);
    }

    #[test]
    fn booting_server_joins_after_boot_time() {
        let cfg = ServerConfig {
            boot_seconds: 2,
            ..Default::default()
        };
        let mut sim = ClusterSim::homogeneous(2, cfg);
        sim.server_mut(0).shutdown_graceful();
        assert_eq!(sim.active_servers(), 1);
        sim.server_mut(0).power_on();
        assert_eq!(sim.powered_servers(), 2);
        assert_eq!(sim.active_servers(), 1);
        sim.tick(vec![]);
        sim.tick(vec![]);
        assert_eq!(sim.active_servers(), 2);
    }

    #[test]
    fn overload_is_visible_in_cumulative_stats() {
        // One server, capped connections, sustained overload.
        let mut sim = ClusterSim::homogeneous(1, ServerConfig::default());
        sim.lvs_mut().set_connection_cap(0, Some(30));
        for _ in 0..20 {
            // ~1.9 s of CPU demand per tick: the backlog outgrows the cap
            // within a few seconds and everything beyond it is dropped.
            sim.tick(burst(200));
        }
        assert!(sim.total_dropped() > 0);
        assert!(sim.drop_rate() > 0.1, "drop rate {}", sim.drop_rate());
        assert!(sim.total_completed() > 0);
    }

    #[test]
    fn response_time_grows_with_queueing() {
        // Light load: requests finish within their arrival slice, so the
        // mean response time stays near the slice resolution.
        let mut light = ClusterSim::homogeneous(1, ServerConfig::default());
        for _ in 0..20 {
            light.tick(burst(20));
        }
        let light_rt = light.mean_response_time_s();
        assert!(light_rt < 0.2, "light-load response time {light_rt}");

        // Sustained overload backs requests up behind the 256-connection
        // queue: response times grow by an order of magnitude.
        let mut heavy = ClusterSim::homogeneous(1, ServerConfig::default());
        for _ in 0..20 {
            heavy.tick(burst(150)); // ~1.4 s of CPU work per second
        }
        let heavy_rt = heavy.mean_response_time_s();
        assert!(
            heavy_rt > 3.0 * light_rt,
            "no queueing delay: {light_rt} vs {heavy_rt}"
        );
    }

    #[test]
    fn response_time_is_zero_before_any_completion() {
        let sim = ClusterSim::homogeneous(1, ServerConfig::default());
        assert_eq!(sim.mean_response_time_s(), 0.0);
    }

    #[test]
    fn tick_stats_shapes_match_server_count() {
        let mut sim = ClusterSim::homogeneous(3, ServerConfig::default());
        let stats = sim.tick(vec![]);
        assert_eq!(stats.connections.len(), 3);
        assert_eq!(stats.cpu_utilization.len(), 3);
        assert_eq!(stats.disk_utilization.len(), 3);
        assert_eq!(stats.offered, 0);
    }
}
