//! The LVS model: weighted least-connections request distribution.
//!
//! The paper's load balancer is LVS, "a kernel module for Linux, with
//! weighted least-connections request distribution" (§4.1): each request
//! goes to the server with the smallest `connections / weight` ratio.
//! Freon steers load by lowering a hot server's weight and by capping its
//! number of concurrent connections; Freon-EC additionally quiesces
//! servers entirely. This module reproduces exactly that control surface.

use crate::server::Server;
use serde::{Deserialize, Serialize};

/// Why a request was (not) routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteOutcome {
    /// Routed to the server with this index.
    Routed(usize),
    /// Every eligible server was at its connection cap (or none was
    /// eligible): the request is lost, as in the paper's overload runs.
    Dropped,
}

/// Per-server balancer state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Backend {
    /// LVS weight; 0 removes the server from the rotation.
    weight: f64,
    /// Maximum concurrent connections admitted (`None` = unlimited).
    connection_cap: Option<usize>,
    /// Whether the balancer has been told to stop using this server
    /// (Freon-EC's remove-from-rotation before shutdown).
    quiesced: bool,
}

impl Default for Backend {
    fn default() -> Self {
        Backend {
            weight: 1.0,
            connection_cap: None,
            quiesced: false,
        }
    }
}

/// The weighted least-connections balancer.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadBalancer {
    backends: Vec<Backend>,
}

impl LoadBalancer {
    /// Creates a balancer for `n` servers, all at weight 1, uncapped.
    pub fn new(n: usize) -> Self {
        LoadBalancer {
            backends: vec![Backend::default(); n],
        }
    }

    /// Number of servers the balancer knows about.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// Whether the balancer has no servers.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Sets a server's weight. Weight 0 removes it from the rotation
    /// without disturbing existing connections. Negative or non-finite
    /// weights are clamped to 0.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn set_weight(&mut self, server: usize, weight: f64) {
        let w = if weight.is_finite() {
            weight.max(0.0)
        } else {
            0.0
        };
        self.backends[server].weight = w;
    }

    /// A server's current weight.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn weight(&self, server: usize) -> f64 {
        self.backends[server].weight
    }

    /// Caps the number of concurrent connections the balancer will allow
    /// on a server — Freon's second lever: "limit the maximum allowed
    /// number of concurrent requests to the hot server".
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn set_connection_cap(&mut self, server: usize, cap: Option<usize>) {
        self.backends[server].connection_cap = cap;
    }

    /// A server's connection cap, if any.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn connection_cap(&self, server: usize) -> Option<usize> {
        self.backends[server].connection_cap
    }

    /// Removes a server from the rotation (existing connections drain
    /// naturally) or restores it.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn set_quiesced(&mut self, server: usize, quiesced: bool) {
        self.backends[server].quiesced = quiesced;
    }

    /// Whether a server is quiesced.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn is_quiesced(&self, server: usize) -> bool {
        self.backends[server].quiesced
    }

    /// Clears Freon's restrictions (weight back to 1, cap removed) — what
    /// `admd` does when a server cools below its low thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn clear_restrictions(&mut self, server: usize) {
        self.backends[server].weight = 1.0;
        self.backends[server].connection_cap = None;
    }

    /// Routes one request: picks the eligible server minimizing
    /// `connections / weight` (LVS's weighted least-connections), honours
    /// connection caps, and reports a drop when no server can take it.
    ///
    /// Eligible means: accepting connections, not quiesced, weight > 0,
    /// and below its cap.
    pub fn route(&self, servers: &[Server]) -> RouteOutcome {
        debug_assert_eq!(servers.len(), self.backends.len());
        let mut best: Option<(usize, f64)> = None;
        for (i, (server, backend)) in servers.iter().zip(&self.backends).enumerate() {
            if backend.quiesced || backend.weight <= 0.0 || !server.accepts_connections() {
                continue;
            }
            if server.connections() >= server.config().max_connections {
                continue;
            }
            if let Some(cap) = backend.connection_cap {
                if server.connections() >= cap {
                    continue;
                }
            }
            let ratio = server.connections() as f64 / backend.weight;
            match best {
                Some((_, best_ratio)) if ratio >= best_ratio => {}
                _ => best = Some((i, ratio)),
            }
        }
        match best {
            Some((i, _)) => RouteOutcome::Routed(i),
            None => RouteOutcome::Dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use crate::server::{Server, ServerConfig};

    fn servers(n: usize) -> Vec<Server> {
        (0..n)
            .map(|_| Server::new(ServerConfig::default()))
            .collect()
    }

    fn route_and_admit(lvs: &LoadBalancer, servers: &mut [Server]) -> RouteOutcome {
        let outcome = lvs.route(servers);
        if let RouteOutcome::Routed(i) = outcome {
            servers[i].admit(Request::static_file());
        }
        outcome
    }

    #[test]
    fn equal_weights_balance_connection_counts() {
        let lvs = LoadBalancer::new(4);
        let mut s = servers(4);
        for _ in 0..40 {
            assert!(matches!(
                route_and_admit(&lvs, &mut s),
                RouteOutcome::Routed(_)
            ));
        }
        for server in &s {
            assert_eq!(server.connections(), 10);
        }
    }

    #[test]
    fn weights_shift_load_proportionally() {
        let mut lvs = LoadBalancer::new(2);
        lvs.set_weight(0, 3.0);
        lvs.set_weight(1, 1.0);
        let mut s = servers(2);
        for _ in 0..40 {
            route_and_admit(&lvs, &mut s);
        }
        // conns/weight equalizes: 30/3 == 10/1.
        assert_eq!(s[0].connections(), 30);
        assert_eq!(s[1].connections(), 10);
    }

    #[test]
    fn zero_weight_removes_from_rotation() {
        let mut lvs = LoadBalancer::new(2);
        lvs.set_weight(0, 0.0);
        let mut s = servers(2);
        for _ in 0..10 {
            assert_eq!(route_and_admit(&lvs, &mut s), RouteOutcome::Routed(1));
        }
        assert_eq!(s[0].connections(), 0);
    }

    #[test]
    fn connection_caps_spill_to_other_servers_then_drop() {
        let mut lvs = LoadBalancer::new(2);
        lvs.set_connection_cap(0, Some(3));
        lvs.set_connection_cap(1, Some(5));
        let mut s = servers(2);
        let mut dropped = 0;
        for _ in 0..12 {
            if route_and_admit(&lvs, &mut s) == RouteOutcome::Dropped {
                dropped += 1;
            }
        }
        assert_eq!(s[0].connections(), 3);
        assert_eq!(s[1].connections(), 5);
        assert_eq!(dropped, 4);
    }

    #[test]
    fn quiesced_and_offline_servers_are_skipped() {
        let mut lvs = LoadBalancer::new(3);
        lvs.set_quiesced(0, true);
        let mut s = servers(3);
        s[1].shutdown_graceful(); // idle -> Off immediately
        for _ in 0..6 {
            assert_eq!(route_and_admit(&lvs, &mut s), RouteOutcome::Routed(2));
        }
        // All gone -> drops.
        lvs.set_quiesced(2, true);
        assert_eq!(lvs.route(&s), RouteOutcome::Dropped);
        assert!(lvs.is_quiesced(2));
    }

    #[test]
    fn clear_restrictions_resets_weight_and_cap() {
        let mut lvs = LoadBalancer::new(1);
        lvs.set_weight(0, 0.2);
        lvs.set_connection_cap(0, Some(1));
        lvs.clear_restrictions(0);
        assert_eq!(lvs.weight(0), 1.0);
        assert_eq!(lvs.connection_cap(0), None);
    }

    #[test]
    fn bad_weights_are_clamped() {
        let mut lvs = LoadBalancer::new(1);
        lvs.set_weight(0, f64::NAN);
        assert_eq!(lvs.weight(0), 0.0);
        lvs.set_weight(0, -4.0);
        assert_eq!(lvs.weight(0), 0.0);
    }

    #[test]
    fn lower_weight_receives_fraction_of_load() {
        // Freon's adjustment: weight w on a hot server vs 1.0 elsewhere
        // steers roughly w/(w+...) of new connections away.
        let mut lvs = LoadBalancer::new(2);
        lvs.set_weight(0, 0.25);
        let mut s = servers(2);
        for _ in 0..50 {
            route_and_admit(&lvs, &mut s);
        }
        assert_eq!(s[0].connections(), 10); // 10/0.25 == 40/1.0
        assert_eq!(s[1].connections(), 40);
    }
}
