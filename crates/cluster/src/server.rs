//! The Apache-like server model.

use crate::request::Request;
use serde::{Deserialize, Serialize};

/// Static configuration of one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// CPU service capacity, milliseconds of CPU work per second
    /// (1000 = one core at full speed).
    pub cpu_capacity_ms: f64,
    /// Disk service capacity, milliseconds of disk work per second.
    pub disk_capacity_ms: f64,
    /// Seconds from "power on" until the server accepts connections —
    /// the paper notes "turning on a server takes quite some time", which
    /// is why Freon-EC projects load into the future.
    pub boot_seconds: u32,
    /// Hard limit on concurrent connections (Apache's `MaxClients`).
    /// Beyond it the balancer has nowhere to put a request and drops it —
    /// this is where the traditional policy's "14% of requests" go when
    /// too few servers remain.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cpu_capacity_ms: 1000.0,
            disk_capacity_ms: 1000.0,
            boot_seconds: 30,
            max_connections: 256,
        }
    }
}

/// Power/lifecycle state of a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerState {
    /// Serving (or ready to serve) requests.
    On,
    /// Powered on, still booting; accepts no connections yet.
    Booting {
        /// Seconds until the server reaches [`PowerState::On`].
        remaining: u32,
    },
    /// Accepting no *new* connections, finishing the current ones, then
    /// turning off — how the paper turns a server off: "instructing LVS to
    /// stop using the server, waiting for its current connections to
    /// terminate, and then shutting it down".
    Draining,
    /// Powered off.
    Off,
}

/// One simulated server: a processor-sharing CPU and disk working through
/// its active connections.
#[derive(Debug, Clone)]
pub struct Server {
    config: ServerConfig,
    state: PowerState,
    active: Vec<Request>,
    completed_last_tick: usize,
    cpu_utilization: f64,
    disk_utilization: f64,
    tick_cpu_used: f64,
    tick_disk_used: f64,
    tick_completed: usize,
    tick_request_seconds: f64,
    /// CPU frequency scale in `[MIN_SPEED_SCALE, 1]` — the DVFS /
    /// clock-throttling lever the paper's §4.3 compares Freon against.
    speed_scale: f64,
}

/// The lowest CPU frequency scale a server supports (real parts offer a
/// limited set of voltage/frequency pairs; we allow a continuous range
/// down to a quarter speed).
pub const MIN_SPEED_SCALE: f64 = 0.25;

impl Server {
    /// Creates a powered-on, idle server.
    pub fn new(config: ServerConfig) -> Self {
        Server {
            config,
            state: PowerState::On,
            active: Vec::new(),
            completed_last_tick: 0,
            cpu_utilization: 0.0,
            disk_utilization: 0.0,
            tick_cpu_used: 0.0,
            tick_disk_used: 0.0,
            tick_completed: 0,
            tick_request_seconds: 0.0,
            speed_scale: 1.0,
        }
    }

    /// The current CPU frequency scale in `[MIN_SPEED_SCALE, 1]`.
    pub fn speed_scale(&self) -> f64 {
        self.speed_scale
    }

    /// Sets the CPU frequency scale (DVFS / clock throttling). Values are
    /// clamped to `[MIN_SPEED_SCALE, 1]`; non-finite input resets to full
    /// speed. At scale `s` the CPU serves `s × cpu_capacity_ms` of work
    /// per second; utilization is reported relative to the *scaled*
    /// capacity, exactly as a real `/proc` reading would behave.
    pub fn set_speed_scale(&mut self, scale: f64) {
        self.speed_scale = if scale.is_finite() {
            scale.clamp(MIN_SPEED_SCALE, 1.0)
        } else {
            1.0
        };
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Current lifecycle state.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// Whether the server accepts new connections right now.
    pub fn accepts_connections(&self) -> bool {
        self.state == PowerState::On
    }

    /// Whether the server consumes power right now (anything but `Off`).
    pub fn is_powered(&self) -> bool {
        self.state != PowerState::Off
    }

    /// Number of active connections.
    pub fn connections(&self) -> usize {
        self.active.len()
    }

    /// CPU utilization over the last tick, in `[0, 1]` — what `monitord`
    /// reports to Mercury for this server's CPU.
    pub fn cpu_utilization(&self) -> f64 {
        self.cpu_utilization
    }

    /// Disk utilization over the last tick, in `[0, 1]`.
    pub fn disk_utilization(&self) -> f64 {
        self.disk_utilization
    }

    /// Requests completed during the last tick.
    pub fn completed_last_tick(&self) -> usize {
        self.completed_last_tick
    }

    /// Hands the server a new connection.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when called on a server that does not accept
    /// connections; the load balancer never routes to one.
    pub(crate) fn admit(&mut self, request: Request) {
        debug_assert!(
            self.accepts_connections(),
            "routed to a non-accepting server"
        );
        self.active.push(request);
    }

    /// Begins the power-on sequence. No-op unless the server is off.
    pub fn power_on(&mut self) {
        if self.state == PowerState::Off {
            self.state = if self.config.boot_seconds == 0 {
                PowerState::On
            } else {
                PowerState::Booting {
                    remaining: self.config.boot_seconds,
                }
            };
        }
    }

    /// Begins a graceful shutdown: stop accepting, drain, then off.
    pub fn shutdown_graceful(&mut self) {
        match self.state {
            PowerState::On => {
                self.state = if self.active.is_empty() {
                    PowerState::Off
                } else {
                    PowerState::Draining
                };
            }
            PowerState::Booting { .. } => self.state = PowerState::Off,
            PowerState::Draining | PowerState::Off => {}
        }
    }

    /// Immediately cuts power, aborting active connections. Returns how
    /// many connections were killed.
    pub fn shutdown_hard(&mut self) -> usize {
        let killed = self.active.len();
        self.active.clear();
        self.state = PowerState::Off;
        self.cpu_utilization = 0.0;
        self.disk_utilization = 0.0;
        killed
    }

    /// Whether the server is in a state that performs service this tick.
    fn is_serving(&self) -> bool {
        matches!(self.state, PowerState::On | PowerState::Draining)
    }

    /// Starts a new one-second tick: resets the per-tick accumulators.
    pub(crate) fn begin_tick(&mut self) {
        self.tick_cpu_used = 0.0;
        self.tick_disk_used = 0.0;
        self.tick_completed = 0;
        self.tick_request_seconds = 0.0;
    }

    /// Request-seconds accumulated this tick: the time-integral of the
    /// number of requests in the system (Little's law turns this into a
    /// mean response time: `Σ request-seconds / Σ completions`).
    pub(crate) fn tick_request_seconds(&self) -> f64 {
        self.tick_request_seconds
    }

    /// Serves `fraction` of one second of capacity by processor sharing.
    /// The cluster simulation calls this many times per tick, interleaved
    /// with request admission, so connections drain *during* the second —
    /// matching how a real balancer observes concurrency.
    pub(crate) fn serve_slice(&mut self, fraction: f64) {
        if !self.is_serving() {
            return;
        }
        let mut cpu_left = self.config.cpu_capacity_ms * self.speed_scale * fraction;
        let mut disk_left = self.config.disk_capacity_ms * fraction;
        // Round-based processor sharing: split the remaining budget
        // equally among connections that still need that resource; repeat
        // until the budget or the demand is exhausted.
        for _ in 0..32 {
            let cpu_hungry = self
                .active
                .iter()
                .filter(|r| r.remaining_cpu_ms() > 1e-9)
                .count();
            let disk_hungry = self
                .active
                .iter()
                .filter(|r| r.remaining_disk_ms() > 1e-9)
                .count();
            if (cpu_hungry == 0 || cpu_left <= 1e-9) && (disk_hungry == 0 || disk_left <= 1e-9) {
                break;
            }
            let cpu_share = if cpu_hungry > 0 {
                cpu_left / cpu_hungry as f64
            } else {
                0.0
            };
            let disk_share = if disk_hungry > 0 {
                disk_left / disk_hungry as f64
            } else {
                0.0
            };
            for r in &mut self.active {
                let want_cpu = if r.remaining_cpu_ms() > 1e-9 {
                    cpu_share
                } else {
                    0.0
                };
                let want_disk = if r.remaining_disk_ms() > 1e-9 {
                    disk_share
                } else {
                    0.0
                };
                let (c, d) = r.serve(want_cpu, want_disk);
                cpu_left -= c;
                disk_left -= d;
                self.tick_cpu_used += c;
                self.tick_disk_used += d;
            }
        }
        self.active.retain(|r| {
            if r.is_complete() {
                self.tick_completed += 1;
                false
            } else {
                true
            }
        });
        // Requests still in the system at the end of the slice have spent
        // (at least) the slice in it; completed requests spent part of it,
        // which this under-counts by at most one slice each — a bounded,
        // documented approximation.
        self.tick_request_seconds += self.active.len() as f64 * fraction;
    }

    /// Finishes the tick: computes utilizations and advances the
    /// lifecycle. Returns the number of requests completed this tick.
    pub(crate) fn end_tick(&mut self) -> usize {
        match self.state {
            PowerState::Off => {
                self.cpu_utilization = 0.0;
                self.disk_utilization = 0.0;
            }
            PowerState::Booting { remaining } => {
                // Booting consumes CPU (disk spin-up, daemon start): the
                // paper observes that a machine turning on spikes its CPU
                // utilization and temperature.
                self.cpu_utilization = 1.0;
                self.disk_utilization = 0.5;
                self.state = if remaining <= 1 {
                    PowerState::On
                } else {
                    PowerState::Booting {
                        remaining: remaining - 1,
                    }
                };
            }
            PowerState::On | PowerState::Draining => {
                self.cpu_utilization = (self.tick_cpu_used
                    / (self.config.cpu_capacity_ms * self.speed_scale))
                    .clamp(0.0, 1.0);
                self.disk_utilization =
                    (self.tick_disk_used / self.config.disk_capacity_ms).clamp(0.0, 1.0);
                if self.state == PowerState::Draining && self.active.is_empty() {
                    self.state = PowerState::Off;
                }
            }
        }
        self.completed_last_tick = self.tick_completed;
        self.tick_completed
    }

    /// Advances the server by one second of processor-sharing service
    /// with all of this tick's work already admitted. Returns the number
    /// of requests completed.
    pub fn tick(&mut self) -> usize {
        self.begin_tick();
        self.serve_slice(1.0);
        self.end_tick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Request, RequestKind};

    #[test]
    fn idle_server_has_zero_utilization() {
        let mut s = Server::new(ServerConfig::default());
        assert_eq!(s.tick(), 0);
        assert_eq!(s.cpu_utilization(), 0.0);
        assert_eq!(s.disk_utilization(), 0.0);
        assert!(s.accepts_connections());
    }

    #[test]
    fn utilization_tracks_offered_cpu_work() {
        let mut s = Server::new(ServerConfig::default());
        // 20 CGI requests × 25 ms = 500 ms of CPU work -> 50% utilization.
        for _ in 0..20 {
            s.admit(Request::dynamic());
        }
        let done = s.tick();
        assert_eq!(done, 20, "all requests fit within one second");
        assert!(
            (s.cpu_utilization() - 0.5).abs() < 0.01,
            "cpu {}",
            s.cpu_utilization()
        );
    }

    #[test]
    fn overload_carries_work_across_ticks() {
        let mut s = Server::new(ServerConfig::default());
        // 60 × 25 ms = 1500 ms of CPU demand: one second cannot finish it.
        for _ in 0..60 {
            s.admit(Request::dynamic());
        }
        let done_first = s.tick();
        assert!(done_first < 60);
        assert!((s.cpu_utilization() - 1.0).abs() < 1e-6);
        assert!(s.connections() > 0);
        let done_second = s.tick();
        assert_eq!(done_first + done_second, 60);
        assert!(s.cpu_utilization() < 1.0);
    }

    #[test]
    fn processor_sharing_is_fair_across_mixed_work() {
        let mut s = Server::new(ServerConfig::default());
        for _ in 0..10 {
            s.admit(Request::dynamic());
            s.admit(Request::static_file());
        }
        s.tick();
        // 10×25 + 10×2 = 270 ms CPU; 10×1 + 10×6 = 70 ms disk.
        assert!((s.cpu_utilization() - 0.27).abs() < 0.01);
        assert!((s.disk_utilization() - 0.07).abs() < 0.01);
        assert_eq!(s.connections(), 0);
    }

    #[test]
    fn boot_sequence_takes_configured_time_and_burns_cpu() {
        let mut s = Server::new(ServerConfig {
            boot_seconds: 3,
            ..Default::default()
        });
        s.shutdown_graceful();
        assert_eq!(s.state(), PowerState::Off);
        s.power_on();
        assert_eq!(s.state(), PowerState::Booting { remaining: 3 });
        assert!(!s.accepts_connections());
        s.tick();
        assert_eq!(s.cpu_utilization(), 1.0, "booting spikes the cpu");
        s.tick();
        s.tick();
        assert_eq!(s.state(), PowerState::On);
        assert!(s.accepts_connections());
    }

    #[test]
    fn graceful_shutdown_drains_first() {
        let mut s = Server::new(ServerConfig::default());
        for _ in 0..80 {
            s.admit(Request::dynamic()); // 2 s of CPU work
        }
        s.shutdown_graceful();
        assert_eq!(s.state(), PowerState::Draining);
        assert!(!s.accepts_connections());
        s.tick();
        assert_eq!(s.state(), PowerState::Draining, "still busy");
        s.tick();
        assert_eq!(s.state(), PowerState::Off, "drained and powered down");
    }

    #[test]
    fn graceful_shutdown_of_idle_server_is_immediate() {
        let mut s = Server::new(ServerConfig::default());
        s.shutdown_graceful();
        assert_eq!(s.state(), PowerState::Off);
    }

    #[test]
    fn hard_shutdown_kills_connections() {
        let mut s = Server::new(ServerConfig::default());
        for _ in 0..5 {
            s.admit(Request::new(RequestKind::Dynamic, 10_000.0, 0.0));
        }
        assert_eq!(s.shutdown_hard(), 5);
        assert_eq!(s.state(), PowerState::Off);
        assert_eq!(s.connections(), 0);
        assert_eq!(s.cpu_utilization(), 0.0);
    }

    #[test]
    fn power_on_is_noop_unless_off() {
        let mut s = Server::new(ServerConfig::default());
        s.power_on();
        assert_eq!(s.state(), PowerState::On);
    }

    #[test]
    fn zero_boot_time_powers_on_instantly() {
        let mut s = Server::new(ServerConfig {
            boot_seconds: 0,
            ..Default::default()
        });
        s.shutdown_graceful();
        s.power_on();
        assert_eq!(s.state(), PowerState::On);
    }

    #[test]
    fn speed_scale_halves_throughput_and_rescales_utilization() {
        let mut s = Server::new(ServerConfig::default());
        s.set_speed_scale(0.5);
        assert_eq!(s.speed_scale(), 0.5);
        // 30 CGI × 25 ms = 750 ms of CPU work; at half speed only 500 ms
        // can be served in one second.
        for _ in 0..30 {
            s.admit(Request::new(RequestKind::Dynamic, 25.0, 0.0));
        }
        let done = s.tick();
        assert!(done < 30, "half-speed CPU finished everything");
        // Utilization is relative to the scaled capacity: saturated.
        assert!((s.cpu_utilization() - 1.0).abs() < 1e-6);
        // Back to full speed, the backlog clears.
        s.set_speed_scale(1.0);
        s.tick();
        assert_eq!(s.connections(), 0);
    }

    #[test]
    fn speed_scale_clamps_bad_values() {
        let mut s = Server::new(ServerConfig::default());
        s.set_speed_scale(0.01);
        assert_eq!(s.speed_scale(), MIN_SPEED_SCALE);
        s.set_speed_scale(3.0);
        assert_eq!(s.speed_scale(), 1.0);
        s.set_speed_scale(f64::NAN);
        assert_eq!(s.speed_scale(), 1.0);
    }

    #[test]
    fn speed_scale_leaves_the_disk_alone() {
        let mut s = Server::new(ServerConfig::default());
        s.set_speed_scale(0.25);
        for _ in 0..100 {
            s.admit(Request::new(RequestKind::Static, 0.0, 8.0)); // 800 ms disk
        }
        s.tick();
        assert!(
            (s.disk_utilization() - 0.8).abs() < 0.01,
            "disk {}",
            s.disk_utilization()
        );
    }

    #[test]
    fn disk_bound_work_saturates_the_disk_not_the_cpu() {
        let mut s = Server::new(ServerConfig::default());
        for _ in 0..300 {
            s.admit(Request::new(RequestKind::Static, 1.0, 10.0)); // 3 s of disk
        }
        s.tick();
        assert!((s.disk_utilization() - 1.0).abs() < 1e-6);
        assert!(s.cpu_utilization() < 0.5);
    }
}
