//! Web requests and their service demands.

use serde::{Deserialize, Serialize};

/// Kind of content a request asks for, mirroring the paper's synthetic
/// trace: "30% of requests to dynamic content in the form of a simple CGI
/// script that computes for 25 ms and produces a small reply" (§5), the
/// rest static files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// A static file: little CPU, some disk.
    Static,
    /// A CGI request: CPU-bound (25 ms of compute in the paper's trace).
    Dynamic,
}

/// Default CPU demand of a static request, milliseconds.
pub const STATIC_CPU_MS: f64 = 2.0;
/// Default disk demand of a static request, milliseconds.
pub const STATIC_DISK_MS: f64 = 6.0;
/// Default CPU demand of a dynamic (CGI) request, milliseconds — the
/// paper's 25 ms script.
pub const DYNAMIC_CPU_MS: f64 = 25.0;
/// Default disk demand of a dynamic request, milliseconds.
pub const DYNAMIC_DISK_MS: f64 = 1.0;

/// One client request with its remaining service demands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    kind: RequestKind,
    cpu_ms: f64,
    disk_ms: f64,
    remaining_cpu_ms: f64,
    remaining_disk_ms: f64,
}

impl Request {
    /// Creates a request with explicit demands (non-finite or negative
    /// demands are clamped to zero).
    pub fn new(kind: RequestKind, cpu_ms: f64, disk_ms: f64) -> Self {
        let cpu = if cpu_ms.is_finite() {
            cpu_ms.max(0.0)
        } else {
            0.0
        };
        let disk = if disk_ms.is_finite() {
            disk_ms.max(0.0)
        } else {
            0.0
        };
        Request {
            kind,
            cpu_ms: cpu,
            disk_ms: disk,
            remaining_cpu_ms: cpu,
            remaining_disk_ms: disk,
        }
    }

    /// A default static-file request.
    pub fn static_file() -> Self {
        Request::new(RequestKind::Static, STATIC_CPU_MS, STATIC_DISK_MS)
    }

    /// A default dynamic (25 ms CGI) request.
    pub fn dynamic() -> Self {
        Request::new(RequestKind::Dynamic, DYNAMIC_CPU_MS, DYNAMIC_DISK_MS)
    }

    /// The request's kind.
    pub fn kind(&self) -> RequestKind {
        self.kind
    }

    /// Total CPU demand, ms.
    pub fn cpu_ms(&self) -> f64 {
        self.cpu_ms
    }

    /// Total disk demand, ms.
    pub fn disk_ms(&self) -> f64 {
        self.disk_ms
    }

    /// CPU demand not yet served, ms.
    pub fn remaining_cpu_ms(&self) -> f64 {
        self.remaining_cpu_ms
    }

    /// Disk demand not yet served, ms.
    pub fn remaining_disk_ms(&self) -> f64 {
        self.remaining_disk_ms
    }

    /// Serves up to the given budgets; returns `(cpu_used, disk_used)`.
    pub(crate) fn serve(&mut self, cpu_budget_ms: f64, disk_budget_ms: f64) -> (f64, f64) {
        let cpu_used = self.remaining_cpu_ms.min(cpu_budget_ms.max(0.0));
        self.remaining_cpu_ms -= cpu_used;
        let disk_used = self.remaining_disk_ms.min(disk_budget_ms.max(0.0));
        self.remaining_disk_ms -= disk_used;
        (cpu_used, disk_used)
    }

    /// Whether every demand has been served.
    pub fn is_complete(&self) -> bool {
        self.remaining_cpu_ms <= 1e-9 && self.remaining_disk_ms <= 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_papers_trace_recipe() {
        let cgi = Request::dynamic();
        assert_eq!(cgi.kind(), RequestKind::Dynamic);
        assert_eq!(cgi.cpu_ms(), 25.0);
        let file = Request::static_file();
        assert_eq!(file.kind(), RequestKind::Static);
        assert!(file.cpu_ms() < cgi.cpu_ms());
        assert!(file.disk_ms() > cgi.disk_ms());
    }

    #[test]
    fn serving_drains_demands_and_completes() {
        let mut r = Request::new(RequestKind::Dynamic, 10.0, 4.0);
        assert!(!r.is_complete());
        let (c, d) = r.serve(6.0, 10.0);
        assert_eq!((c, d), (6.0, 4.0));
        assert!(!r.is_complete());
        let (c, d) = r.serve(100.0, 100.0);
        assert_eq!((c, d), (4.0, 0.0));
        assert!(r.is_complete());
        // Further service consumes nothing.
        assert_eq!(r.serve(5.0, 5.0), (0.0, 0.0));
    }

    #[test]
    fn bad_demands_are_clamped() {
        let r = Request::new(RequestKind::Static, -5.0, f64::NAN);
        assert_eq!(r.cpu_ms(), 0.0);
        assert_eq!(r.disk_ms(), 0.0);
        assert!(r.is_complete());
    }

    #[test]
    fn negative_budgets_serve_nothing() {
        let mut r = Request::static_file();
        assert_eq!(r.serve(-1.0, -1.0), (0.0, 0.0));
        assert_eq!(r.remaining_cpu_ms(), STATIC_CPU_MS);
    }
}
