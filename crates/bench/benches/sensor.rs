//! M2: `readsensor` latency — the paper measures ≈ 300 µs per read over
//! its UDP implementation, vs 500 µs for the real SCSI in-disk sensor.

use criterion::{criterion_group, criterion_main, Criterion};
use mercury::net::proto::{self, Reply, Request};
use mercury::net::{Sensor, ServiceConfig, SolverService};
use mercury::presets::{self, nodes};
use std::hint::black_box;

fn bench_sensor(c: &mut Criterion) {
    let service =
        SolverService::spawn_machine(&presets::validation_machine(), ServiceConfig::fast())
            .expect("service spawns on loopback");
    let sensor = Sensor::open(service.local_addr(), "", nodes::DISK_SHELL).expect("sensor opens");

    c.bench_function("readsensor_udp_loopback", |b| {
        b.iter(|| black_box(sensor.read().expect("read succeeds")));
    });

    c.bench_function("proto_encode_utilization_update", |b| {
        let update = Request::UtilizationUpdate {
            machine: "machine1".into(),
            utilizations: vec![
                ("cpu".into(), 0.73),
                ("disk_platters".into(), 0.21),
                ("nic".into(), 0.05),
            ],
        };
        b.iter(|| black_box(proto::encode_request(&update)));
    });

    c.bench_function("proto_decode_temperature_reply", |b| {
        let encoded = proto::encode_reply(&Reply::Temperature {
            celsius: 35.25,
            time: 1234.0,
        });
        b.iter(|| black_box(proto::decode_reply(&encoded).expect("decodes")));
    });

    sensor.close();
    service.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_sensor
}
criterion_main!(benches);
