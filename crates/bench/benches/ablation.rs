//! Ablation bench: the solver's stability limit trades sub-step count
//! (cost, measured here) against integration error (measured by
//! `experiments ablation_substeps`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mercury::presets::{self, nodes};
use mercury::solver::{Solver, SolverConfig};
use std::hint::black_box;

fn bench_substep_limits(c: &mut Criterion) {
    let model = presets::validation_machine();
    let mut group = c.benchmark_group("solver_tick_by_stability_limit");
    for limit in [0.05, 0.1, 0.25, 0.5, 1.0] {
        let cfg = SolverConfig {
            stability_limit: limit,
            ..SolverConfig::default()
        };
        let mut solver = Solver::new(&model, cfg).unwrap();
        solver.set_utilization(nodes::CPU, 0.7).unwrap();
        let substeps = solver.substeps_per_tick();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{limit}_({substeps}_substeps)")),
            &limit,
            |b, _| {
                b.iter(|| {
                    solver.step();
                    black_box(solver.time());
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_substep_limits
}
criterion_main!(benches);
