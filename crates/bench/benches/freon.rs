//! Freon kernels: controller math, tempd observation, and one full
//! closed-loop experiment second.

use cluster_sim::{ClusterSim, ServerConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use freon::{
    Experiment, ExperimentConfig, FreonConfig, FreonPolicy, PdController, Tempd, ThermalPolicy,
};
use std::hint::black_box;
use workload_gen::{DiurnalProfile, RequestMix, WorkloadGenerator};

fn bench_freon(c: &mut Criterion) {
    c.bench_function("pd_controller_output", |b| {
        let mut pd = PdController::paper();
        let mut t = 67.5;
        b.iter(|| {
            t = 67.0 + (t * 1.01) % 3.0;
            black_box(pd.output(t, 67.0))
        });
    });

    c.bench_function("tempd_observe_two_components", |b| {
        let cfg = FreonConfig::paper();
        let mut tempd = Tempd::new(&cfg);
        let temps = vec![
            ("cpu".to_string(), 68.0),
            ("disk_platters".to_string(), 55.0),
        ];
        b.iter(|| black_box(tempd.observe(&temps, &cfg)));
    });

    c.bench_function("experiment_second_closed_loop", |b| {
        // Amortized cost of one engine second: cluster tick + monitord +
        // Mercury tick + policy, measured over a 200 s run.
        let model = mercury::presets::freon_cluster(4);
        let mix = RequestMix::paper();
        let peak = mix.rps_for_cpu_utilization(0.7, 4, 1000.0);
        let profile = DiurnalProfile::new(200.0, peak * 0.5, peak);
        let trace = WorkloadGenerator::new(profile, mix, 1).generate(200);
        b.iter(|| {
            let sim = ClusterSim::homogeneous(4, ServerConfig::default());
            let config = ExperimentConfig {
                duration_s: 200,
                ..Default::default()
            };
            let mut policy = FreonPolicy::new(FreonConfig::paper(), 4);
            let log = Experiment::new(&model, sim, &trace, None, config)
                .unwrap()
                .run(&mut policy)
                .unwrap();
            black_box((log.len(), policy.name().len()))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_freon
}
criterion_main!(benches);
