//! M3 and the motivation: one CFD steady-state solve vs Mercury, plus
//! the plant's per-second cost.

use criterion::{criterion_group, criterion_main, Criterion};
use mercury::presets::{self, nodes};
use mercury::solver::{Solver, SolverConfig};
use reference_models::fluent2d::{CaseConfig, Component, Fluent2d};
use reference_models::Plant;
use std::hint::black_box;

fn bench_reference(c: &mut Criterion) {
    c.bench_function("fluent2d_coarse_steady_solve", |b| {
        let mut case = Fluent2d::server_case(CaseConfig::coarse());
        case.set_power(Component::Cpu, 19.0);
        case.set_power(Component::Disk, 11.5);
        case.set_power(Component::Psu, 40.0);
        b.iter(|| black_box(case.solve(1e-5, 400_000).expect("converges")));
    });

    // The apples-to-apples comparison the paper motivates Mercury with:
    // reaching one operating point with the CFD stand-in vs emulating a
    // whole ten-minute transient.
    c.bench_function("mercury_600s_transient", |b| {
        let model = presets::validation_machine();
        b.iter(|| {
            let mut solver = Solver::new(&model, SolverConfig::default()).unwrap();
            solver.set_utilization(nodes::CPU, 0.6).unwrap();
            solver.step_for(600);
            black_box(solver.temperature(nodes::CPU).unwrap())
        });
    });

    c.bench_function("plant_step_1s", |b| {
        let mut plant = Plant::pentium3_testbed(1);
        plant.set_cpu_utilization(0.7);
        b.iter(|| {
            plant.step();
            black_box(plant.time_s());
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_reference
}
criterion_main!(benches);
