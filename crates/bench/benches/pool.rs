//! Tick-pool and fused-replay benchmarks: persistent workers vs
//! spawn-per-tick scheduling, and fused multi-tick replay vs a per-tick
//! `step()` loop.
//!
//! The pool benches time a single parallel cluster tick under each
//! scheduler at two thread's worth of work — the delta is pure per-tick
//! orchestration (condvar wake vs thread spawn/join). The replay bench
//! drives the paper's trace-replay shape: a long constant-utilization
//! span where the fused path keeps chunk matrices hot and pays
//! plan/gather/scatter once per span.

use criterion::{criterion_group, criterion_main, Criterion};
use mercury::presets::{self, nodes};
use mercury::solver::{ClusterSolver, SolverConfig, TickScheduler};
use std::hint::black_box;

const POOL_THREADS: usize = 2;

/// A warmed-up replicated cluster at 70% CPU on every machine.
fn steady_cluster(n: usize, threads: usize, scheduler: TickScheduler) -> ClusterSolver {
    let model = presets::validation_cluster(n);
    let mut s = ClusterSolver::new(&model, SolverConfig::default()).unwrap();
    s.set_threads(threads);
    s.set_scheduler(scheduler);
    for i in 1..=n {
        s.set_utilization(&format!("machine{i}"), nodes::CPU, 0.7)
            .unwrap();
    }
    for _ in 0..20 {
        s.step(); // builds the batch plan (and spawns the pool)
    }
    s
}

fn bench_pool_vs_spawn(c: &mut Criterion, n: usize) {
    for (label, scheduler) in [
        ("pool", TickScheduler::Pool),
        ("spawn", TickScheduler::SpawnPerTick),
    ] {
        c.bench_function(&format!("cluster{n}_pool_vs_spawn/{label}"), |b| {
            let mut s = steady_cluster(n, POOL_THREADS, scheduler);
            b.iter(|| {
                s.step();
                black_box(&s);
            });
        });
    }
}

fn bench_replay_fused_vs_loop(c: &mut Criterion) {
    // The paper's replay shape: 10k ticks of constant utilization. One
    // iteration is the whole trace, so expect few, long samples.
    const TICKS: usize = 10_000;
    const MACHINES: usize = 256;
    let mut group = c.benchmark_group("replay_fused_vs_loop");
    group.sample_size(10);
    group.bench_function("per_tick_loop", |b| {
        let mut s = steady_cluster(MACHINES, 1, TickScheduler::Pool);
        b.iter(|| (0..TICKS).for_each(|_| s.step()));
    });
    group.bench_function("fused", |b| {
        let mut s = steady_cluster(MACHINES, 1, TickScheduler::Pool);
        b.iter(|| s.step_for(TICKS));
    });
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    bench_pool_vs_spawn(c, 256);
    bench_pool_vs_spawn(c, 1024);
    bench_replay_fused_vs_loop(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_pool
}
criterion_main!(benches);
