//! M1: the solver's per-iteration cost (the paper reports ≈ 100 µs per
//! iteration on 2006 hardware for the Table 1 graphs).

use criterion::{criterion_group, criterion_main, Criterion};
use mercury::presets::{self, nodes};
use mercury::solver::{ClusterSolver, SimdBackend, Solver, SolverConfig};
use std::hint::black_box;

fn bench_solver(c: &mut Criterion) {
    let model = presets::validation_machine();

    c.bench_function("solver_tick_table1", |b| {
        let mut solver = Solver::new(&model, SolverConfig::default()).unwrap();
        solver.set_utilization(nodes::CPU, 0.7).unwrap();
        solver.set_utilization(nodes::DISK_PLATTERS, 0.4).unwrap();
        b.iter(|| {
            solver.step();
            black_box(solver.time());
        });
    });

    c.bench_function("solver_tick_cluster4", |b| {
        let cluster = presets::validation_cluster(4);
        let mut solver = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        for i in 1..=4 {
            solver
                .set_utilization(&format!("machine{i}"), nodes::CPU, 0.7)
                .unwrap();
        }
        b.iter(|| {
            solver.step();
            black_box(solver.time());
        });
    });

    c.bench_function("solver_tick_cluster64_serial", |b| {
        let cluster = presets::validation_cluster(64);
        let mut solver = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        solver.set_threads(1);
        for i in 1..=64 {
            solver
                .set_utilization(&format!("machine{i}"), nodes::CPU, 0.7)
                .unwrap();
        }
        b.iter(|| {
            solver.step();
            black_box(solver.time());
        });
    });

    c.bench_function("solver_tick_cluster64_parallel", |b| {
        let cluster = presets::validation_cluster(64);
        let mut solver = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        solver.set_threads(0); // auto: one chunk per available core
        for i in 1..=64 {
            solver
                .set_utilization(&format!("machine{i}"), nodes::CPU, 0.7)
                .unwrap();
        }
        b.iter(|| {
            solver.step();
            black_box(solver.time());
        });
    });

    // Replicated-room scaling: the batched SoA path vs per-machine
    // stepping, single-threaded so the comparison is pure kernel effect.
    for &n in &[256usize, 1024] {
        for &(label, batching) in &[("batched", true), ("per_machine", false)] {
            c.bench_function(&format!("solver_tick_cluster{n}_{label}"), |b| {
                let cluster = presets::validation_cluster(n);
                let mut solver = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
                solver.set_batching(batching);
                solver.set_threads(1);
                for i in 1..=n {
                    solver
                        .set_utilization(&format!("machine{i}"), nodes::CPU, 0.7)
                        .unwrap();
                }
                solver.step(); // build the batch plan outside the timing
                b.iter(|| {
                    solver.step();
                    black_box(solver.time());
                });
            });
        }
    }

    // SIMD lane-width evidence: the batched 1024-machine tick on every
    // backend the host supports (exact mode), named by backend and lane
    // width, plus fast-math on the auto-selected backend.
    for backend in SimdBackend::ALL.into_iter().filter(|b| b.supported()) {
        let name = format!(
            "solver_tick_cluster1024_simd_{}_w{}",
            backend.name(),
            backend.lane_width()
        );
        c.bench_function(&name, |b| {
            let cluster = presets::validation_cluster(1024);
            let mut solver = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
            solver.set_threads(1);
            solver.set_simd_backend(backend).unwrap();
            for i in 1..=1024 {
                solver
                    .set_utilization(&format!("machine{i}"), nodes::CPU, 0.7)
                    .unwrap();
            }
            solver.step(); // build the batch plan outside the timing
            b.iter(|| {
                solver.step();
                black_box(solver.time());
            });
        });
    }
    c.bench_function("solver_tick_cluster1024_simd_fast_math", |b| {
        let cluster = presets::validation_cluster(1024);
        let mut solver = ClusterSolver::new(&cluster, SolverConfig::default()).unwrap();
        solver.set_threads(1);
        solver.set_fast_math(true);
        for i in 1..=1024 {
            solver
                .set_utilization(&format!("machine{i}"), nodes::CPU, 0.7)
                .unwrap();
        }
        solver.step();
        b.iter(|| {
            solver.step();
            black_box(solver.time());
        });
    });

    c.bench_function("solver_temperature_query", |b| {
        let solver = Solver::new(&model, SolverConfig::default()).unwrap();
        b.iter(|| black_box(solver.temperature(nodes::CPU_AIR).unwrap()));
    });

    c.bench_function("solver_steady_state_from_cold", |b| {
        b.iter(|| {
            let mut solver = Solver::new(&model, SolverConfig::default()).unwrap();
            solver.set_utilization(nodes::CPU, 1.0).unwrap();
            black_box(solver.run_to_steady_state(1e-4, 50_000));
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_solver
}
criterion_main!(benches);
