//! Cluster-substrate kernels: LVS routing and one simulated second under
//! the paper's peak load.

use cluster_sim::{ClusterSim, Request, ServerConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn peak_arrivals() -> Vec<Request> {
    // ≈ the §5 peak: 315 requests/s, 30% CGI.
    (0..315)
        .map(|i| {
            if i % 10 < 3 {
                Request::dynamic()
            } else {
                Request::static_file()
            }
        })
        .collect()
}

fn bench_cluster(c: &mut Criterion) {
    c.bench_function("lvs_route_one_request", |b| {
        let sim = ClusterSim::homogeneous(4, ServerConfig::default());
        b.iter(|| {
            // Route against a snapshot of four idle servers.
            black_box(
                sim.lvs()
                    .route(std::array::from_fn::<_, 4, _>(|i| sim.server(i).clone()).as_slice()),
            )
        });
    });

    c.bench_function("cluster_tick_peak_load_4_servers", |b| {
        let mut sim = ClusterSim::homogeneous(4, ServerConfig::default());
        b.iter(|| black_box(sim.tick(peak_arrivals())));
    });

    c.bench_function("cluster_tick_idle_16_servers", |b| {
        let mut sim = ClusterSim::homogeneous(16, ServerConfig::default());
        b.iter(|| black_box(sim.tick(Vec::new())));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_cluster
}
criterion_main!(benches);
