//! Input-language costs: lexing, parsing, and lowering the Table 1
//! machine plus the Figure 1c room.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const SOURCE: &str = include_str!("../../../assets/server.mdl");

fn bench_graphdl(c: &mut Criterion) {
    c.bench_function("graphdl_lex_server_mdl", |b| {
        b.iter(|| black_box(mercury_graphdl::lexer::lex(SOURCE).expect("lexes")));
    });

    c.bench_function("graphdl_parse_and_lower_server_mdl", |b| {
        b.iter(|| black_box(mercury_graphdl::parse(SOURCE).expect("parses")));
    });

    c.bench_function("graphdl_emit_dot", |b| {
        let library = mercury_graphdl::parse(SOURCE).expect("parses");
        let machine = library.machine("server").expect("server defined");
        b.iter(|| black_box(mercury_graphdl::dot::air_flow_to_dot(machine)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(60);
    targets = bench_graphdl
}
criterion_main!(benches);
