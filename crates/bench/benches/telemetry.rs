//! Telemetry-layer kernels: the raw handle costs the always-on
//! instrumentation pays on every solver tick, plus the scrape-side
//! render/parse round-trip.

use criterion::{criterion_group, criterion_main, Criterion};
use mercury::presets::{self, nodes};
use mercury::solver::{Solver, SolverConfig};
use std::hint::black_box;
use telemetry::{Counter, Histogram, Registry};

fn bench_telemetry(c: &mut Criterion) {
    c.bench_function("counter_inc", |b| {
        let counter = Counter::new();
        b.iter(|| {
            counter.inc();
            black_box(&counter);
        });
    });

    c.bench_function("histogram_observe", |b| {
        let histogram = Histogram::new();
        let mut x = 1u64;
        b.iter(|| {
            histogram.observe(black_box(x));
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        });
    });

    c.bench_function("solver_tick_instrumented", |b| {
        let model = presets::validation_machine();
        let mut solver = Solver::new(&model, SolverConfig::default()).unwrap();
        solver.set_utilization(nodes::CPU, 0.7).unwrap();
        solver.set_instrumentation(true);
        b.iter(|| solver.step());
        black_box(solver.metrics().ticks.get());
    });

    c.bench_function("solver_tick_uninstrumented", |b| {
        let model = presets::validation_machine();
        let mut solver = Solver::new(&model, SolverConfig::default()).unwrap();
        solver.set_utilization(nodes::CPU, 0.7).unwrap();
        solver.set_instrumentation(false);
        b.iter(|| solver.step());
    });

    c.bench_function("render_and_parse_exposition", |b| {
        let registry = Registry::new();
        let model = presets::validation_cluster(8);
        let mut cluster =
            mercury::solver::ClusterSolver::new(&model, SolverConfig::default()).unwrap();
        cluster.metrics().register(&registry);
        cluster.step_for(50);
        b.iter(|| {
            let text = registry.render_prometheus();
            black_box(telemetry::text::parse_exposition(&text).unwrap());
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_telemetry
}
criterion_main!(benches);
