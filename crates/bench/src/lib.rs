//! Criterion benchmark crate for the Mercury & Freon reproduction.
//!
//! The benches live under `benches/`; see DESIGN.md section 4 (M1-M3)
//! for which paper numbers each regenerates. Run with:
//!
//! ```text
//! cargo bench -p bench
//! ```
