//! Property tests: any valid machine model round-trips through the
//! description language, and the lexer never panics on arbitrary input.

use mercury::model::{AirKind, MachineModel};
use mercury_graphdl::{parse, writer};
use proptest::prelude::*;

/// A strategy for component/air names, including ones that need quoting.
fn node_name() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z][a-z0-9_]{0,8}",
        "[a-z ][a-z 0-9]{1,8}", // spaces force quoting
    ]
    .prop_filter("non-empty after trim", |s| !s.trim().is_empty())
}

/// Builds a random but always-valid machine: a chain of air regions from
/// an inlet to an exhaust, with components hanging off random regions.
fn machine() -> impl Strategy<Value = MachineModel> {
    (
        proptest::collection::vec(node_name(), 1..5), // component names
        2usize..6,                                    // interior air regions
        proptest::collection::vec(
            (0.01f64..5.0, 100.0f64..2000.0, 0.0f64..50.0, 0.0f64..50.0),
            1..5,
        ),
        proptest::collection::vec(0.05f64..5.0, 1..5), // ks
        0.1f64..80.0,                                  // fan cfm
        -10.0f64..45.0,                                // inlet temp
    )
        .prop_map(|(mut comp_names, airs, specs, ks, fan, inlet)| {
            comp_names.sort();
            comp_names.dedup();
            let mut b = MachineModel::builder("m");
            b.inlet("inlet");
            for i in 0..airs {
                b.air_with_mass(
                    format!("air{i}"),
                    0.004 + i as f64 * 0.001,
                    AirKind::Internal,
                );
            }
            b.exhaust("exhaust");
            // A straight chain: inlet -> air0 -> ... -> exhaust.
            b.air_edge("inlet", "air0", 1.0).unwrap();
            for i in 1..airs {
                b.air_edge(&format!("air{}", i - 1), &format!("air{i}"), 1.0)
                    .unwrap();
            }
            b.air_edge(&format!("air{}", airs - 1), "exhaust", 1.0)
                .unwrap();
            // Components attach to air regions round-robin.
            for (i, name) in comp_names.iter().enumerate() {
                let spec = specs[i % specs.len()];
                let (mass, c, p0, p1) = spec;
                let (pmin, pmax) = if p0 <= p1 { (p0, p1) } else { (p1, p0) };
                b.component(name.clone())
                    .mass_kg(mass)
                    .specific_heat(c)
                    .power_range(pmin, pmax);
                let k = ks[i % ks.len()];
                b.heat_edge(name, &format!("air{}", i % airs), k).unwrap();
            }
            b.fan_cfm(fan).inlet_temperature_c(inlet);
            b.build().expect("generated machines are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// write → parse reproduces the model exactly, constants included.
    #[test]
    fn machine_round_trips(model in machine()) {
        let text = writer::machine_to_graphdl(&model);
        let library = parse(&text)
            .unwrap_or_else(|e| panic!("emitted text failed to parse: {e}\n{text}"));
        prop_assert_eq!(library.machine("m").expect("machine m emitted"), &model);
    }

    /// The lexer and parser never panic, whatever bytes arrive.
    #[test]
    fn parser_is_total_on_garbage(input in "\\PC{0,200}") {
        let _ = parse(&input);
    }

    /// Structured-looking garbage does not panic either.
    #[test]
    fn parser_is_total_on_almost_valid_input(
        keyword in "(machine|cluster|widget)",
        body in "[a-z{}\\[\\]=;>, -]{0,80}",
    ) {
        let _ = parse(&format!("{keyword} m {{ {body} }}"));
    }
}
