//! Lowering: AST → validated `mercury` models.

use crate::ast::{attr, Attribute, Block, BlockKind, Document, EdgeOp, Statement};
use crate::error::{ParseError, Span};
use mercury::model::{
    AirKind, ClusterEndpoint, ClusterModel, MachineModel, PowerModel, DEFAULT_AIR_REGION_MASS_KG,
};

/// Everything a document defines: named machines and named clusters.
#[derive(Debug, Clone, Default)]
pub struct Library {
    machines: Vec<MachineModel>,
    clusters: Vec<(String, ClusterModel)>,
}

impl Library {
    /// All machines, in declaration order.
    pub fn machines(&self) -> &[MachineModel] {
        &self.machines
    }

    /// All `(name, cluster)` pairs, in declaration order.
    pub fn clusters(&self) -> &[(String, ClusterModel)] {
        &self.clusters
    }

    /// A machine by its declared name.
    pub fn machine(&self, name: &str) -> Option<&MachineModel> {
        self.machines.iter().find(|m| m.name() == name)
    }

    /// A cluster by its declared name.
    pub fn cluster(&self, name: &str) -> Option<&ClusterModel> {
        self.clusters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)
    }
}

fn num(attrs: &[Attribute], key: &str, span: Span) -> Result<Option<f64>, ParseError> {
    match attr(attrs, key) {
        None => Ok(None),
        Some(a) => {
            a.value.as_number().map(Some).ok_or_else(|| {
                ParseError::at(a.span, format!("attribute `{key}` must be a number"))
            })
        }
    }
    .map_err(|e| {
        if e.span().is_some() {
            e
        } else {
            ParseError::at(span, e.message().to_string())
        }
    })
}

fn require_num(attrs: &[Attribute], key: &str, span: Span) -> Result<f64, ParseError> {
    num(attrs, key, span)?
        .ok_or_else(|| ParseError::at(span, format!("missing required attribute `{key}`")))
}

fn text<'a>(attrs: &'a [Attribute], key: &str) -> Result<Option<&'a str>, ParseError> {
    match attr(attrs, key) {
        None => Ok(None),
        Some(a) => a
            .value
            .as_text()
            .map(Some)
            .ok_or_else(|| ParseError::at(a.span, format!("attribute `{key}` must be a name"))),
    }
}

const KNOWN_COMPONENT_ATTRS: &[&str] = &["type", "mass", "c", "pmin", "pmax", "power", "monitored"];
const KNOWN_AIR_ATTRS: &[&str] = &["type", "mass"];

fn reject_unknown_attrs(attrs: &[Attribute], known: &[&str]) -> Result<(), ParseError> {
    for a in attrs {
        if !known.contains(&a.key.as_str()) {
            return Err(ParseError::at(
                a.span,
                format!(
                    "unknown attribute `{}` (expected one of {})",
                    a.key,
                    known.join(", ")
                ),
            ));
        }
    }
    Ok(())
}

fn lower_machine(block: &Block) -> Result<MachineModel, ParseError> {
    let mut builder = MachineModel::builder(block.name.clone());
    for stmt in &block.statements {
        match stmt {
            Statement::Assign { key, value, span } => {
                let v = value.as_number().ok_or_else(|| {
                    ParseError::at(*span, format!("setting `{key}` must be a number"))
                })?;
                match key.as_str() {
                    "fan" => {
                        builder.fan_cfm(v);
                    }
                    "inlet_temperature" => {
                        builder.inlet_temperature_c(v);
                    }
                    other => {
                        return Err(ParseError::at(
                            *span,
                            format!("unknown machine setting `{other}` (expected `fan` or `inlet_temperature`)"),
                        ))
                    }
                }
            }
            Statement::Node { name, attrs, span } => {
                let kind = text(attrs, "type")?.ok_or_else(|| {
                    ParseError::at(*span, format!("node `{name}` needs a `type` attribute"))
                })?;
                match kind {
                    "component" => {
                        reject_unknown_attrs(attrs, KNOWN_COMPONENT_ATTRS)?;
                        let mass = require_num(attrs, "mass", *span)?;
                        let c = require_num(attrs, "c", *span)?;
                        let power = match (num(attrs, "power", *span)?, num(attrs, "pmin", *span)?, num(attrs, "pmax", *span)?) {
                            (Some(w), None, None) => PowerModel::Constant(mercury::units::Watts(w)),
                            (None, Some(pmin), Some(pmax)) => PowerModel::linear(pmin, pmax),
                            (None, None, None) => PowerModel::Constant(mercury::units::Watts(0.0)),
                            _ => {
                                return Err(ParseError::at(
                                    *span,
                                    format!("component `{name}` must use either `power=<W>` or `pmin=`+`pmax=`"),
                                ))
                            }
                        };
                        let constant = matches!(power, PowerModel::Constant(_));
                        let monitored = match text(attrs, "monitored")? {
                            Some("true") => true,
                            Some("false") => false,
                            Some(other) => {
                                return Err(ParseError::at(
                                    *span,
                                    format!("`monitored` must be true or false, found `{other}`"),
                                ))
                            }
                            None => !constant,
                        };
                        let mut handle = builder.component(name.clone());
                        handle
                            .mass_kg(mass)
                            .specific_heat(c)
                            .power_model(power)
                            .monitored(monitored);
                    }
                    air_kind @ ("air" | "inlet" | "exhaust") => {
                        reject_unknown_attrs(attrs, KNOWN_AIR_ATTRS)?;
                        let mass =
                            num(attrs, "mass", *span)?.unwrap_or(DEFAULT_AIR_REGION_MASS_KG);
                        let kind = match air_kind {
                            "inlet" => AirKind::Inlet,
                            "exhaust" => AirKind::Exhaust,
                            _ => AirKind::Internal,
                        };
                        builder.air_with_mass(name.clone(), mass, kind);
                    }
                    other => {
                        return Err(ParseError::at(
                            *span,
                            format!("unknown node type `{other}` (expected component, air, inlet, or exhaust)"),
                        ))
                    }
                }
            }
            Statement::Edge {
                from,
                op,
                to,
                attrs,
                span,
            } => {
                if from.machine.is_some() || to.machine.is_some() {
                    return Err(ParseError::at(
                        *span,
                        "machine blocks cannot reference other machines' nodes".to_string(),
                    ));
                }
                match op {
                    EdgeOp::Heat => {
                        let k = require_num(attrs, "k", *span)?;
                        builder
                            .heat_edge(&from.node, &to.node, k)
                            .map_err(|e| ParseError::at(*span, e.to_string()))?;
                    }
                    EdgeOp::Air => {
                        let fraction = require_num(attrs, "fraction", *span)?;
                        builder
                            .air_edge(&from.node, &to.node, fraction)
                            .map_err(|e| ParseError::at(*span, e.to_string()))?;
                    }
                }
            }
        }
    }
    builder
        .build()
        .map_err(|e| ParseError::at(block.span, e.to_string()))
}

enum ClusterNodeKind {
    Supply,
    Junction,
    Machine,
}

fn lower_cluster(block: &Block, machines: &[MachineModel]) -> Result<ClusterModel, ParseError> {
    let mut builder = ClusterModel::builder();
    let mut local: Vec<(String, ClusterNodeKind, Option<usize>)> = Vec::new();

    // First pass: declarations.
    for stmt in &block.statements {
        match stmt {
            Statement::Node { name, attrs, span } => {
                let kind = text(attrs, "type")?.ok_or_else(|| {
                    ParseError::at(*span, format!("node `{name}` needs a `type` attribute"))
                })?;
                match kind {
                    "supply" => {
                        let t = require_num(attrs, "temperature", *span)?;
                        builder.supply(name.clone(), t);
                        local.push((name.clone(), ClusterNodeKind::Supply, None));
                    }
                    "junction" => {
                        builder.junction(name.clone());
                        local.push((name.clone(), ClusterNodeKind::Junction, None));
                    }
                    "machine" => {
                        let model_name = text(attrs, "model")?.ok_or_else(|| {
                            ParseError::at(
                                *span,
                                format!("machine instance `{name}` needs `model=<machine>`"),
                            )
                        })?;
                        let model = machines
                            .iter()
                            .find(|m| m.name() == model_name)
                            .ok_or_else(|| {
                                ParseError::at(
                                    *span,
                                    format!("unknown machine model `{model_name}` (define it in an earlier `machine` block)"),
                                )
                            })?;
                        let idx = builder.machine(model.renamed(name.clone()));
                        local.push((name.clone(), ClusterNodeKind::Machine, Some(idx)));
                    }
                    other => {
                        return Err(ParseError::at(
                            *span,
                            format!("unknown cluster node type `{other}` (expected supply, junction, or machine)"),
                        ))
                    }
                }
            }
            Statement::Assign { key, span, .. } => {
                return Err(ParseError::at(
                    *span,
                    format!("unknown cluster setting `{key}`"),
                ));
            }
            Statement::Edge { .. } => {}
        }
    }

    let resolve =
        |name: &str, port: Option<&str>, span: Span| -> Result<ClusterEndpoint, ParseError> {
            let entry = local.iter().find(|(n, _, _)| n == name).ok_or_else(|| {
                ParseError::at(span, format!("unknown cluster endpoint `{name}`"))
            })?;
            match (&entry.1, port) {
                (ClusterNodeKind::Supply, None) => Ok(ClusterEndpoint::Supply(name.to_string())),
                (ClusterNodeKind::Junction, None) => {
                    Ok(ClusterEndpoint::Junction(name.to_string()))
                }
                (ClusterNodeKind::Machine, Some("inlet")) => Ok(ClusterEndpoint::MachineInlet(
                    entry.2.expect("machine entries carry an index"),
                )),
                (ClusterNodeKind::Machine, Some("exhaust")) => Ok(ClusterEndpoint::MachineExhaust(
                    entry.2.expect("machine entries carry an index"),
                )),
                (ClusterNodeKind::Machine, Some(other)) => Err(ParseError::at(
                    span,
                    format!("machine port must be `inlet` or `exhaust`, found `{other}`"),
                )),
                (ClusterNodeKind::Machine, None) => Err(ParseError::at(
                    span,
                    format!(
                        "machine `{name}` must be referenced as `{name}:inlet` or `{name}:exhaust`"
                    ),
                )),
                (_, Some(_)) => Err(ParseError::at(
                    span,
                    format!("only machines take a `:port` qualifier, `{name}` does not"),
                )),
            }
        };

    // Second pass: edges.
    for stmt in &block.statements {
        if let Statement::Edge {
            from,
            op,
            to,
            attrs,
            span,
        } = stmt
        {
            if *op == EdgeOp::Heat {
                return Err(ParseError::at(
                    *span,
                    "cluster blocks only carry air (`->`) edges".to_string(),
                ));
            }
            let fraction = require_num(attrs, "fraction", *span)?;
            let from_ep = match &from.machine {
                Some(m) => resolve(m, Some(&from.node), from.span)?,
                None => resolve(&from.node, None, from.span)?,
            };
            let to_ep = match &to.machine {
                Some(m) => resolve(m, Some(&to.node), to.span)?,
                None => resolve(&to.node, None, to.span)?,
            };
            builder.edge(from_ep, to_ep, fraction);
        }
    }

    builder
        .build()
        .map_err(|e| ParseError::at(block.span, e.to_string()))
}

/// Lowers a parsed document into models.
///
/// # Errors
///
/// Returns [`ParseError`] for unknown attributes, missing required
/// attributes, references to undefined machines, and any model validation
/// failure.
pub fn lower(document: &Document) -> Result<Library, ParseError> {
    let mut library = Library::default();
    for block in &document.blocks {
        match block.kind {
            BlockKind::Machine => {
                if library.machine(&block.name).is_some() {
                    return Err(ParseError::at(
                        block.span,
                        format!("machine `{}` is defined twice", block.name),
                    ));
                }
                library.machines.push(lower_machine(block)?);
            }
            BlockKind::Cluster => {
                if library.cluster(&block.name).is_some() {
                    return Err(ParseError::at(
                        block.span,
                        format!("cluster `{}` is defined twice", block.name),
                    ));
                }
                let cluster = lower_cluster(block, &library.machines)?;
                library.clusters.push((block.name.clone(), cluster));
            }
        }
    }
    Ok(library)
}

#[cfg(test)]
mod tests {
    use crate::parse;

    const TINY_MACHINE: &str = "machine m {\n\
        fan = 38.6;\n\
        inlet_temperature = 21.6;\n\
        cpu [type=component, mass=0.151, c=896, pmin=7, pmax=31];\n\
        psu [type=component, mass=1.643, c=896, power=40];\n\
        inlet [type=inlet];\n\
        cpu_air [type=air, mass=0.01];\n\
        exhaust [type=exhaust];\n\
        cpu -- cpu_air [k=0.75];\n\
        inlet -> cpu_air [fraction=1];\n\
        cpu_air -> exhaust [fraction=1];\n\
    }";

    #[test]
    fn lowers_a_machine_with_all_node_kinds() {
        let lib = parse(TINY_MACHINE).unwrap();
        let m = lib.machine("m").unwrap();
        assert_eq!(m.nodes().len(), 5);
        assert_eq!(m.heat_edges().len(), 1);
        assert_eq!(m.air_edges().len(), 2);
        assert!((m.fan().to_cfm() - 38.6).abs() < 1e-9);
        assert_eq!(m.inlet_temperature().0, 21.6);
        // The constant-power PSU defaults to unmonitored.
        assert_eq!(m.monitored_components(), vec!["cpu"]);
        // The explicit air mass carried through.
        let air = m
            .node(m.node_id("cpu_air").unwrap())
            .as_air()
            .unwrap()
            .clone();
        assert_eq!(air.mass_kg, 0.01);
    }

    #[test]
    fn lowers_a_cluster_referencing_machines() {
        let text = format!(
            "{TINY_MACHINE}\n\
             cluster room {{\n\
               ac [type=supply, temperature=18];\n\
               out [type=junction];\n\
               m1 [type=machine, model=m];\n\
               m2 [type=machine, model=m];\n\
               ac -> m1:inlet [fraction=0.5];\n\
               ac -> m2:inlet [fraction=0.5];\n\
               m1:exhaust -> out [fraction=1];\n\
               m2:exhaust -> out [fraction=1];\n\
             }}"
        );
        let lib = parse(&text).unwrap();
        let cluster = lib.cluster("room").unwrap();
        assert_eq!(cluster.machines().len(), 2);
        assert_eq!(cluster.machines()[0].name(), "m1");
        assert_eq!(cluster.supplies()[0].temperature.0, 18.0);
        assert_eq!(cluster.edges().len(), 4);
    }

    #[test]
    fn missing_required_attributes_are_reported() {
        let err = parse("machine m { cpu [type=component, c=896]; }").unwrap_err();
        assert!(err.to_string().contains("mass"), "{err}");

        let err = parse("machine m { cpu [mass=1]; }").unwrap_err();
        assert!(err.to_string().contains("type"), "{err}");

        let err = parse("machine m { inlet [type=inlet]; a [type=air]; inlet -> a; }").unwrap_err();
        assert!(err.to_string().contains("fraction"), "{err}");

        let err = parse("machine m { a [type=air]; b [type=air]; a -- b; }").unwrap_err();
        assert!(err.to_string().contains('k'), "{err}");
    }

    #[test]
    fn power_specification_is_exclusive() {
        let err =
            parse("machine m { cpu [type=component, mass=1, c=1, power=40, pmin=7, pmax=31]; }")
                .unwrap_err();
        assert!(err.to_string().contains("either"), "{err}");
        let err = parse("machine m { cpu [type=component, mass=1, c=1, pmin=7]; }").unwrap_err();
        assert!(err.to_string().contains("either"), "{err}");
    }

    #[test]
    fn unknown_attributes_and_types_are_rejected() {
        let err = parse("machine m { cpu [type=component, mass=1, c=1, color=red]; }").unwrap_err();
        assert!(err.to_string().contains("color"), "{err}");
        let err = parse("machine m { cpu [type=widget]; }").unwrap_err();
        assert!(err.to_string().contains("widget"), "{err}");
        let err = parse("machine m { speed = 3; }").unwrap_err();
        assert!(err.to_string().contains("speed"), "{err}");
    }

    #[test]
    fn cluster_errors() {
        let err = parse("cluster c { m1 [type=machine, model=ghost]; }").unwrap_err();
        assert!(err.to_string().contains("ghost"), "{err}");

        let err = parse(
            "cluster c { ac [type=supply, temperature=18]; j [type=junction]; ac -- j [k=1]; }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("air"), "{err}");

        let text = format!(
            "{TINY_MACHINE} cluster c {{ m1 [type=machine, model=m]; ac [type=supply, temperature=18]; ac -> m1 [fraction=1]; }}"
        );
        let err = parse(&text).unwrap_err();
        assert!(err.to_string().contains("inlet"), "{err}");

        let text = format!(
            "{TINY_MACHINE} cluster c {{ m1 [type=machine, model=m]; ac [type=supply, temperature=18]; ac:out -> m1:inlet [fraction=1]; }}"
        );
        let err = parse(&text).unwrap_err();
        assert!(err.to_string().contains("qualifier"), "{err}");
    }

    #[test]
    fn duplicate_definitions_are_rejected() {
        let err = parse("machine m { } machine m { }").unwrap_err();
        assert!(err.to_string().contains("twice"), "{err}");
    }

    #[test]
    fn model_level_validation_surfaces_with_block_span() {
        // Fractions over 1 are a model error discovered at build().
        let err = parse(
            "machine m { inlet [type=inlet]; a [type=air]; b [type=air];\n\
             inlet -> a [fraction=0.7]; inlet -> b [fraction=0.7]; }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("sum"), "{err}");
        assert!(err.span().is_some());
    }

    #[test]
    fn monitored_override_works_both_ways() {
        let lib = parse(
            "machine m {\n\
               nic [type=component, mass=0.1, c=896, pmin=1, pmax=4, monitored=false];\n\
               heater [type=component, mass=0.1, c=896, power=10, monitored=true];\n\
             }",
        )
        .unwrap();
        let m = lib.machine("m").unwrap();
        assert_eq!(m.monitored_components(), vec!["heater"]);
    }

    #[test]
    fn the_lowered_model_actually_solves() {
        let lib = parse(TINY_MACHINE).unwrap();
        let model = lib.machine("m").unwrap();
        let mut solver =
            mercury::solver::Solver::new(model, mercury::solver::SolverConfig::default()).unwrap();
        solver.set_utilization("cpu", 1.0).unwrap();
        solver.step_for(600);
        assert!(solver.temperature("cpu").unwrap().0 > 30.0);
    }
}
