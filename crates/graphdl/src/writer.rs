//! Emitting models back into the description language.
//!
//! `parse(write(model))` reconstructs the model exactly (bit-identical
//! constants), which makes the language a faithful storage format: a
//! calibrated model can be saved next to the experiment that produced it
//! and reloaded later. The round trip is property-tested.

use mercury::model::{AirKind, ClusterEndpoint, ClusterModel, MachineModel, NodeSpec, PowerModel};
use std::fmt::Write as _;

/// Quotes a name when it is not a bare identifier.
fn name(n: &str) -> String {
    let bare = !n.is_empty()
        && n.chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        && n.chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '.');
    if bare {
        n.to_string()
    } else {
        format!("\"{}\"", n.replace('\\', "\\\\").replace('"', "\\\""))
    }
}

/// Formats an `f64` so that parsing it back yields the identical value.
fn num(v: f64) -> String {
    // The shortest round-trippable representation Rust offers.
    let s = format!("{v}");
    debug_assert_eq!(
        s.parse::<f64>().ok(),
        Some(v),
        "f64 display must round-trip"
    );
    s
}

/// Renders a machine as a `machine` block in the description language.
pub fn machine_to_graphdl(model: &MachineModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "machine {} {{", name(model.name()));
    let _ = writeln!(out, "    fan = {};", num(model.fan().to_cfm()));
    let _ = writeln!(
        out,
        "    inlet_temperature = {};",
        num(model.inlet_temperature().0)
    );
    let _ = writeln!(out);
    for node in model.nodes() {
        match node {
            NodeSpec::Component(c) => {
                let power = match &c.power {
                    PowerModel::Linear { base, max } => {
                        format!("pmin={}, pmax={}", num(base.0), num(max.0))
                    }
                    PowerModel::Constant(w) => format!("power={}", num(w.0)),
                    PowerModel::Table(_) => {
                        // The language's node syntax has no table form;
                        // emit the equivalent end points. (Tables are an
                        // API-level extension; documents round-trip for
                        // Linear and Constant models.)
                        format!(
                            "pmin={}, pmax={}",
                            num(c.power.base().0),
                            num(c.power.max().0)
                        )
                    }
                };
                let monitored_default = !matches!(c.power, PowerModel::Constant(_));
                let monitored = if c.monitored == monitored_default {
                    String::new()
                } else {
                    format!(", monitored={}", c.monitored)
                };
                let _ = writeln!(
                    out,
                    "    {} [type=component, mass={}, c={}, {power}{monitored}];",
                    name(&c.name),
                    num(c.mass.0),
                    num(c.specific_heat.0),
                );
            }
            NodeSpec::Air(a) => {
                let kind = match a.kind {
                    AirKind::Inlet => "inlet",
                    AirKind::Internal => "air",
                    AirKind::Exhaust => "exhaust",
                };
                let _ = writeln!(
                    out,
                    "    {} [type={kind}, mass={}];",
                    name(&a.name),
                    num(a.mass_kg)
                );
            }
        }
    }
    let _ = writeln!(out);
    for e in model.heat_edges() {
        let _ = writeln!(
            out,
            "    {} -- {} [k={}];",
            name(model.node(e.a).name()),
            name(model.node(e.b).name()),
            num(e.k.0)
        );
    }
    for e in model.air_edges() {
        let _ = writeln!(
            out,
            "    {} -> {} [fraction={}];",
            name(model.node(e.from).name()),
            name(model.node(e.to).name()),
            num(e.fraction)
        );
    }
    out.push_str("}\n");
    out
}

/// Renders a cluster (and the machine definitions it references) as a
/// complete document.
pub fn cluster_to_graphdl(cluster_name: &str, cluster: &ClusterModel) -> String {
    let mut out = String::new();
    // Machine definitions first; instances reference them by name.
    for machine in cluster.machines() {
        out.push_str(&machine_to_graphdl(machine));
        out.push('\n');
    }
    let _ = writeln!(out, "cluster {} {{", name(cluster_name));
    for supply in cluster.supplies() {
        let _ = writeln!(
            out,
            "    {} [type=supply, temperature={}];",
            name(&supply.name),
            num(supply.temperature.0)
        );
    }
    for junction in cluster.junctions() {
        let _ = writeln!(out, "    {} [type=junction];", name(junction));
    }
    for machine in cluster.machines() {
        let _ = writeln!(
            out,
            "    {} [type=machine, model={}];",
            name(machine.name()),
            name(machine.name())
        );
    }
    let endpoint = |ep: &ClusterEndpoint| -> String {
        match ep {
            ClusterEndpoint::Supply(n) | ClusterEndpoint::Junction(n) => name(n),
            ClusterEndpoint::MachineInlet(i) => {
                format!("{}:inlet", name(cluster.machines()[*i].name()))
            }
            ClusterEndpoint::MachineExhaust(i) => {
                format!("{}:exhaust", name(cluster.machines()[*i].name()))
            }
        }
    };
    for e in cluster.edges() {
        let _ = writeln!(
            out,
            "    {} -> {} [fraction={}];",
            endpoint(&e.from),
            endpoint(&e.to),
            num(e.fraction)
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use mercury::presets;

    #[test]
    fn table1_round_trips_exactly() {
        let model = presets::validation_machine();
        let text = machine_to_graphdl(&model);
        let library = parse(&text).unwrap();
        assert_eq!(library.machine("server").unwrap(), &model);
    }

    #[test]
    fn cluster_round_trips_exactly() {
        let cluster = presets::validation_cluster(3);
        let text = cluster_to_graphdl("room", &cluster);
        let library = parse(&text).unwrap();
        assert_eq!(library.cluster("room").unwrap(), &cluster);
    }

    #[test]
    fn quoting_kicks_in_for_odd_names() {
        assert_eq!(name("cpu_air"), "cpu_air");
        assert_eq!(name("disk platters"), "\"disk platters\"");
        assert_eq!(name("9lives"), "\"9lives\"");
        assert_eq!(name("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn monitored_overrides_survive() {
        let mut b = mercury::model::MachineModel::builder("m");
        b.component("nic")
            .mass_kg(0.1)
            .specific_heat(896.0)
            .power_range(1.0, 4.0)
            .monitored(false);
        b.component("heater")
            .mass_kg(0.1)
            .specific_heat(896.0)
            .constant_power(10.0)
            .monitored(true);
        let model = b.build().unwrap();
        let text = machine_to_graphdl(&model);
        let back = parse(&text).unwrap();
        assert_eq!(back.machine("m").unwrap(), &model);
    }
}
