//! Tokenizer for the graph description language.

use crate::error::{ParseError, Span};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A bare identifier (`cpu`, `machine`, `disk_air`).
    Ident(String),
    /// A quoted string (`"disk platters"`). Quotes support `\"` and `\\`.
    Str(String),
    /// A numeric literal (`0.75`, `38.6`, `-3`, `7`).
    Number(f64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `=`
    Equals,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `:`
    Colon,
    /// `--` (undirected / heat edge)
    HeatEdge,
    /// `->` (directed / air edge)
    AirEdge,
    /// End of input (always the last token).
    Eof,
}

impl std::fmt::Display for TokenKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Str(s) => write!(f, "string \"{s}\""),
            TokenKind::Number(n) => write!(f, "number `{n}`"),
            TokenKind::LBrace => f.write_str("`{`"),
            TokenKind::RBrace => f.write_str("`}`"),
            TokenKind::LBracket => f.write_str("`[`"),
            TokenKind::RBracket => f.write_str("`]`"),
            TokenKind::Equals => f.write_str("`=`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Semicolon => f.write_str("`;`"),
            TokenKind::Colon => f.write_str("`:`"),
            TokenKind::HeatEdge => f.write_str("`--`"),
            TokenKind::AirEdge => f.write_str("`->`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it started.
    pub span: Span,
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    column: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor {
            chars: text.chars().peekable(),
            line: 1,
            column: 1,
        }
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.column)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '.'
}

/// Tokenizes a document.
///
/// # Errors
///
/// Returns [`ParseError`] for unterminated strings or block comments,
/// malformed numbers, and characters outside the language.
pub fn lex(text: &str) -> Result<Vec<Token>, ParseError> {
    let mut cursor = Cursor::new(text);
    let mut tokens = Vec::new();
    loop {
        // Skip whitespace and comments.
        loop {
            match cursor.peek() {
                Some(c) if c.is_whitespace() => {
                    cursor.bump();
                }
                Some('#') => {
                    while let Some(c) = cursor.peek() {
                        if c == '\n' {
                            break;
                        }
                        cursor.bump();
                    }
                }
                Some('/') => {
                    // Could be `//`, `/* */`, or an error.
                    let span = cursor.span();
                    let mut look = cursor.chars.clone();
                    look.next();
                    match look.peek() {
                        Some('/') => {
                            while let Some(c) = cursor.peek() {
                                if c == '\n' {
                                    break;
                                }
                                cursor.bump();
                            }
                        }
                        Some('*') => {
                            cursor.bump();
                            cursor.bump();
                            let mut closed = false;
                            while let Some(c) = cursor.bump() {
                                if c == '*' && cursor.peek() == Some('/') {
                                    cursor.bump();
                                    closed = true;
                                    break;
                                }
                            }
                            if !closed {
                                return Err(ParseError::at(span, "unterminated block comment"));
                            }
                        }
                        _ => return Err(ParseError::at(span, "unexpected character `/`")),
                    }
                }
                _ => break,
            }
        }

        let span = cursor.span();
        let c = match cursor.peek() {
            Some(c) => c,
            None => {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    span,
                });
                return Ok(tokens);
            }
        };

        let kind = match c {
            '{' => {
                cursor.bump();
                TokenKind::LBrace
            }
            '}' => {
                cursor.bump();
                TokenKind::RBrace
            }
            '[' => {
                cursor.bump();
                TokenKind::LBracket
            }
            ']' => {
                cursor.bump();
                TokenKind::RBracket
            }
            '=' => {
                cursor.bump();
                TokenKind::Equals
            }
            ',' => {
                cursor.bump();
                TokenKind::Comma
            }
            ';' => {
                cursor.bump();
                TokenKind::Semicolon
            }
            ':' => {
                cursor.bump();
                TokenKind::Colon
            }
            '-' => {
                cursor.bump();
                match cursor.peek() {
                    Some('-') => {
                        cursor.bump();
                        TokenKind::HeatEdge
                    }
                    Some('>') => {
                        cursor.bump();
                        TokenKind::AirEdge
                    }
                    Some(c) if c.is_ascii_digit() || c == '.' => {
                        let n = lex_number(&mut cursor, span)?;
                        TokenKind::Number(-n)
                    }
                    _ => {
                        return Err(ParseError::at(
                            span,
                            "expected `--`, `->`, or a number after `-`",
                        ))
                    }
                }
            }
            '"' => {
                cursor.bump();
                let mut s = String::new();
                loop {
                    match cursor.bump() {
                        Some('"') => break,
                        Some('\\') => match cursor.bump() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some(other) => {
                                return Err(ParseError::at(
                                    span,
                                    format!("unknown escape `\\{other}` in string"),
                                ))
                            }
                            None => return Err(ParseError::at(span, "unterminated string")),
                        },
                        Some(c) => s.push(c),
                        None => return Err(ParseError::at(span, "unterminated string")),
                    }
                }
                TokenKind::Str(s)
            }
            c if c.is_ascii_digit() || c == '.' => {
                TokenKind::Number(lex_number(&mut cursor, span)?)
            }
            c if is_ident_start(c) => {
                let mut s = String::new();
                while let Some(c) = cursor.peek() {
                    if is_ident_continue(c) {
                        s.push(c);
                        cursor.bump();
                    } else {
                        break;
                    }
                }
                TokenKind::Ident(s)
            }
            other => {
                return Err(ParseError::at(
                    span,
                    format!("unexpected character `{other}`"),
                ))
            }
        };
        tokens.push(Token { kind, span });
    }
}

fn lex_number(cursor: &mut Cursor<'_>, span: Span) -> Result<f64, ParseError> {
    let mut s = String::new();
    while let Some(c) = cursor.peek() {
        if c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' {
            s.push(c);
            cursor.bump();
            continue;
        }
        // Exponent sign immediately after e/E.
        if (c == '+' || c == '-') && matches!(s.chars().last(), Some('e') | Some('E')) {
            s.push(c);
            cursor.bump();
            continue;
        }
        break;
    }
    s.parse::<f64>()
        .map_err(|_| ParseError::at(span, format!("malformed number `{s}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<TokenKind> {
        lex(text).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_basic_tokens() {
        assert_eq!(
            kinds("machine m { cpu -- air [k=0.75]; inlet -> air; }"),
            vec![
                TokenKind::Ident("machine".into()),
                TokenKind::Ident("m".into()),
                TokenKind::LBrace,
                TokenKind::Ident("cpu".into()),
                TokenKind::HeatEdge,
                TokenKind::Ident("air".into()),
                TokenKind::LBracket,
                TokenKind::Ident("k".into()),
                TokenKind::Equals,
                TokenKind::Number(0.75),
                TokenKind::RBracket,
                TokenKind::Semicolon,
                TokenKind::Ident("inlet".into()),
                TokenKind::AirEdge,
                TokenKind::Ident("air".into()),
                TokenKind::Semicolon,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers_including_negatives_and_exponents() {
        assert_eq!(kinds("38.6"), vec![TokenKind::Number(38.6), TokenKind::Eof]);
        assert_eq!(kinds("-3.5"), vec![TokenKind::Number(-3.5), TokenKind::Eof]);
        assert_eq!(
            kinds("1e-3"),
            vec![TokenKind::Number(0.001), TokenKind::Eof]
        );
        assert_eq!(kinds(".5"), vec![TokenKind::Number(0.5), TokenKind::Eof]);
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            kinds(r#""disk platters" "a\"b""#),
            vec![
                TokenKind::Str("disk platters".into()),
                TokenKind::Str("a\"b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_all_three_comment_styles() {
        let text = "# hash\n// slashes\n/* block\nstill block */ cpu";
        assert_eq!(
            kinds(text),
            vec![TokenKind::Ident("cpu".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn tracks_line_and_column() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!(tokens[0].span, Span::new(1, 1));
        assert_eq!(tokens[1].span, Span::new(2, 3));
    }

    #[test]
    fn errors_carry_positions() {
        let err = lex("cpu @").unwrap_err();
        assert_eq!(err.span(), Some(Span::new(1, 5)));
        assert!(err.to_string().contains('@'));

        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* open").is_err());
        assert!(lex("a / b").is_err());
        assert!(lex("- x").is_err());
        assert!(lex("\"bad \\q escape\"").is_err());
    }

    #[test]
    fn idents_allow_dots_and_underscores() {
        assert_eq!(
            kinds("disk_air m1.inlet"),
            vec![
                TokenKind::Ident("disk_air".into()),
                TokenKind::Ident("m1.inlet".into()),
                TokenKind::Eof
            ]
        );
    }
}
