//! # mercury-graphdl — Mercury's input language
//!
//! The paper specifies its heat-flow and air-flow graphs in "our modified
//! version of the language dot \[...\] changing its syntax to allow the
//! specification of air fractions, component masses, etc." (§2.3). This
//! crate implements that language: a dot-flavoured description that lowers
//! directly into [`mercury::model::MachineModel`] and
//! [`mercury::model::ClusterModel`] values, plus a writer that emits plain
//! Graphviz `dot` so freely available tools can draw the graphs.
//!
//! ## The language
//!
//! ```text
//! // Table 1, abridged. `--` edges carry heat, `->` edges carry air.
//! machine server {
//!     fan = 38.6;                 // ft³/min
//!     inlet_temperature = 21.6;   // °C
//!
//!     cpu        [type=component, mass=0.151, c=896, pmin=7, pmax=31];
//!     psu        [type=component, mass=1.643, c=896, power=40];
//!     inlet      [type=inlet];
//!     cpu_air    [type=air];
//!     exhaust    [type=exhaust];
//!
//!     cpu -- cpu_air   [k=0.75];
//!     inlet -> cpu_air [fraction=1.0];
//!     cpu_air -> exhaust [fraction=1.0];
//! }
//!
//! cluster room {
//!     ac              [type=supply, temperature=21.6];
//!     cluster_exhaust [type=junction];
//!     machine1        [type=machine, model=server];
//!
//!     ac -> machine1:inlet [fraction=1.0];
//!     machine1:exhaust -> cluster_exhaust [fraction=1.0];
//! }
//! ```
//!
//! Node statements are dot node statements with a mandatory `type`
//! attribute; edge statements use dot's `--` (heat) and `->` (air) with
//! `k=` and `fraction=` labels. Identifiers may be bare words or quoted
//! strings (`"disk platters"`). Comments: `//`, `/* ... */`, and `#`.
//!
//! ## Entry points
//!
//! ```
//! use mercury_graphdl::parse;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let library = parse(
//!     "machine m { \
//!        cpu [type=component, mass=0.1, c=896, pmin=7, pmax=31]; \
//!        inlet [type=inlet]; a [type=air]; exhaust [type=exhaust]; \
//!        cpu -- a [k=0.75]; inlet -> a [fraction=1]; a -> exhaust [fraction=1]; \
//!      }",
//! )?;
//! let model = library.machine("m").expect("machine m is defined");
//! assert_eq!(model.nodes().len(), 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod dot;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod writer;

pub use error::{ParseError, Span};
pub use lower::Library;

/// Parses a graph-description document into a [`Library`] of machine and
/// cluster models.
///
/// # Errors
///
/// Returns [`ParseError`] with a line/column span for lexical and
/// syntactic problems, and with the underlying model-validation message
/// for semantic ones (duplicate nodes, overcommitted fractions, cycles…).
pub fn parse(text: &str) -> Result<Library, ParseError> {
    let tokens = lexer::lex(text)?;
    let document = parser::parse_document(&tokens)?;
    lower::lower(&document)
}

/// Parses a document that must define exactly one machine (no clusters)
/// and returns that machine.
///
/// # Errors
///
/// As [`parse`], plus an error when the document does not contain exactly
/// one machine.
pub fn parse_machine(text: &str) -> Result<mercury::model::MachineModel, ParseError> {
    let library = parse(text)?;
    if library.machines().len() != 1 {
        return Err(ParseError::semantic(format!(
            "expected exactly one machine, found {}",
            library.machines().len()
        )));
    }
    Ok(library.machines()[0].clone())
}
