//! Parse errors with source locations.

use std::fmt;

/// A half-open source region, tracked as 1-based line and column of its
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line of the first character.
    pub line: usize,
    /// 1-based column of the first character.
    pub column: usize,
}

impl Span {
    /// Creates a span at the given 1-based position.
    pub fn new(line: usize, column: usize) -> Self {
        Span { line, column }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// An error produced while lexing, parsing, or lowering a graph
/// description.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    span: Option<Span>,
    message: String,
}

impl ParseError {
    /// An error anchored at a source location.
    pub fn at(span: Span, message: impl Into<String>) -> Self {
        ParseError {
            span: Some(span),
            message: message.into(),
        }
    }

    /// A semantic error with no single source location (e.g. a model
    /// validation failure spanning several statements).
    pub fn semantic(message: impl Into<String>) -> Self {
        ParseError {
            span: None,
            message: message.into(),
        }
    }

    /// The source location, when known.
    pub fn span(&self) -> Option<Span> {
        self.span
    }

    /// The error message without location prefix.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(f, "{span}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location_when_present() {
        let err = ParseError::at(Span::new(3, 14), "unexpected `}`");
        assert_eq!(err.to_string(), "3:14: unexpected `}`");
        assert_eq!(err.span(), Some(Span::new(3, 14)));
        assert_eq!(err.message(), "unexpected `}`");
    }

    #[test]
    fn semantic_errors_have_no_location() {
        let err = ParseError::semantic("duplicate node `cpu`");
        assert_eq!(err.to_string(), "duplicate node `cpu`");
        assert_eq!(err.span(), None);
    }
}
