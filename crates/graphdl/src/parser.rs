//! Recursive-descent parser for the graph description language.

use crate::ast::{Attribute, Block, BlockKind, Document, EdgeOp, EndpointRef, Statement, Value};
use crate::error::{ParseError, Span};
use crate::lexer::{Token, TokenKind};

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> &Token {
        let t = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Span, ParseError> {
        let t = self.peek();
        if &t.kind == kind {
            let span = t.span;
            self.bump();
            Ok(span)
        } else {
            Err(ParseError::at(
                t.span,
                format!("expected {kind}, found {}", t.kind),
            ))
        }
    }

    fn name(&mut self) -> Result<(String, Span), ParseError> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Ident(s) | TokenKind::Str(s) => {
                self.bump();
                Ok((s, t.span))
            }
            other => Err(ParseError::at(
                t.span,
                format!("expected a name, found {other}"),
            )),
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Number(n) => {
                self.bump();
                Ok(Value::Number(n))
            }
            TokenKind::Ident(s) | TokenKind::Str(s) => {
                self.bump();
                Ok(Value::Text(s))
            }
            other => Err(ParseError::at(
                t.span,
                format!("expected a value, found {other}"),
            )),
        }
    }

    fn attributes(&mut self) -> Result<Vec<Attribute>, ParseError> {
        if self.peek().kind != TokenKind::LBracket {
            return Ok(Vec::new());
        }
        self.bump();
        let mut attrs = Vec::new();
        loop {
            if self.peek().kind == TokenKind::RBracket {
                self.bump();
                break;
            }
            let (key, span) = self.name()?;
            self.expect(&TokenKind::Equals)?;
            let value = self.value()?;
            attrs.push(Attribute { key, value, span });
            match &self.peek().kind {
                TokenKind::Comma => {
                    self.bump();
                }
                TokenKind::RBracket => {}
                other => {
                    return Err(ParseError::at(
                        self.peek().span,
                        format!("expected `,` or `]` in attribute list, found {other}"),
                    ))
                }
            }
        }
        Ok(attrs)
    }

    fn endpoint(&mut self) -> Result<EndpointRef, ParseError> {
        let (first, span) = self.name()?;
        if self.peek().kind == TokenKind::Colon {
            self.bump();
            let (node, _) = self.name()?;
            Ok(EndpointRef {
                machine: Some(first),
                node,
                span,
            })
        } else {
            Ok(EndpointRef {
                machine: None,
                node: first,
                span,
            })
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        let from = self.endpoint()?;
        let stmt = match &self.peek().kind {
            TokenKind::HeatEdge | TokenKind::AirEdge => {
                let op_token = self.bump().clone();
                let op = if op_token.kind == TokenKind::HeatEdge {
                    EdgeOp::Heat
                } else {
                    EdgeOp::Air
                };
                let to = self.endpoint()?;
                let attrs = self.attributes()?;
                Statement::Edge {
                    from,
                    op,
                    to,
                    attrs,
                    span: op_token.span,
                }
            }
            TokenKind::Equals => {
                if from.machine.is_some() {
                    return Err(ParseError::at(
                        from.span,
                        "a qualified name cannot be assigned to".to_string(),
                    ));
                }
                self.bump();
                let value = self.value()?;
                Statement::Assign {
                    key: from.node,
                    value,
                    span: from.span,
                }
            }
            _ => {
                if from.machine.is_some() {
                    return Err(ParseError::at(
                        from.span,
                        "a qualified name can only appear in an edge".to_string(),
                    ));
                }
                let attrs = self.attributes()?;
                Statement::Node {
                    name: from.node,
                    attrs,
                    span: from.span,
                }
            }
        };
        self.expect(&TokenKind::Semicolon)?;
        Ok(stmt)
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        let (keyword, span) = self.name()?;
        let kind = match keyword.as_str() {
            "machine" => BlockKind::Machine,
            "cluster" => BlockKind::Cluster,
            other => {
                return Err(ParseError::at(
                    span,
                    format!("expected `machine` or `cluster`, found `{other}`"),
                ))
            }
        };
        let (name, _) = self.name()?;
        self.expect(&TokenKind::LBrace)?;
        let mut statements = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            if self.peek().kind == TokenKind::Eof {
                return Err(ParseError::at(span, format!("unclosed block `{name}`")));
            }
            statements.push(self.statement()?);
        }
        self.bump(); // `}`
        Ok(Block {
            kind,
            name,
            statements,
            span,
        })
    }
}

/// Parses a token stream into a document.
///
/// # Errors
///
/// Returns [`ParseError`] at the first syntactic problem.
pub fn parse_document(tokens: &[Token]) -> Result<Document, ParseError> {
    debug_assert!(
        matches!(
            tokens.last(),
            Some(Token {
                kind: TokenKind::Eof,
                ..
            })
        ),
        "the lexer always appends Eof"
    );
    let mut parser = Parser { tokens, pos: 0 };
    let mut blocks = Vec::new();
    while parser.peek().kind != TokenKind::Eof {
        blocks.push(parser.block()?);
    }
    Ok(Document { blocks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(text: &str) -> Result<Document, ParseError> {
        parse_document(&lex(text)?)
    }

    #[test]
    fn parses_a_machine_block() {
        let doc = parse(
            "machine server {\n\
               fan = 38.6;\n\
               cpu [type=component, mass=0.151];\n\
               inlet [type=inlet];\n\
               cpu -- inlet [k=0.75];\n\
               inlet -> cpu [fraction=0.4];\n\
             }",
        )
        .unwrap();
        assert_eq!(doc.blocks.len(), 1);
        let block = &doc.blocks[0];
        assert_eq!(block.kind, BlockKind::Machine);
        assert_eq!(block.name, "server");
        assert_eq!(block.statements.len(), 5);
        assert!(matches!(block.statements[0], Statement::Assign { .. }));
        assert!(matches!(block.statements[1], Statement::Node { .. }));
        match &block.statements[3] {
            Statement::Edge { op, attrs, .. } => {
                assert_eq!(*op, EdgeOp::Heat);
                assert_eq!(attrs.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &block.statements[4] {
            Statement::Edge { op, .. } => assert_eq!(*op, EdgeOp::Air),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_cluster_blocks_with_qualified_endpoints() {
        let doc = parse(
            "cluster room {\n\
               ac [type=supply, temperature=21.6];\n\
               m1 [type=machine, model=server];\n\
               ac -> m1:inlet [fraction=1];\n\
             }",
        )
        .unwrap();
        let block = &doc.blocks[0];
        assert_eq!(block.kind, BlockKind::Cluster);
        match &block.statements[2] {
            Statement::Edge { to, .. } => {
                assert_eq!(to.machine.as_deref(), Some("m1"));
                assert_eq!(to.node, "inlet");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quoted_names_work_everywhere() {
        let doc =
            parse("machine \"my server\" { \"disk platters\" [type=component, mass=1, c=896]; }")
                .unwrap();
        assert_eq!(doc.blocks[0].name, "my server");
        match &doc.blocks[0].statements[0] {
            Statement::Node { name, .. } => assert_eq!(name, "disk platters"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_attribute_lists_and_no_lists() {
        let doc = parse("machine m { a []; b; }").unwrap();
        assert_eq!(doc.blocks[0].statements.len(), 2);
    }

    #[test]
    fn error_messages_point_at_the_problem() {
        let err = parse("machine m { cpu [k=] }").unwrap_err();
        assert!(err.span().is_some());
        assert!(err.to_string().contains("expected a value"));

        let err = parse("machine m { cpu ").unwrap_err();
        assert!(err.to_string().contains("unclosed") || err.to_string().contains("expected"));

        let err = parse("widget m { }").unwrap_err();
        assert!(err.to_string().contains("machine` or `cluster"));

        let err = parse("machine m { a -- ; }").unwrap_err();
        assert!(err.to_string().contains("expected a name"));

        let err = parse("machine m { m1:inlet = 3; }").unwrap_err();
        assert!(err.to_string().contains("qualified"));

        let err = parse("machine m { m1:inlet; }").unwrap_err();
        assert!(err.to_string().contains("qualified"));
    }

    #[test]
    fn missing_semicolon_is_an_error() {
        let err = parse("machine m { a [type=air] b; }").unwrap_err();
        assert!(err.to_string().contains("`;`"), "{err}");
    }

    #[test]
    fn multiple_blocks_parse_in_order() {
        let doc = parse("machine a { } machine b { } cluster c { }").unwrap();
        assert_eq!(doc.blocks.len(), 3);
        assert_eq!(doc.blocks[2].kind, BlockKind::Cluster);
    }
}
