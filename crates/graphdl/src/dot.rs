//! Graphviz `dot` output for visualizing models.
//!
//! The paper chose a dot-derived language precisely because "the language
//! enables freely available programs to draw the graphs for visualizing
//! the system" (§2.3). These writers emit standard Graphviz syntax:
//! components as boxes, air regions as ellipses, heat edges undirected and
//! labelled with `k`, air edges directed and labelled with their fraction.

use mercury::model::{AirKind, ClusterEndpoint, ClusterModel, MachineModel, NodeSpec};
use std::fmt::Write;

fn quote(name: &str) -> String {
    format!("\"{}\"", name.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Renders a machine's heat-flow graph (Figure 1a style) as `graph`.
pub fn heat_flow_to_dot(model: &MachineModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {} {{", quote(&format!("{}_heat", model.name())));
    let _ = writeln!(
        out,
        "  label={};",
        quote(&format!("{} heat flow", model.name()))
    );
    for node in model.nodes() {
        match node {
            NodeSpec::Component(c) => {
                let _ = writeln!(
                    out,
                    "  {} [shape=box, label={}];",
                    quote(&c.name),
                    quote(&format!("{}\\n{} kg", c.name, c.mass.0))
                );
            }
            NodeSpec::Air(a) => {
                let _ = writeln!(out, "  {} [shape=ellipse];", quote(&a.name));
            }
        }
    }
    for e in model.heat_edges() {
        let _ = writeln!(
            out,
            "  {} -- {} [label=\"k={}\"];",
            quote(model.node(e.a).name()),
            quote(model.node(e.b).name()),
            e.k.0
        );
    }
    out.push_str("}\n");
    out
}

/// Renders a machine's air-flow graph (Figure 1b style) as `digraph`.
pub fn air_flow_to_dot(model: &MachineModel) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "digraph {} {{",
        quote(&format!("{}_air", model.name()))
    );
    let _ = writeln!(
        out,
        "  label={};",
        quote(&format!("{} air flow", model.name()))
    );
    let _ = writeln!(out, "  rankdir=LR;");
    for node in model.nodes() {
        if let NodeSpec::Air(a) = node {
            let shape = match a.kind {
                AirKind::Inlet => "invhouse",
                AirKind::Exhaust => "house",
                AirKind::Internal => "ellipse",
            };
            let _ = writeln!(out, "  {} [shape={shape}];", quote(&a.name));
        }
    }
    for e in model.air_edges() {
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}\"];",
            quote(model.node(e.from).name()),
            quote(model.node(e.to).name()),
            e.fraction
        );
    }
    out.push_str("}\n");
    out
}

fn endpoint_name(cluster: &ClusterModel, ep: &ClusterEndpoint) -> String {
    match ep {
        ClusterEndpoint::Supply(n) | ClusterEndpoint::Junction(n) => n.clone(),
        ClusterEndpoint::MachineInlet(i) => format!("{}:inlet", cluster.machines()[*i].name()),
        ClusterEndpoint::MachineExhaust(i) => {
            format!("{}:exhaust", cluster.machines()[*i].name())
        }
    }
}

/// Renders a cluster's inter-machine air-flow graph (Figure 1c style).
pub fn cluster_to_dot(cluster: &ClusterModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph cluster_air {{");
    let _ = writeln!(out, "  rankdir=LR;");
    for s in cluster.supplies() {
        let _ = writeln!(
            out,
            "  {} [shape=invhouse, label={}];",
            quote(&s.name),
            quote(&format!("{}\\n{}", s.name, s.temperature))
        );
    }
    for j in cluster.junctions() {
        let _ = writeln!(out, "  {} [shape=house];", quote(j));
    }
    for m in cluster.machines() {
        let _ = writeln!(out, "  {} [shape=box3d];", quote(m.name()));
    }
    for e in cluster.edges() {
        // Machine ports collapse onto the machine box for drawing.
        let from = endpoint_name(cluster, &e.from);
        let to = endpoint_name(cluster, &e.to);
        let from = from
            .split(':')
            .next()
            .expect("split yields at least one piece");
        let to = to
            .split(':')
            .next()
            .expect("split yields at least one piece");
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}\"];",
            quote(from),
            quote(to),
            e.fraction
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercury::presets;

    #[test]
    fn heat_flow_dot_contains_every_node_and_edge() {
        let model = presets::validation_machine();
        let dot = heat_flow_to_dot(&model);
        assert!(dot.starts_with("graph"));
        for node in model.nodes() {
            assert!(dot.contains(node.name()), "missing node {}", node.name());
        }
        assert!(dot.contains("k=0.75"));
        assert!(dot.contains("k=10"));
        assert_eq!(dot.matches(" -- ").count(), model.heat_edges().len());
    }

    #[test]
    fn air_flow_dot_is_directed_with_fractions() {
        let model = presets::validation_machine();
        let dot = air_flow_to_dot(&model);
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches(" -> ").count(), model.air_edges().len());
        assert!(dot.contains("0.15"));
        assert!(dot.contains("invhouse"));
        assert!(dot.contains("house"));
    }

    #[test]
    fn cluster_dot_covers_supplies_machines_and_junctions() {
        let cluster = presets::validation_cluster(4);
        let dot = cluster_to_dot(&cluster);
        assert!(dot.contains("\"ac\""));
        assert!(dot.contains("\"cluster_exhaust\""));
        for i in 1..=4 {
            assert!(dot.contains(&format!("\"machine{i}\"")));
        }
        assert_eq!(dot.matches(" -> ").count(), cluster.edges().len());
    }

    #[test]
    fn names_with_quotes_are_escaped() {
        assert_eq!(quote("a\"b"), "\"a\\\"b\"");
        assert_eq!(quote("a\\b"), "\"a\\\\b\"");
    }
}
