//! Abstract syntax tree of the graph description language.

use crate::error::Span;

/// A whole document: a sequence of `machine` and `cluster` blocks.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Document {
    /// Top-level blocks, in source order.
    pub blocks: Vec<Block>,
}

/// What a top-level block declares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// `machine <name> { ... }`
    Machine,
    /// `cluster <name> { ... }`
    Cluster,
}

/// One top-level block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Machine or cluster.
    pub kind: BlockKind,
    /// Declared name.
    pub name: String,
    /// Statements inside the braces.
    pub statements: Vec<Statement>,
    /// Where the block's header starts.
    pub span: Span,
}

/// An attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A numeric value (`0.75`).
    Number(f64),
    /// A word or string value (`component`, `"server"`).
    Text(String),
}

impl Value {
    /// The numeric value, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Text(_) => None,
        }
    }

    /// The textual value, if this is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            Value::Number(_) => None,
        }
    }
}

/// A `key=value` attribute with its location.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Attribute key.
    pub key: String,
    /// Attribute value.
    pub value: Value,
    /// Location of the key.
    pub span: Span,
}

/// A reference to a node, optionally qualified by a machine
/// (`machine1:inlet` inside cluster blocks).
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointRef {
    /// Qualifying machine, for cluster-block endpoints.
    pub machine: Option<String>,
    /// Node (or supply/junction/machine) name.
    pub node: String,
    /// Location of the reference.
    pub span: Span,
}

/// Edge direction / meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeOp {
    /// `--`: an undirected heat-flow edge.
    Heat,
    /// `->`: a directed air-flow edge.
    Air,
}

/// One statement inside a block.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `name [attrs];` — declares a node.
    Node {
        /// Declared node name.
        name: String,
        /// Attribute list (may be empty).
        attrs: Vec<Attribute>,
        /// Location of the name.
        span: Span,
    },
    /// `a -- b [attrs];` or `a -> b [attrs];` — declares an edge.
    Edge {
        /// Source endpoint.
        from: EndpointRef,
        /// Edge operator.
        op: EdgeOp,
        /// Destination endpoint.
        to: EndpointRef,
        /// Attribute list (may be empty).
        attrs: Vec<Attribute>,
        /// Location of the operator.
        span: Span,
    },
    /// `key = value;` — a block-level setting (`fan`, `inlet_temperature`).
    Assign {
        /// Setting name.
        key: String,
        /// Setting value.
        value: Value,
        /// Location of the key.
        span: Span,
    },
}

/// Looks up an attribute by key.
pub fn attr<'a>(attrs: &'a [Attribute], key: &str) -> Option<&'a Attribute> {
    attrs.iter().find(|a| a.key == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Number(1.5).as_number(), Some(1.5));
        assert_eq!(Value::Number(1.5).as_text(), None);
        assert_eq!(Value::Text("x".into()).as_text(), Some("x"));
        assert_eq!(Value::Text("x".into()).as_number(), None);
    }

    #[test]
    fn attr_lookup() {
        let attrs = vec![
            Attribute {
                key: "k".into(),
                value: Value::Number(0.75),
                span: Span::default(),
            },
            Attribute {
                key: "type".into(),
                value: Value::Text("air".into()),
                span: Span::default(),
            },
        ];
        assert!(attr(&attrs, "k").is_some());
        assert!(attr(&attrs, "mass").is_none());
    }
}
