//! The read side: [`Registry`], [`TelemetrySnapshot`], and the
//! Prometheus text renderer.
//!
//! A registry is an *index* of handles, not their owner: registering a
//! counter clones its `Arc`, so the writer keeps updating its own handle
//! and the registry sees every update. There is deliberately no global
//! default registry — a process can have several (each `SolverService`
//! owns one), and a handle may be registered in more than one.
//!
//! The registry also owns one [`EventRing`] so subsystems that want a
//! shared event log (`registry.event(...)`) get one without extra
//! plumbing; subsystems with their own rings just keep them.

use crate::events::{Event, EventRing, Severity};
use crate::handles::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// What kind of metric a registered entry is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter (`_total` names).
    Counter,
    /// Last-write-wins gauge.
    Gauge,
    /// Log-2 histogram.
    Histogram,
}

#[derive(Clone, Debug)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    /// Histogram plus the raw-unit → exposition-unit scale (e.g. 1e-9
    /// for nanosecond recordings exposed as `_seconds`).
    Histogram(Histogram, f64),
}

#[derive(Clone, Debug)]
struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    handle: Handle,
}

/// A sampled counter value.
#[derive(Clone, Debug)]
pub struct CounterSample {
    /// Metric family name.
    pub name: String,
    /// Label pairs.
    pub labels: Vec<(String, String)>,
    /// Value at snapshot time.
    pub value: u64,
}

/// A sampled gauge value.
#[derive(Clone, Debug)]
pub struct GaugeSample {
    /// Metric family name.
    pub name: String,
    /// Label pairs.
    pub labels: Vec<(String, String)>,
    /// Value at snapshot time.
    pub value: f64,
}

/// A sampled histogram.
#[derive(Clone, Debug)]
pub struct HistogramSample {
    /// Metric family name.
    pub name: String,
    /// Label pairs.
    pub labels: Vec<(String, String)>,
    /// Raw-unit → exposition-unit multiplier.
    pub scale: f64,
    /// Bucket contents at snapshot time.
    pub snapshot: HistogramSnapshot,
}

/// A structured point-in-time copy of everything a [`Registry`] knows —
/// the in-process twin of the Prometheus text exposition, consumed by
/// experiments and tests.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    /// All registered counters, in registration order.
    pub counters: Vec<CounterSample>,
    /// All registered gauges, in registration order.
    pub gauges: Vec<GaugeSample>,
    /// All registered histograms, in registration order.
    pub histograms: Vec<HistogramSample>,
    /// Most recent events from the registry's ring, oldest first.
    pub events: Vec<Event>,
}

impl TelemetrySnapshot {
    /// The value of the counter `name` with no labels, if registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && c.labels.is_empty())
            .map(|c| c.value)
    }

    /// Sum over every labelled variant of the counter family `name`.
    #[must_use]
    pub fn counter_family(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// The value of the gauge `name` with no labels, if registered.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && g.labels.is_empty())
            .map(|g| g.value)
    }

    /// The histogram `name` (first labelled variant), if registered.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// How many events the registry's built-in ring retains.
const DEFAULT_EVENT_CAPACITY: usize = 256;

/// Synthetic counter exposing the built-in ring's overflow count.
const EVENTS_DROPPED: &str = "mercury_telemetry_events_dropped_total";

/// A global-free metric index with a built-in event ring.
///
/// See the [crate docs](crate) for the design rules and an example.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
    events: EventRing,
}

impl Registry {
    /// Creates an empty registry (event-ring capacity 256).
    #[must_use]
    pub fn new() -> Self {
        Registry {
            entries: Mutex::new(Vec::new()),
            events: EventRing::with_capacity(DEFAULT_EVENT_CAPACITY),
        }
    }

    /// Creates an empty registry wrapped in an [`Arc`], the common shape
    /// for sharing between a service's threads.
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    fn entries(&self) -> MutexGuard<'_, Vec<Entry>> {
        // Registration never panics while holding the lock, but don't
        // let an unrelated poisoned-lock panic cascade into a scrape.
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn insert(&self, name: &str, help: &str, labels: &[(&str, &str)], handle: Handle) {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        let mut entries = self.entries();
        // Re-registering the same (name, labels) replaces the handle:
        // makes registration idempotent when a component is rebuilt.
        if let Some(e) = entries
            .iter_mut()
            .find(|e| e.name == name && e.labels == labels)
        {
            e.help = help.to_string();
            e.handle = handle;
            return;
        }
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            handle,
        });
    }

    /// Registers an existing counter handle under `name`.
    pub fn register_counter(&self, name: &str, help: &str, labels: &[(&str, &str)], c: &Counter) {
        self.insert(name, help, labels, Handle::Counter(c.clone()));
    }

    /// Registers an existing gauge handle under `name`.
    pub fn register_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)], g: &Gauge) {
        self.insert(name, help, labels, Handle::Gauge(g.clone()));
    }

    /// Registers an existing histogram handle under `name`; `scale`
    /// converts raw recorded units into the exposition unit (use 1.0
    /// for unit-free values, 1e-9 for nanoseconds → `_seconds`).
    pub fn register_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        h: &Histogram,
        scale: f64,
    ) {
        self.insert(name, help, labels, Handle::Histogram(h.clone(), scale));
    }

    /// Creates and registers an unlabelled counter in one step.
    #[must_use]
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let c = Counter::new();
        self.register_counter(name, help, &[], &c);
        c
    }

    /// Creates and registers a labelled counter in one step.
    #[must_use]
    pub fn counter_with_labels(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let c = Counter::new();
        self.register_counter(name, help, labels, &c);
        c
    }

    /// Creates and registers an unlabelled gauge in one step.
    #[must_use]
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let g = Gauge::new();
        self.register_gauge(name, help, &[], &g);
        g
    }

    /// Creates and registers a labelled gauge in one step (the
    /// `mercury_build_info` idiom: constant labels, value 1).
    #[must_use]
    pub fn gauge_with_labels(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let g = Gauge::new();
        self.register_gauge(name, help, labels, &g);
        g
    }

    /// Creates and registers a unit-free histogram in one step.
    #[must_use]
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_scaled(name, help, 1.0)
    }

    /// Creates and registers a scaled histogram in one step.
    #[must_use]
    pub fn histogram_scaled(&self, name: &str, help: &str, scale: f64) -> Histogram {
        let h = Histogram::new();
        self.register_histogram(name, help, &[], &h, scale);
        h
    }

    /// The registry's shared event ring (clone to keep a handle).
    #[must_use]
    pub fn events(&self) -> EventRing {
        self.events.clone()
    }

    /// Records an event on the registry's ring.
    pub fn event(&self, severity: Severity, message: impl Into<String>, fields: &[(&str, &str)]) {
        self.events.push(severity, message, fields);
    }

    /// Samples every registered metric (plus recent events) into a
    /// structured [`TelemetrySnapshot`].
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let entries = self.entries().clone();
        let mut snap = TelemetrySnapshot {
            events: self.events.recent(DEFAULT_EVENT_CAPACITY),
            ..TelemetrySnapshot::default()
        };
        // The built-in ring's overflow is part of the surface: a reader
        // must be able to tell "quiet system" from "events lost".
        snap.counters.push(CounterSample {
            name: EVENTS_DROPPED.to_string(),
            labels: Vec::new(),
            value: self.events.overwritten(),
        });
        for e in entries {
            match e.handle {
                Handle::Counter(c) => snap.counters.push(CounterSample {
                    name: e.name,
                    labels: e.labels,
                    value: c.get(),
                }),
                Handle::Gauge(g) => snap.gauges.push(GaugeSample {
                    name: e.name,
                    labels: e.labels,
                    value: g.get(),
                }),
                Handle::Histogram(h, scale) => snap.histograms.push(HistogramSample {
                    name: e.name,
                    labels: e.labels,
                    scale,
                    snapshot: h.snapshot(),
                }),
            }
        }
        snap
    }

    /// Renders the Prometheus text exposition format (version 0.0.4):
    /// `# HELP` / `# TYPE` per family, one sample line per series,
    /// histograms as cumulative `_bucket{le=...}` plus `_sum`/`_count`.
    ///
    /// Families render grouped by name in registration order of their
    /// first series; label values are escaped per the format spec.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries().clone();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# HELP {EVENTS_DROPPED} Events lost to the registry ring's wraparound"
        );
        let _ = writeln!(out, "# TYPE {EVENTS_DROPPED} counter");
        let _ = writeln!(out, "{EVENTS_DROPPED} {}", self.events.overwritten());
        let mut rendered: Vec<&str> = Vec::new();
        for e in &entries {
            if rendered.contains(&e.name.as_str()) {
                continue;
            }
            rendered.push(&e.name);
            let family: Vec<&Entry> = entries.iter().filter(|f| f.name == e.name).collect();
            let kind = match e.handle {
                Handle::Counter(_) => "counter",
                Handle::Gauge(_) => "gauge",
                Handle::Histogram(..) => "histogram",
            };
            let _ = writeln!(out, "# HELP {} {}", e.name, escape_help(&e.help));
            let _ = writeln!(out, "# TYPE {} {}", e.name, kind);
            for f in family {
                match &f.handle {
                    Handle::Counter(c) => {
                        let _ = writeln!(out, "{}{} {}", f.name, labels(&f.labels, None), c.get());
                    }
                    Handle::Gauge(g) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            f.name,
                            labels(&f.labels, None),
                            fmt_f64(g.get())
                        );
                    }
                    Handle::Histogram(h, scale) => {
                        render_histogram(&mut out, f, &h.snapshot(), *scale);
                    }
                }
            }
        }
        out
    }
}

/// Renders one histogram series: cumulative buckets (non-empty ones
/// only — cumulative values stay monotone), `+Inf`, `_sum`, `_count`.
fn render_histogram(out: &mut String, e: &Entry, snap: &HistogramSnapshot, scale: f64) {
    let mut cumulative = 0u64;
    for (i, &count) in snap.buckets.iter().enumerate() {
        if count == 0 {
            continue;
        }
        cumulative += count;
        let le = HistogramSnapshot::bucket_upper_bound(i) as f64 * scale;
        let _ = writeln!(
            out,
            "{}_bucket{} {}",
            e.name,
            labels(&e.labels, Some(&fmt_f64(le))),
            cumulative
        );
    }
    let _ = writeln!(
        out,
        "{}_bucket{} {}",
        e.name,
        labels(&e.labels, Some("+Inf")),
        snap.count
    );
    let _ = writeln!(
        out,
        "{}_sum{} {}",
        e.name,
        labels(&e.labels, None),
        fmt_f64(snap.sum as f64 * scale)
    );
    let _ = writeln!(
        out,
        "{}_count{} {}",
        e.name,
        labels(&e.labels, None),
        snap.count
    );
}

/// Formats a label set (optionally with an `le` bucket label appended).
fn labels(pairs: &[(String, String)], le: Option<&str>) -> String {
    if pairs.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in pairs {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", k, escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Escapes a label value per the exposition format: `\`, `"`, newline.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escapes a HELP string: `\` and newline.
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Formats an `f64` the way Prometheus expects (no exponent needed for
/// our ranges; integers render without a trailing `.0`).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(all(test, feature = "instrument"))]
mod tests {
    use super::*;

    #[test]
    fn snapshot_sees_updates_before_and_after_registration() {
        let r = Registry::new();
        let c = Counter::new();
        c.add(5);
        r.register_counter("mercury_test_total", "t", &[], &c);
        c.add(2);
        assert_eq!(r.snapshot().counter("mercury_test_total"), Some(7));
    }

    #[test]
    fn labelled_families_group_and_sum() {
        let r = Registry::new();
        let a = r.counter_with_labels(
            "mercury_freon_decisions_total",
            "d",
            &[("action", "throttle")],
        );
        let b = r.counter_with_labels(
            "mercury_freon_decisions_total",
            "d",
            &[("action", "release")],
        );
        a.add(3);
        b.add(4);
        let snap = r.snapshot();
        assert_eq!(snap.counter_family("mercury_freon_decisions_total"), 7);
        assert_eq!(snap.counter("mercury_freon_decisions_total"), None);

        let text = r.render_prometheus();
        // One HELP/TYPE pair for the family, two sample lines.
        assert_eq!(
            text.matches("# TYPE mercury_freon_decisions_total counter")
                .count(),
            1
        );
        assert!(text.contains("mercury_freon_decisions_total{action=\"throttle\"} 3"));
        assert!(text.contains("mercury_freon_decisions_total{action=\"release\"} 4"));
    }

    #[test]
    fn registration_is_idempotent_per_series() {
        let r = Registry::new();
        let old = r.counter("mercury_x_total", "x");
        old.add(9);
        let new = Counter::new();
        new.add(1);
        r.register_counter("mercury_x_total", "x", &[], &new);
        assert_eq!(r.snapshot().counter("mercury_x_total"), Some(1));
        let snap = r.snapshot();
        assert_eq!(
            snap.counters
                .iter()
                .filter(|c| c.name == "mercury_x_total")
                .count(),
            1
        );
    }

    #[test]
    fn histogram_rendering_is_cumulative_and_scaled() {
        let r = Registry::new();
        let h = r.histogram_scaled("mercury_tick_seconds", "latency", 1e-9);
        h.observe(1_000); // ~1 µs, bucket upper bound 1023 ns
        h.observe(1_000);
        h.observe(2_000_000); // ~2 ms
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE mercury_tick_seconds histogram"));
        assert!(text.contains("mercury_tick_seconds_bucket{le=\"0.000001023\"} 2"));
        assert!(text.contains("mercury_tick_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("mercury_tick_seconds_count 3"));
        // Sum: 2_002_000 ns = 0.002002 s
        assert!(text.contains("mercury_tick_seconds_sum 0.002002"));
    }

    #[test]
    fn gauge_and_event_surface() {
        let r = Registry::new();
        let g = r.gauge("mercury_cluster_batched_machines", "b");
        g.set(24.0);
        r.event(
            Severity::Warn,
            "malformed packet",
            &[("peer", "127.0.0.1:1")],
        );
        let snap = r.snapshot();
        assert_eq!(snap.gauge("mercury_cluster_batched_machines"), Some(24.0));
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].message, "malformed packet");
        assert!(r
            .render_prometheus()
            .contains("mercury_cluster_batched_machines 24\n"));
    }

    #[test]
    fn events_dropped_counter_tracks_ring_overflow() {
        let r = Registry::new();
        assert_eq!(r.snapshot().counter(EVENTS_DROPPED), Some(0));
        assert!(r
            .render_prometheus()
            .contains(&format!("{EVENTS_DROPPED} 0")));
        for i in 0..300 {
            r.event(Severity::Info, format!("e{i}"), &[]);
        }
        // 300 pushes into a 256-slot ring: 44 lost.
        assert_eq!(r.snapshot().counter(EVENTS_DROPPED), Some(44));
        assert!(r
            .render_prometheus()
            .contains(&format!("{EVENTS_DROPPED} 44")));
    }

    #[test]
    fn labelled_gauge_renders_constant_value() {
        let r = Registry::new();
        let g = r.gauge_with_labels(
            "mercury_build_info",
            "b",
            &[("version", "0.1.0"), ("simd", "avx2")],
        );
        g.set(1.0);
        assert!(r
            .render_prometheus()
            .contains("mercury_build_info{version=\"0.1.0\",simd=\"avx2\"} 1"));
    }

    #[test]
    fn label_escaping() {
        let r = Registry::new();
        let c = r.counter_with_labels("mercury_esc_total", "e", &[("msg", "a\"b\\c\nd")]);
        c.inc();
        let text = r.render_prometheus();
        assert!(text.contains("msg=\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn rendered_output_parses() {
        let r = Registry::new();
        let _ = r.counter("mercury_a_total", "a");
        let g = r.gauge("mercury_b", "b");
        g.set(0.5);
        let h = r.histogram_scaled("mercury_c_seconds", "c", 1e-9);
        h.observe(123);
        let text = r.render_prometheus();
        let samples = crate::text::parse_exposition(&text).expect("render must parse");
        assert!(samples.iter().any(|s| s.name == "mercury_a_total"));
        assert!(samples.iter().any(|s| s.name == "mercury_c_seconds_bucket"));
    }
}
