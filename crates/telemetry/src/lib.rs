//! # telemetry — global-free metrics for the Mercury & Freon reproduction
//!
//! Mercury's pitch (§2.3 of the paper) is that an emulated machine room
//! can be *observed* like a real one. This crate is the reproduction's
//! own observability substrate: a tiny, zero-dependency metrics library
//! used by the solver, the freon policies, and the UDP services.
//!
//! Design rules, in order of importance:
//!
//! 1. **No globals.** There is no process-wide default registry and no
//!    `lazy_static`-style hidden state. Components own their handles
//!    ([`Counter`], [`Gauge`], [`Histogram`], [`EventRing`]) and whoever
//!    wants a scrape surface owns a [`Registry`] and registers those
//!    handles into it. Handles are `Arc`-backed, so registration is a
//!    cheap clone and updates made before/after registration are all
//!    visible.
//! 2. **Always-on and cheap.** Updating a handle is one relaxed atomic
//!    op — no locks, no allocation, no formatting. The hot solver paths
//!    update handles unconditionally; the measured contract (see
//!    `DESIGN.md` §"Telemetry") is ≤ 2 % overhead on the 256-machine
//!    batched cluster tick. For environments where even that is too
//!    much, building with `default-features = false` (the `instrument`
//!    feature off) turns every handle into a zero-sized no-op.
//! 3. **Mergeable.** [`Histogram`] uses log-2 buckets over `u64` values
//!    so snapshots from different threads (or machines) merge by simple
//!    element-wise addition — no bucket-boundary negotiation.
//!
//! Two read-side surfaces are built on top:
//!
//! * [`Registry::snapshot`] returns a structured [`TelemetrySnapshot`]
//!   for in-process consumers (experiments, tests);
//! * [`Registry::render_prometheus`] renders the Prometheus text
//!   exposition format, served by `mercury::net::SolverService` and
//!   scraped by the `mercury-stats` tool. [`text::parse_exposition`]
//!   parses it back for pretty-printing and tests.
//!
//! Metric names follow `mercury_<subsystem>_<metric>` (e.g.
//! `mercury_cluster_tick_seconds`); counters end in `_total`, histogram
//! families use base units (seconds) via the registration-time scale.
//!
//! Sibling subsystems share these rules: [`trace`] records
//! causally-linked spans (packet → solver tick → policy decision →
//! actuation) behind the same `instrument` feature and exports them as
//! Chrome trace-event JSON, and [`recorder`] is a thermal flight
//! recorder — bounded per-machine rings of recent tick state dumped as
//! JSON incident bundles when a red-line or anomaly trigger fires.
//! The history layer adds time: [`tsdb`] is an embedded Gorilla-style
//! compressed time-series store with bounded per-series rings,
//! [`sampler`] snapshots a [`Registry`] (plus caller-supplied series
//! such as per-machine temperatures) into it on a background cadence,
//! and [`detect`] runs trend detectors — rolling z-score, slope-toward-
//! red-line ETA, stuck-sensor flatline — over that history, feeding
//! [`FlightRecorder::anomaly`] so bundles capture *developing*
//! emergencies, not just breaches.
//!
//! ```
//! use telemetry::{Registry, Severity};
//!
//! let registry = Registry::new();
//! let ticks = registry.counter("mercury_demo_ticks_total", "Demo ticks");
//! let latency = registry.histogram_scaled(
//!     "mercury_demo_tick_seconds",
//!     "Demo tick latency",
//!     1e-9, // recorded in nanoseconds, exposed in seconds
//! );
//! ticks.inc();
//! latency.observe(1_500);
//! registry.event(Severity::Info, "demo tick", &[("tick", "0")]);
//!
//! let text = registry.render_prometheus();
//! assert!(text.contains("mercury_demo_ticks_total 1"));
//! assert!(telemetry::text::parse_exposition(&text).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod detect;
mod events;
mod handles;
pub mod recorder;
mod registry;
pub mod sampler;
pub mod text;
pub mod trace;
pub mod tsdb;

pub use detect::{TrendAnomaly, TrendConfig, TrendDetector, TrendKind};
pub use events::{Event, EventRing, Severity};
pub use handles::{Counter, Gauge, Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use recorder::{FlightRecorder, IncidentTrigger, RecorderConfig, TickState};
pub use registry::{
    CounterSample, GaugeSample, HistogramSample, MetricKind, Registry, TelemetrySnapshot,
};
pub use sampler::Sampler;
pub use trace::{LocalSpans, Span, SpanArgs, SpanRecord, Tracer};
pub use tsdb::{Tsdb, TsdbConfig};

/// `true` when the `instrument` feature is compiled in.
///
/// Call sites that would otherwise pay for side work feeding a handle
/// (e.g. `Instant::now()` around a tick) can guard on this: it is a
/// compile-time constant, so the dead branch is deleted in `cfg`-off
/// builds.
#[inline(always)]
#[must_use]
pub const fn enabled() -> bool {
    cfg!(feature = "instrument")
}
