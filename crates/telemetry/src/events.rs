//! Bounded structured-event ring buffer.
//!
//! Metrics answer "how many / how fast"; events answer "what happened
//! last". The ring keeps the most recent N structured events (severity,
//! message, key/value fields) under a mutex — events are rare (policy
//! decisions, malformed packets, fiddle injections), so a lock is fine
//! where it would not be on the per-tick metric paths. When the ring is
//! full the oldest event is overwritten; `overwritten()` says how many
//! were lost, so a reader can tell a quiet system from a noisy one.

#[cfg(feature = "instrument")]
use std::collections::VecDeque;
use std::fmt;
#[cfg(feature = "instrument")]
use std::sync::{Arc, Mutex};

/// Event severity, ordered from least to most severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Developer-facing detail.
    Debug,
    /// Normal operational event (a policy throttled a server).
    Info,
    /// Something unexpected but tolerated (a malformed packet).
    Warn,
    /// Something failed (a red-line shutdown, an I/O error).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (starts at 0, never reused) — gaps in
    /// a reader's view mean the ring wrapped between reads.
    pub seq: u64,
    /// Severity.
    pub severity: Severity,
    /// Human-readable message (stable, grep-able; details go in fields).
    pub message: String,
    /// Structured key/value fields.
    pub fields: Vec<(String, String)>,
}

#[cfg(feature = "instrument")]
#[derive(Debug, Default)]
struct RingInner {
    events: VecDeque<Event>,
    next_seq: u64,
    overwritten: u64,
}

/// A bounded, shareable ring of [`Event`]s.
///
/// Cloning shares the ring (same `Arc`), like the metric handles.
///
/// ```
/// use telemetry::{EventRing, Severity};
/// let ring = EventRing::with_capacity(2);
/// ring.push(Severity::Info, "a", &[]);
/// ring.push(Severity::Info, "b", &[]);
/// ring.push(Severity::Warn, "c", &[("k", "v")]);
/// let recent = ring.recent(10);
/// assert_eq!(recent.len(), 2); // "a" was overwritten
/// assert_eq!(recent[0].message, "b");
/// assert_eq!(ring.overwritten(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct EventRing {
    capacity: usize,
    #[cfg(feature = "instrument")]
    inner: Arc<Mutex<RingInner>>,
}

impl Default for EventRing {
    /// A ring with the registry's default capacity (256).
    fn default() -> Self {
        EventRing::with_capacity(256)
    }
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events (min 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventRing {
            capacity,
            #[cfg(feature = "instrument")]
            inner: Arc::new(Mutex::new(RingInner::default())),
        }
    }

    /// Maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records an event, evicting the oldest if the ring is full.
    pub fn push(&self, severity: Severity, message: impl Into<String>, fields: &[(&str, &str)]) {
        #[cfg(feature = "instrument")]
        {
            let event_fields = fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect();
            let mut inner = lock(&self.inner);
            let seq = inner.next_seq;
            inner.next_seq += 1;
            if inner.events.len() == self.capacity {
                inner.events.pop_front();
                inner.overwritten += 1;
            }
            inner.events.push_back(Event {
                seq,
                severity,
                message: message.into(),
                fields: event_fields,
            });
        }
        #[cfg(not(feature = "instrument"))]
        {
            let _ = (severity, fields);
            let _ = message;
        }
    }

    /// The most recent `limit` events, oldest first.
    #[must_use]
    pub fn recent(&self, limit: usize) -> Vec<Event> {
        #[cfg(feature = "instrument")]
        {
            let inner = lock(&self.inner);
            let skip = inner.events.len().saturating_sub(limit);
            inner.events.iter().skip(skip).cloned().collect()
        }
        #[cfg(not(feature = "instrument"))]
        {
            let _ = limit;
            Vec::new()
        }
    }

    /// Total events ever pushed (including overwritten ones).
    #[must_use]
    pub fn total(&self) -> u64 {
        #[cfg(feature = "instrument")]
        {
            lock(&self.inner).next_seq
        }
        #[cfg(not(feature = "instrument"))]
        {
            0
        }
    }

    /// Events lost to wraparound.
    #[must_use]
    pub fn overwritten(&self) -> u64 {
        #[cfg(feature = "instrument")]
        {
            lock(&self.inner).overwritten
        }
        #[cfg(not(feature = "instrument"))]
        {
            0
        }
    }
}

/// Locks the ring, recovering from poisoning: an event push can never
/// panic, so a poisoned mutex only means some other thread panicked
/// mid-push — the ring contents are still sound to read.
#[cfg(feature = "instrument")]
fn lock(inner: &Arc<Mutex<RingInner>>) -> std::sync::MutexGuard<'_, RingInner> {
    inner
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(all(test, feature = "instrument"))]
mod tests {
    use super::*;

    #[test]
    fn wraparound_evicts_oldest_and_counts() {
        let ring = EventRing::with_capacity(3);
        for i in 0..7 {
            ring.push(Severity::Info, format!("event {i}"), &[]);
        }
        let recent = ring.recent(10);
        assert_eq!(recent.len(), 3);
        assert_eq!(
            recent
                .iter()
                .map(|e| e.message.as_str())
                .collect::<Vec<_>>(),
            ["event 4", "event 5", "event 6"]
        );
        // Sequence numbers survive the wrap.
        assert_eq!(recent.iter().map(|e| e.seq).collect::<Vec<_>>(), [4, 5, 6]);
        assert_eq!(ring.total(), 7);
        assert_eq!(ring.overwritten(), 4);
    }

    #[test]
    fn recent_limit_and_fields() {
        let ring = EventRing::with_capacity(8);
        ring.push(
            Severity::Warn,
            "malformed packet",
            &[("peer", "10.0.0.1:999")],
        );
        ring.push(
            Severity::Error,
            "red-line",
            &[("machine", "3"), ("temp", "69.1")],
        );
        let last = ring.recent(1);
        assert_eq!(last.len(), 1);
        assert_eq!(last[0].severity, Severity::Error);
        assert_eq!(last[0].fields[0], ("machine".to_string(), "3".to_string()));
        assert_eq!(ring.recent(0).len(), 0);
    }

    #[test]
    fn clones_share_the_ring() {
        let ring = EventRing::with_capacity(4);
        let other = ring.clone();
        other.push(Severity::Debug, "x", &[]);
        assert_eq!(ring.total(), 1);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let ring = EventRing::with_capacity(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(Severity::Info, "a", &[]);
        ring.push(Severity::Info, "b", &[]);
        assert_eq!(ring.recent(10).len(), 1);
        assert_eq!(ring.overwritten(), 1);
    }

    #[test]
    fn severity_display_and_order() {
        assert!(Severity::Debug < Severity::Error);
        assert_eq!(Severity::Warn.to_string(), "warn");
    }
}
