//! The write-side handles: [`Counter`], [`Gauge`], and [`Histogram`].
//!
//! Each handle is a thin `Arc` around atomic storage. Cloning a handle
//! shares the underlying cells — that is the mechanism by which one
//! metric can be updated from many places (e.g. every machine solver in
//! a cluster bumping the same tick counter) and read from a
//! [`Registry`](crate::Registry) without any global state.
//!
//! All updates use `Ordering::Relaxed`: metrics are monotonic summaries,
//! not synchronization primitives, and relaxed ops compile to plain
//! `lock xadd`/`mov` on x86 — cheap enough to leave on in production
//! builds. With the `instrument` feature off the handles carry no
//! storage at all and every method is a no-op the optimizer removes.

#[cfg(feature = "instrument")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "instrument")]
use std::sync::Arc;

/// Number of log-2 histogram buckets: bucket `i` counts values whose
/// bit length is `i`, i.e. bucket 0 holds the value `0`, bucket `i ≥ 1`
/// holds `[2^(i-1), 2^i)`. 65 buckets cover the full `u64` range.
pub const NUM_BUCKETS: usize = 65;

/// A monotonically increasing `u64` counter.
///
/// ```
/// let c = telemetry::Counter::new();
/// c.inc();
/// c.add(41);
/// assert_eq!(c.get(), 42);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Counter {
    #[cfg(feature = "instrument")]
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a detached counter (not yet registered anywhere).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "instrument")]
        self.cell.fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "instrument"))]
        let _ = n;
    }

    /// Current value (0 in `cfg`-off builds).
    #[must_use]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "instrument")]
        {
            self.cell.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "instrument"))]
        {
            0
        }
    }
}

/// A last-write-wins `f64` gauge (stored as bits in an `AtomicU64`).
///
/// ```
/// let g = telemetry::Gauge::new();
/// g.set(3.5);
/// assert_eq!(g.get(), 3.5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    #[cfg(feature = "instrument")]
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Creates a detached gauge.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        #[cfg(feature = "instrument")]
        self.cell.store(v.to_bits(), Ordering::Relaxed);
        #[cfg(not(feature = "instrument"))]
        let _ = v;
    }

    /// Current value (0.0 in `cfg`-off builds).
    #[must_use]
    pub fn get(&self) -> f64 {
        #[cfg(feature = "instrument")]
        {
            f64::from_bits(self.cell.load(Ordering::Relaxed))
        }
        #[cfg(not(feature = "instrument"))]
        {
            0.0
        }
    }
}

#[cfg(feature = "instrument")]
#[derive(Debug)]
struct HistogramCells {
    buckets: Vec<AtomicU64>, // NUM_BUCKETS entries
    sum: AtomicU64,
    count: AtomicU64,
}

/// A log-2-bucketed histogram over `u64` values.
///
/// Values are recorded raw (pick one unit per metric — the solver uses
/// nanoseconds for latencies, lane counts for occupancy); the unit is
/// converted to base units only at exposition time via the scale passed
/// to [`Registry::register_histogram`](crate::Registry::register_histogram).
/// Because buckets are at fixed powers of two, snapshots from any two
/// histograms merge exactly with [`HistogramSnapshot::merge`].
///
/// ```
/// let h = telemetry::Histogram::new();
/// h.observe(0);
/// h.observe(1);
/// h.observe(1000);
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 3);
/// assert_eq!(snap.sum, 1001);
/// assert_eq!(snap.buckets[0], 1); // the value 0
/// assert_eq!(snap.buckets[1], 1); // the value 1
/// assert_eq!(snap.buckets[10], 1); // 1000 ∈ [512, 1024)
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    #[cfg(feature = "instrument")]
    cells: Arc<HistogramCells>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates a detached histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            #[cfg(feature = "instrument")]
            cells: Arc::new(HistogramCells {
                buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Records one value: two relaxed adds and one relaxed increment.
    #[inline]
    pub fn observe(&self, value: u64) {
        #[cfg(feature = "instrument")]
        {
            let idx = bucket_index(value);
            self.cells.buckets[idx].fetch_add(1, Ordering::Relaxed);
            self.cells.sum.fetch_add(value, Ordering::Relaxed);
            self.cells.count.fetch_add(1, Ordering::Relaxed);
        }
        #[cfg(not(feature = "instrument"))]
        let _ = value;
    }

    /// Copies the current bucket contents out.
    ///
    /// The copy is not atomic across buckets — concurrent `observe`
    /// calls may straddle the read — which is the standard (and
    /// harmless) property of scrape-style metrics.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        #[cfg(feature = "instrument")]
        {
            HistogramSnapshot {
                buckets: self
                    .cells
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
                sum: self.cells.sum.load(Ordering::Relaxed),
                count: self.cells.count.load(Ordering::Relaxed),
            }
        }
        #[cfg(not(feature = "instrument"))]
        {
            HistogramSnapshot {
                buckets: vec![0; NUM_BUCKETS],
                sum: 0,
                count: 0,
            }
        }
    }
}

/// Which bucket a value falls into: its bit length.
#[cfg(feature = "instrument")]
#[inline]
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// A point-in-time copy of a [`Histogram`], suitable for merging and
/// quantile estimation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (`NUM_BUCKETS` entries; bucket `i`
    /// holds values of bit length `i`).
    pub buckets: Vec<u64>,
    /// Sum of all recorded raw values.
    pub sum: u64,
    /// Number of recorded values.
    pub count: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (useful as a merge accumulator).
    #[must_use]
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            sum: 0,
            count: 0,
        }
    }

    /// Inclusive upper bound of bucket `i` in raw units.
    ///
    /// Bucket 0 holds only 0; bucket `i ≥ 1` holds `[2^(i-1), 2^i)`, so
    /// its upper bound is `2^i − 1` (saturating at `u64::MAX`).
    #[must_use]
    pub fn bucket_upper_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            1..=63 => (1u64 << i) - 1,
            _ => u64::MAX,
        }
    }

    /// Element-wise merge of another snapshot into this one. Because
    /// bucket boundaries are fixed powers of two this is exact — the
    /// merged histogram is identical to having recorded both value
    /// streams into one histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Mean of the recorded raw values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// observation (`q` in `[0, 1]`), in raw units. Returns 0 for an
    /// empty histogram. Accuracy is the bucket width, i.e. a factor of
    /// two — plenty for "is p99 tick latency milliseconds or seconds".
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        Self::bucket_upper_bound(NUM_BUCKETS - 1)
    }
}

#[cfg(all(test, feature = "instrument"))]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        // Clones share the cell.
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 11);

        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
        g.clone().set(7.0);
        assert_eq!(g.get(), 7.0);
    }

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_tile_the_u64_range() {
        // Every bucket's lower edge is the previous bucket's upper
        // bound + 1, and the index function maps edges consistently.
        for i in 1..NUM_BUCKETS {
            let upper = HistogramSnapshot::bucket_upper_bound(i);
            let lower = HistogramSnapshot::bucket_upper_bound(i - 1).wrapping_add(1);
            assert_eq!(bucket_index(lower), i, "lower edge of bucket {i}");
            assert_eq!(bucket_index(upper), i, "upper edge of bucket {i}");
        }
    }

    #[test]
    fn histogram_observe_snapshot() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 500, 512, u64::MAX] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(
            s.sum,
            0u64.wrapping_add(1 + 2 + 3 + 500 + 512)
                .wrapping_add(u64::MAX)
        );
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2); // 2 and 3
        assert_eq!(s.buckets[9], 1); // 500 ∈ [256, 512)
        assert_eq!(s.buckets[10], 1); // 512 ∈ [512, 1024)
        assert_eq!(s.buckets[64], 1); // u64::MAX
    }

    #[test]
    fn histogram_merge_is_exact() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for v in [1u64, 7, 100, 4096] {
            a.observe(v);
            both.observe(v);
        }
        for v in [0u64, 7, 65_000] {
            b.observe(v);
            both.observe(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn histogram_merge_across_threads() {
        // The same histogram handle updated from several threads: the
        // shared-cell design *is* the cross-thread merge.
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.observe(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 4000);
    }

    #[test]
    fn quantiles_and_mean() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.observe(100); // bucket 7, upper bound 127
        }
        h.observe(1 << 20); // one outlier
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 127);
        assert_eq!(s.quantile(0.99), 127);
        assert_eq!(s.quantile(1.0), (1 << 21) - 1);
        assert!((s.mean() - (99.0 * 100.0 + 1048576.0) / 100.0).abs() < 1e-6);
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), 0);
    }
}
