//! Trend detectors over sampled history.
//!
//! [`TrendDetector::scan`] runs three cheap statistical checks over a
//! trailing window of `(timestamp, value)` samples — as produced by a
//! [`crate::tsdb::Tsdb`] raw-range query — and reports the first
//! anomaly it finds:
//!
//! 1. **Slope-toward-red-line ETA**: a least-squares fit over the
//!    window projects when the series crosses
//!    [`TrendConfig::red_line_c`]; an ETA inside
//!    [`TrendConfig::eta_horizon_s`] fires *before* the breach, which
//!    is the whole point — the flight recorder captures the developing
//!    emergency, not the aftermath.
//! 2. **Rolling z-score**: the newest sample against the mean/stddev of
//!    the window behind it; catches steps and spikes a slope fit
//!    smears out.
//! 3. **Flatline / stuck sensor**: a long run of bit-identical values.
//!    Real thermal nodes jitter in the low mantissa bits every step, so
//!    an exactly-frozen reading means a wedged sensor, not stability.
//!
//! Detectors are pure and deterministic; callers (the freon engine)
//! route anomalies through
//! [`FlightRecorder::anomaly`](crate::FlightRecorder::anomaly), whose
//! per-kind cooldown turns a persistent condition into a single
//! incident bundle per window.

/// Tuning for [`TrendDetector`]; time fields are in the same unit as
/// the sample timestamps (seconds in the freon engine).
#[derive(Debug, Clone)]
pub struct TrendConfig {
    /// Minimum samples before any detector runs.
    pub min_samples: usize,
    /// Red-line temperature the ETA detector projects toward.
    pub red_line_c: f64,
    /// Fire when the projected crossing is within this many time units.
    pub eta_horizon_s: f64,
    /// Ignore slopes below this (°C per time unit) — flat drift never
    /// "trends toward" anything.
    pub min_slope_c_per_s: f64,
    /// |z| at or above this fires the z-score detector.
    pub zscore_threshold: f64,
    /// Stddev floor so a near-constant window cannot make z explode.
    pub min_std_c: f64,
    /// Bit-identical run length that counts as a stuck sensor.
    pub flatline_samples: usize,
}

impl Default for TrendConfig {
    fn default() -> Self {
        Self {
            min_samples: 20,
            red_line_c: 69.5,
            eta_horizon_s: 120.0,
            min_slope_c_per_s: 0.01,
            zscore_threshold: 6.0,
            min_std_c: 0.05,
            flatline_samples: 90,
        }
    }
}

/// Which detector fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrendKind {
    /// Slope projects a red-line crossing within the horizon.
    RedLineEta,
    /// Newest sample is a statistical outlier against its window.
    ZScore,
    /// The series is frozen bit-for-bit: stuck sensor.
    Flatline,
}

impl TrendKind {
    /// Stable incident-kind string, used in bundle file names; the
    /// `trend_` prefix distinguishes these from the recorder's own
    /// reactive triggers (`band_violation`, `red_line`, ...).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TrendKind::RedLineEta => "trend_redline_eta",
            TrendKind::ZScore => "trend_zscore",
            TrendKind::Flatline => "trend_flatline",
        }
    }
}

/// One detector verdict: what fired and a human-readable why.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendAnomaly {
    /// Which detector fired.
    pub kind: TrendKind,
    /// Diagnostic detail for the incident bundle.
    pub detail: String,
}

/// Stateless scanner bundling the three trend checks.
#[derive(Debug, Clone, Default)]
pub struct TrendDetector {
    /// Detector tuning.
    pub config: TrendConfig,
}

impl TrendDetector {
    /// Detector with the given tuning.
    #[must_use]
    pub fn new(config: TrendConfig) -> Self {
        Self { config }
    }

    /// Scans a trailing window (oldest first) and returns the first
    /// anomaly in priority order: red-line ETA, z-score, flatline.
    #[must_use]
    pub fn scan(&self, samples: &[(u64, f64)]) -> Option<TrendAnomaly> {
        if samples.len() < self.config.min_samples {
            return None;
        }
        self.red_line_eta(samples)
            .or_else(|| self.zscore(samples))
            .or_else(|| self.flatline(samples))
    }

    fn red_line_eta(&self, samples: &[(u64, f64)]) -> Option<TrendAnomaly> {
        let c = &self.config;
        let (_, last) = *samples.last()?;
        if !last.is_finite() || last >= c.red_line_c {
            // At or past the line the reactive red-line trigger owns it.
            return None;
        }
        let slope = least_squares_slope(samples)?;
        if slope < c.min_slope_c_per_s {
            return None;
        }
        let eta = (c.red_line_c - last) / slope;
        if eta > c.eta_horizon_s {
            return None;
        }
        Some(TrendAnomaly {
            kind: TrendKind::RedLineEta,
            detail: format!(
                "{last:.2}C climbing {slope:.4}C/s, red line {:.1}C in ~{eta:.0}s",
                c.red_line_c
            ),
        })
    }

    fn zscore(&self, samples: &[(u64, f64)]) -> Option<TrendAnomaly> {
        let c = &self.config;
        let (_, last) = *samples.last()?;
        if !last.is_finite() {
            return None;
        }
        let window: Vec<f64> = samples[..samples.len() - 1]
            .iter()
            .map(|&(_, v)| v)
            .filter(|v| v.is_finite())
            .collect();
        if window.len() + 1 < c.min_samples {
            return None;
        }
        let n = window.len() as f64;
        let mean = window.iter().sum::<f64>() / n;
        let var = window.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let std = var.sqrt().max(c.min_std_c);
        let z = (last - mean) / std;
        if z.abs() < c.zscore_threshold {
            return None;
        }
        Some(TrendAnomaly {
            kind: TrendKind::ZScore,
            detail: format!("{last:.2}C is z={z:.1} against window mean {mean:.2}C (std {std:.3})"),
        })
    }

    fn flatline(&self, samples: &[(u64, f64)]) -> Option<TrendAnomaly> {
        let c = &self.config;
        if c.flatline_samples == 0 || samples.len() < c.flatline_samples {
            return None;
        }
        let (_, last) = *samples.last()?;
        let bits = last.to_bits();
        let frozen = samples
            .iter()
            .rev()
            .take(c.flatline_samples)
            .all(|&(_, v)| v.to_bits() == bits);
        if !frozen {
            return None;
        }
        Some(TrendAnomaly {
            kind: TrendKind::Flatline,
            detail: format!(
                "sensor stuck at {last:.2}C for {} consecutive samples",
                c.flatline_samples
            ),
        })
    }
}

/// Least-squares slope of value over time; `None` when degenerate
/// (all timestamps equal or non-finite values in the window).
fn least_squares_slope(samples: &[(u64, f64)]) -> Option<f64> {
    let t0 = samples.first()?.0;
    let n = samples.len() as f64;
    let (mut st, mut sv, mut stt, mut stv) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for &(t, v) in samples {
        if !v.is_finite() {
            return None;
        }
        let x = t.wrapping_sub(t0) as f64;
        st += x;
        sv += v;
        stt += x * x;
        stv += x * v;
    }
    let denom = n * stt - st * st;
    if denom.abs() < f64::EPSILON {
        return None;
    }
    Some((n * stv - st * sv) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(start: f64, slope: f64, n: usize) -> Vec<(u64, f64)> {
        (0..n)
            .map(|i| (i as u64, start + slope * i as f64))
            .collect()
    }

    #[test]
    fn quiet_series_is_quiet() {
        let d = TrendDetector::default();
        let samples: Vec<(u64, f64)> = (0..120)
            .map(|i| (i as u64, 45.0 + (i as f64 * 0.7).sin() * 0.3))
            .collect();
        assert_eq!(d.scan(&samples), None);
    }

    #[test]
    fn climb_toward_red_line_fires_before_breach() {
        let d = TrendDetector::default();
        // 60 °C climbing 0.15 °C/s → red line 69.5 in ~63 s, inside the
        // 120 s horizon, well below the line itself.
        let samples = ramp(51.0, 0.15, 60);
        let anomaly = d.scan(&samples).expect("eta detector fires");
        assert_eq!(anomaly.kind, TrendKind::RedLineEta);
        assert!(samples.last().unwrap().1 < d.config.red_line_c);
    }

    #[test]
    fn slow_drift_does_not_fire() {
        let d = TrendDetector::default();
        // 0.02 °C/s from 40 °C: ETA ≈ 1475 s, far past the horizon.
        assert_eq!(d.scan(&ramp(40.0, 0.02, 60)), None);
    }

    #[test]
    fn past_red_line_defers_to_reactive_trigger() {
        let d = TrendDetector::default();
        assert_eq!(d.red_line_eta(&ramp(70.0, 0.2, 60)), None);
    }

    #[test]
    fn step_change_trips_zscore() {
        let d = TrendDetector::default();
        let mut samples: Vec<(u64, f64)> = (0..60)
            .map(|i| (i as u64, 44.0 + if i % 2 == 0 { 0.1 } else { -0.1 }))
            .collect();
        samples.push((60, 52.0));
        let anomaly = d.scan(&samples).expect("zscore fires");
        assert_eq!(anomaly.kind, TrendKind::ZScore);
    }

    #[test]
    fn frozen_sensor_trips_flatline() {
        let d = TrendDetector::new(TrendConfig {
            flatline_samples: 30,
            ..TrendConfig::default()
        });
        let samples: Vec<(u64, f64)> = (0..40).map(|i| (i as u64, 55.25)).collect();
        let anomaly = d.scan(&samples).expect("flatline fires");
        assert_eq!(anomaly.kind, TrendKind::Flatline);
        // One wiggling bit resets the run.
        let mut wiggle = samples;
        wiggle[35].1 = 55.250000001;
        assert_eq!(d.scan(&wiggle), None);
    }

    #[test]
    fn short_windows_are_ignored() {
        let d = TrendDetector::default();
        assert_eq!(d.scan(&ramp(65.0, 0.3, 5)), None);
    }
}
