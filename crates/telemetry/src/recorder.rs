//! Thermal flight recorder: bounded per-machine rings of recent
//! per-tick state, dumped as a structured JSON *incident bundle* when
//! something goes wrong.
//!
//! The paper's argument is a causal chain (utilization → temperature →
//! observation → decision → actuation); when an emergency scenario ends
//! in a red-line shutdown the question is always "what did the last N
//! seconds look like?". The recorder answers it the way an aircraft
//! flight recorder does: every control tick, each machine's probe
//! temperatures, utilization, power state and applied actuations go
//! into a bounded ring; when a red-line [`IncidentTrigger`] fires — or
//! an anomaly trigger trips (temperature rate-of-change, band
//! violation) — the rings plus the tracer's recent spans are rendered
//! into one self-contained JSON bundle for `results/incidents/`.
//!
//! The recorder stores state and detects anomalies; it never touches
//! the filesystem. The freon experiment engine decides where bundles
//! land, and `mercury-trace` converts a bundle's `spans` section to
//! Chrome trace-event JSON ([`extract_bundle_spans`]).

use crate::trace::{SpanRecord, TraceParseError};
#[cfg(feature = "instrument")]
use std::collections::VecDeque;
use std::fmt::Write as _;
#[cfg(feature = "instrument")]
use std::sync::{Arc, Mutex};

/// Version tag written into every bundle.
pub const BUNDLE_SCHEMA: &str = "mercury-incident-v1";

/// Static configuration for a [`FlightRecorder`].
#[derive(Clone, Debug)]
pub struct RecorderConfig {
    /// Ticks retained per machine (min 2; rate detection needs a pair).
    pub capacity: usize,
    /// Names of the temperature probes, in the order
    /// [`TickState::temps`] is filled.
    pub probes: Vec<String>,
    /// Lower edge of the healthy temperature band, °C.
    pub band_low_c: f64,
    /// Upper edge of the healthy temperature band, °C — crossing it on
    /// a powered machine trips the `band_violation` trigger.
    pub band_high_c: f64,
    /// Absolute per-probe rate of change, °C/s, above which the
    /// `rate_of_change` trigger trips.
    pub max_rate_c_per_s: f64,
    /// Minimum seconds between triggers *of the same kind* (recording
    /// continues in between; only the trigger output is suppressed).
    /// Kinds cool down independently so an early trend anomaly never
    /// swallows the later `red_line` bundle.
    pub cooldown_s: u64,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            capacity: 120,
            probes: Vec::new(),
            band_low_c: 5.0,
            band_high_c: 68.0,
            max_rate_c_per_s: 5.0,
            cooldown_s: 60,
        }
    }
}

/// One machine-tick of recorded state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TickState {
    /// Simulation time, seconds.
    pub time_s: u64,
    /// Probe temperatures, °C, parallel to [`RecorderConfig::probes`].
    pub temps: Vec<f64>,
    /// CPU utilization in `[0, 1]`.
    pub cpu_util: f64,
    /// Disk utilization in `[0, 1]`.
    pub disk_util: f64,
    /// Whether the machine was powered.
    pub powered: bool,
    /// Whether the load balancer was sending it traffic.
    pub accepting: bool,
    /// DVFS speed scale in `(0, 1]`.
    pub speed_scale: f64,
    /// Actuations applied this tick (`action@reason` strings).
    pub actuations: Vec<String>,
}

/// Why a bundle was requested.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IncidentTrigger {
    /// Simulation time of the trigger, seconds.
    pub time_s: u64,
    /// The machine that tripped it.
    pub machine: usize,
    /// Trigger kind: `band_violation`, `rate_of_change`, or `red_line`.
    pub kind: String,
    /// Human-readable detail (probe, temperature, threshold).
    pub detail: String,
}

#[cfg(feature = "instrument")]
#[derive(Debug)]
struct RecInner {
    config: RecorderConfig,
    rings: Vec<VecDeque<TickState>>,
    /// Last trigger time per kind — the per-kind cooldown state.
    last_trigger: Vec<(String, u64)>,
}

/// A shareable per-machine ring of recent [`TickState`]s with anomaly
/// triggers. Clones share the rings. With the `instrument` feature off
/// (or for [`FlightRecorder::disabled`]) every method is a no-op.
#[derive(Clone, Debug, Default)]
pub struct FlightRecorder {
    #[cfg(feature = "instrument")]
    inner: Option<Arc<Mutex<RecInner>>>,
}

impl FlightRecorder {
    /// A detached recorder: records nothing, never triggers.
    #[must_use]
    pub fn disabled() -> Self {
        FlightRecorder::default()
    }

    /// Creates a recorder with the given configuration.
    #[must_use]
    pub fn new(config: RecorderConfig) -> Self {
        #[cfg(feature = "instrument")]
        {
            let config = RecorderConfig {
                capacity: config.capacity.max(2),
                ..config
            };
            FlightRecorder {
                inner: Some(Arc::new(Mutex::new(RecInner {
                    config,
                    rings: Vec::new(),
                    last_trigger: Vec::new(),
                }))),
            }
        }
        #[cfg(not(feature = "instrument"))]
        {
            let _ = config;
            FlightRecorder::default()
        }
    }

    /// Whether this handle has backing storage.
    #[must_use]
    pub fn is_attached(&self) -> bool {
        #[cfg(feature = "instrument")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "instrument"))]
        {
            false
        }
    }

    #[cfg(feature = "instrument")]
    fn lock(&self) -> Option<std::sync::MutexGuard<'_, RecInner>> {
        self.inner
            .as_deref()
            .map(|m| m.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Records one machine-tick and runs the anomaly triggers against
    /// it. Returns a trigger when one tripped and the cooldown allows
    /// reporting it; recording happens regardless.
    pub fn record(&self, machine: usize, state: TickState) -> Option<IncidentTrigger> {
        #[cfg(feature = "instrument")]
        {
            let mut inner = self.lock()?;
            if inner.rings.len() <= machine {
                inner.rings.resize_with(machine + 1, VecDeque::new);
            }
            let trigger = detect(&inner.config, &inner.rings[machine], machine, &state);
            let cap = inner.config.capacity;
            let ring = &mut inner.rings[machine];
            if ring.len() == cap {
                ring.pop_front();
            }
            let time_s = state.time_s;
            ring.push_back(state);
            match trigger {
                Some(t) if inner.allow_trigger(&t.kind, time_s) => Some(t),
                _ => None,
            }
        }
        #[cfg(not(feature = "instrument"))]
        {
            let _ = (machine, state);
            None
        }
    }

    /// Builds a `red_line` trigger for an externally-detected incident
    /// (an emergency shutdown), honoring the trigger cooldown. Returns
    /// `None` when detached or still cooling down.
    pub fn red_line(&self, time_s: u64, machine: usize, detail: String) -> Option<IncidentTrigger> {
        #[cfg(feature = "instrument")]
        {
            self.anomaly(time_s, machine, "red_line", detail)
        }
        #[cfg(not(feature = "instrument"))]
        {
            let _ = (time_s, machine, detail);
            None
        }
    }

    /// Builds a trigger of an arbitrary `kind` — the entry point for
    /// externally-run detectors (the `telemetry::detect` trend scanners
    /// use kinds like `trend_redline_eta`) — honoring that kind's
    /// cooldown. Returns `None` when detached or still cooling down.
    pub fn anomaly(
        &self,
        time_s: u64,
        machine: usize,
        kind: &str,
        detail: String,
    ) -> Option<IncidentTrigger> {
        #[cfg(feature = "instrument")]
        {
            let mut inner = self.lock()?;
            if !inner.allow_trigger(kind, time_s) {
                return None;
            }
            Some(IncidentTrigger {
                time_s,
                machine,
                kind: kind.to_string(),
                detail,
            })
        }
        #[cfg(not(feature = "instrument"))]
        {
            let _ = (time_s, machine, kind, detail);
            None
        }
    }

    /// Renders a self-contained JSON incident bundle: the trigger,
    /// build attribution, every machine's recorded ring, and `spans`
    /// (one span object per line, so [`extract_bundle_spans`] and
    /// `mercury-trace` can lift them back out).
    #[must_use]
    pub fn bundle(
        &self,
        trigger: &IncidentTrigger,
        build: &[(String, String)],
        spans: &[SpanRecord],
    ) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{BUNDLE_SCHEMA}\",");
        let _ = writeln!(
            out,
            "  \"trigger\": {{\"time_s\": {}, \"machine\": {}, \"kind\": \"{}\", \"detail\": \"{}\"}},",
            trigger.time_s,
            trigger.machine,
            escape(&trigger.kind),
            escape(&trigger.detail)
        );
        out.push_str("  \"build\": {");
        for (i, (k, v)) in build.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": \"{}\"", escape(k), escape(v));
        }
        out.push_str("},\n");
        #[cfg(feature = "instrument")]
        let (probes, rings): (Vec<String>, Vec<Vec<TickState>>) = match self.lock() {
            Some(inner) => (
                inner.config.probes.clone(),
                inner
                    .rings
                    .iter()
                    .map(|r| r.iter().cloned().collect())
                    .collect(),
            ),
            None => (Vec::new(), Vec::new()),
        };
        #[cfg(not(feature = "instrument"))]
        let (probes, rings): (Vec<String>, Vec<Vec<TickState>>) = (Vec::new(), Vec::new());
        out.push_str("  \"probes\": [");
        for (i, p) in probes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", escape(p));
        }
        out.push_str("],\n");
        out.push_str("  \"machines\": [\n");
        for (m, ring) in rings.iter().enumerate() {
            let _ = write!(out, "    {{\"machine\": {m}, \"ticks\": [");
            for (i, t) in ring.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_tick(&mut out, t);
            }
            out.push_str("]}");
            out.push_str(if m + 1 < rings.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"spans\": [\n");
        for (i, s) in spans.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&s.to_json());
            out.push_str(if i + 1 < spans.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(feature = "instrument")]
impl RecInner {
    /// Whether a `kind` trigger at `time_s` is outside that kind's
    /// cooldown window, latching it if so. Kinds are independent: a
    /// `trend_redline_eta` trigger never delays the `red_line` one.
    fn allow_trigger(&mut self, kind: &str, time_s: u64) -> bool {
        match self.last_trigger.iter_mut().find(|(k, _)| k == kind) {
            Some((_, last)) => {
                if time_s.saturating_sub(*last) >= self.config.cooldown_s {
                    *last = time_s;
                    true
                } else {
                    false
                }
            }
            None => {
                self.last_trigger.push((kind.to_string(), time_s));
                true
            }
        }
    }
}

/// Runs the anomaly triggers for one new tick against the ring's tail.
#[cfg(feature = "instrument")]
fn detect(
    config: &RecorderConfig,
    ring: &VecDeque<TickState>,
    machine: usize,
    state: &TickState,
) -> Option<IncidentTrigger> {
    let probe_name = |i: usize| {
        config
            .probes
            .get(i)
            .map_or_else(|| format!("probe{i}"), String::clone)
    };
    if state.powered {
        for (i, &t) in state.temps.iter().enumerate() {
            if t > config.band_high_c || t < config.band_low_c {
                return Some(IncidentTrigger {
                    time_s: state.time_s,
                    machine,
                    kind: "band_violation".to_string(),
                    detail: format!(
                        "{} at {t:.2} C outside [{:.1}, {:.1}]",
                        probe_name(i),
                        config.band_low_c,
                        config.band_high_c
                    ),
                });
            }
        }
    }
    if let Some(prev) = ring.back() {
        let dt = state.time_s.saturating_sub(prev.time_s);
        if dt > 0 {
            for (i, (&now, &before)) in state.temps.iter().zip(&prev.temps).enumerate() {
                let rate = (now - before).abs() / dt as f64;
                if rate > config.max_rate_c_per_s {
                    return Some(IncidentTrigger {
                        time_s: state.time_s,
                        machine,
                        kind: "rate_of_change".to_string(),
                        detail: format!(
                            "{} moved {rate:.2} C/s (limit {:.2})",
                            probe_name(i),
                            config.max_rate_c_per_s
                        ),
                    });
                }
            }
        }
    }
    None
}

/// Renders one tick as a JSON object.
fn render_tick(out: &mut String, t: &TickState) {
    let _ = write!(out, "{{\"time_s\": {}, \"temps\": [", t.time_s);
    for (i, &v) in t.temps.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_f64(v));
    }
    let _ = write!(
        out,
        "], \"cpu_util\": {}, \"disk_util\": {}, \"powered\": {}, \"accepting\": {}, \"speed_scale\": {}, \"actuations\": [",
        json_f64(t.cpu_util),
        json_f64(t.disk_util),
        t.powered,
        t.accepting,
        json_f64(t.speed_scale)
    );
    for (i, a) in t.actuations.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\"", escape(a));
    }
    out.push_str("]}");
}

/// JSON-safe `f64` (JSON has no NaN/Inf; those become `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string for embedding in the bundle JSON.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Lifts the `spans` section back out of an incident bundle written by
/// [`FlightRecorder::bundle`] — the inverse `mercury-trace` uses to
/// convert bundles for Perfetto. Tolerant of surrounding formatting but
/// strict about the span objects themselves.
///
/// # Errors
///
/// Returns a [`TraceParseError`] if the bundle has no `spans` section
/// or a span object inside it is malformed.
pub fn extract_bundle_spans(bundle: &str) -> Result<Vec<SpanRecord>, TraceParseError> {
    let start = bundle.find("\"spans\": [").ok_or(TraceParseError {
        pos: 0,
        message: "bundle has no \"spans\" section".to_string(),
    })?;
    let mut spans = Vec::new();
    for line in bundle[start..].lines().skip(1) {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() {
            continue;
        }
        if line.starts_with(']') {
            return Ok(spans);
        }
        spans.push(SpanRecord::from_json(line)?);
    }
    Err(TraceParseError {
        pos: bundle.len(),
        message: "unterminated \"spans\" section".to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "instrument")]
    fn tick(time_s: u64, temps: &[f64]) -> TickState {
        TickState {
            time_s,
            temps: temps.to_vec(),
            cpu_util: 0.5,
            disk_util: 0.1,
            powered: true,
            accepting: true,
            speed_scale: 1.0,
            actuations: Vec::new(),
        }
    }

    #[test]
    fn bundle_renders_and_spans_extract_even_when_detached() {
        let rec = FlightRecorder::disabled();
        let trigger = IncidentTrigger {
            time_s: 300,
            machine: 2,
            kind: "red_line".to_string(),
            detail: "cpu at 69.5 C".to_string(),
        };
        let spans = vec![SpanRecord {
            id: 7,
            parent: 3,
            tid: 0,
            start_ns: 10,
            dur_ns: 5,
            cat: "freon".into(),
            name: "mediator.dispatch".into(),
            args: vec![("action".into(), "shutdown".to_string())],
        }];
        let bundle = rec.bundle(
            &trigger,
            &[("version".to_string(), "0.1.0".to_string())],
            &spans,
        );
        assert!(bundle.contains(BUNDLE_SCHEMA));
        assert!(bundle.contains("\"kind\": \"red_line\""));
        assert!(bundle.contains("\"version\": \"0.1.0\""));
        let extracted = extract_bundle_spans(&bundle).unwrap();
        assert_eq!(extracted, spans);
        assert!(extract_bundle_spans("{}").is_err());
    }

    #[cfg(feature = "instrument")]
    mod live {
        use super::*;

        #[test]
        fn rings_are_bounded_per_machine() {
            let rec = FlightRecorder::new(RecorderConfig {
                capacity: 3,
                probes: vec!["cpu".to_string()],
                ..RecorderConfig::default()
            });
            for t in 0..10 {
                assert!(rec.record(0, tick(t, &[40.0])).is_none());
            }
            let trigger = IncidentTrigger {
                time_s: 9,
                machine: 0,
                kind: "red_line".to_string(),
                detail: String::new(),
            };
            let bundle = rec.bundle(&trigger, &[], &[]);
            // Only the 3 most recent ticks survive.
            assert!(!bundle.contains("\"time_s\": 6,"));
            assert!(bundle.contains("\"time_s\": 7,"));
            assert!(bundle.contains("\"time_s\": 9,"));
        }

        #[test]
        fn band_violation_trips_and_cools_down() {
            let rec = FlightRecorder::new(RecorderConfig {
                band_high_c: 65.0,
                cooldown_s: 30,
                probes: vec!["cpu".to_string()],
                ..RecorderConfig::default()
            });
            assert!(rec.record(1, tick(10, &[60.0])).is_none());
            let t = rec.record(1, tick(11, &[66.0])).expect("band trigger");
            assert_eq!(t.kind, "band_violation");
            assert_eq!(t.machine, 1);
            assert!(t.detail.contains("cpu"));
            // Still hot 5 s later: suppressed by the cooldown.
            assert!(rec.record(1, tick(16, &[67.0])).is_none());
            // Past the cooldown it fires again.
            assert!(rec.record(1, tick(45, &[67.0])).is_some());
        }

        #[test]
        fn rate_trigger_needs_history_and_powered_band_only() {
            let rec = FlightRecorder::new(RecorderConfig {
                band_high_c: 100.0,
                max_rate_c_per_s: 2.0,
                cooldown_s: 0,
                ..RecorderConfig::default()
            });
            // First tick: no history, no rate.
            assert!(rec.record(0, tick(0, &[40.0])).is_none());
            // +1.5 C/s: fine.
            assert!(rec.record(0, tick(2, &[43.0])).is_none());
            // +5 C/s: trips.
            let t = rec.record(0, tick(3, &[48.0])).expect("rate trigger");
            assert_eq!(t.kind, "rate_of_change");

            // Unpowered machines don't band-trigger (exhaust cooling
            // readings drift), but a detached recorder never does.
            let band = FlightRecorder::new(RecorderConfig {
                band_high_c: 50.0,
                cooldown_s: 0,
                ..RecorderConfig::default()
            });
            let mut off = tick(0, &[80.0]);
            off.powered = false;
            assert!(band.record(0, off).is_none());
        }

        #[test]
        fn red_line_respects_cooldown() {
            let rec = FlightRecorder::new(RecorderConfig {
                cooldown_s: 20,
                ..RecorderConfig::default()
            });
            assert!(rec.red_line(100, 0, "cpu 69.5".to_string()).is_some());
            assert!(rec.red_line(110, 1, "cpu 70.1".to_string()).is_none());
            assert!(rec.red_line(125, 1, "cpu 70.4".to_string()).is_some());
            assert!(FlightRecorder::disabled()
                .red_line(0, 0, String::new())
                .is_none());
        }

        #[test]
        fn cooldowns_are_per_kind() {
            let rec = FlightRecorder::new(RecorderConfig {
                cooldown_s: 60,
                ..RecorderConfig::default()
            });
            // A trend anomaly must not delay the red-line trigger that
            // follows it inside the same cooldown window.
            let t = rec
                .anomaly(100, 0, "trend_redline_eta", "climbing".to_string())
                .expect("first trend trigger");
            assert_eq!(t.kind, "trend_redline_eta");
            assert!(rec
                .anomaly(120, 0, "trend_redline_eta", "still".to_string())
                .is_none());
            assert!(rec.red_line(130, 0, "cpu 69.6".to_string()).is_some());
            assert!(FlightRecorder::disabled()
                .anomaly(0, 0, "trend_zscore", String::new())
                .is_none());
        }
    }
}
