//! Background sampling of registry metrics into a [`Tsdb`].
//!
//! A [`Sampler`] owns one thread that, at a configurable cadence,
//! snapshots a [`Registry`] — counters, gauges, and histogram
//! `_count`/`_sum` pairs become series keyed by their exposition name —
//! and then asks an *extra source* callback for additional
//! `(series, value)` pairs. The solver service uses the extra source to
//! read per-machine node temperatures (briefly taking the solver lock,
//! collecting into a reused buffer, and releasing before the store is
//! touched), so the history gains the `temp/<machine>/<component>`
//! series the thermal console lives on.
//!
//! Timestamps are wall-clock milliseconds from [`now_millis`]. The pure
//! sampling step is exposed as [`sample_registry`] so benchmarks and
//! the freon engine (which samples in *simulated* seconds, on its own
//! cadence, with no thread) reuse the exact same series naming.

use crate::registry::{Registry, TelemetrySnapshot};
use crate::tsdb::Tsdb;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Milliseconds since the Unix epoch — the service-side sample clock.
#[must_use]
pub fn now_millis() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Series name for a metric sample: the Prometheus exposition name,
/// with any whitespace flattened so the wire text stays line-oriented.
#[must_use]
pub fn series_name(name: &str, labels: &[(String, String)]) -> String {
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(v);
            out.push('"');
        }
        out.push('}');
    }
    if out.contains(char::is_whitespace) {
        out = out
            .chars()
            .map(|c| if c.is_whitespace() { '_' } else { c })
            .collect();
    }
    out
}

/// Appends one registry snapshot to the store at timestamp `t`.
///
/// Returns the number of series touched. Counters and gauges map
/// one-to-one; histograms contribute `<name>_count` and `<name>_sum`
/// series (the pair downstream rate queries need), buckets stay
/// scrape-only.
pub fn sample_registry(tsdb: &Tsdb, snapshot: &TelemetrySnapshot, t: u64) -> usize {
    let mut touched = 0;
    for c in &snapshot.counters {
        tsdb.append(&series_name(&c.name, &c.labels), t, c.value as f64);
        touched += 1;
    }
    for g in &snapshot.gauges {
        tsdb.append(&series_name(&g.name, &g.labels), t, g.value);
        touched += 1;
    }
    for h in &snapshot.histograms {
        let base = series_name(&h.name, &h.labels);
        tsdb.append(&format!("{base}_count"), t, h.snapshot.count as f64);
        tsdb.append(&format!("{base}_sum"), t, h.snapshot.sum as f64 * h.scale);
        touched += 2;
    }
    touched
}

/// Extra `(series, value)` source polled once per sampling tick.
pub type ExtraSource = Box<dyn FnMut(&mut Vec<(String, f64)>) + Send>;

/// Handle to the background sampling thread; dropping it stops the
/// thread and joins it.
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Sampler {
    /// Spawns the sampling thread.
    ///
    /// Every `cadence` the thread appends a registry snapshot plus
    /// whatever `extra` produces, stamped with [`now_millis`]. The
    /// extra buffer is reused across ticks, so a steady source
    /// allocates nothing after warm-up.
    #[must_use]
    pub fn spawn(
        cadence: Duration,
        tsdb: Arc<Tsdb>,
        registry: Arc<Registry>,
        mut extra: ExtraSource,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let cadence = cadence.max(Duration::from_millis(1));
        let handle = thread::Builder::new()
            .name("mercury-sampler".into())
            .spawn(move || {
                let mut buf: Vec<(String, f64)> = Vec::new();
                while !stop_flag.load(Ordering::Relaxed) {
                    let t = now_millis();
                    sample_registry(&tsdb, &registry.snapshot(), t);
                    buf.clear();
                    extra(&mut buf);
                    for (name, value) in &buf {
                        tsdb.append(name, t, *value);
                    }
                    // Sleep in short slices so stop() returns promptly
                    // even at slow cadences.
                    let mut left = cadence;
                    while !left.is_zero() && !stop_flag.load(Ordering::Relaxed) {
                        let nap = left.min(Duration::from_millis(50));
                        thread::sleep(nap);
                        left = left.saturating_sub(nap);
                    }
                }
            })
            .expect("spawn sampler thread");
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the thread and waits for it to exit.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tsdb::TsdbConfig;
    use crate::Counter;

    #[test]
    fn series_names_mirror_exposition() {
        assert_eq!(series_name("ticks_total", &[]), "ticks_total");
        assert_eq!(
            series_name(
                "decisions_total",
                &[
                    ("action".into(), "throttle".into()),
                    ("reason".into(), "hot".into())
                ]
            ),
            "decisions_total{action=\"throttle\",reason=\"hot\"}"
        );
        assert_eq!(
            series_name("weird", &[("k".into(), "two words".into())]),
            "weird{k=\"two_words\"}"
        );
    }

    #[cfg(feature = "instrument")]
    #[test]
    fn sample_registry_records_counters_and_histograms() {
        let registry = Registry::new();
        let c = Counter::default();
        registry.register_counter("widgets_total", "widgets", &[], &c);
        let h = crate::Histogram::default();
        registry.register_histogram("lat_seconds", "latency", &[], &h, 1e-6);
        c.add(7);
        h.observe(2_000_000);
        let tsdb = Tsdb::new(TsdbConfig::default());
        let touched = sample_registry(&tsdb, &registry.snapshot(), 5);
        assert!(touched >= 3);
        assert_eq!(tsdb.latest("widgets_total"), Some((5, 7.0)));
        assert_eq!(tsdb.latest("lat_seconds_count"), Some((5, 1.0)));
        let (_, sum) = tsdb.latest("lat_seconds_sum").unwrap();
        assert!((sum - 2.0).abs() < 1e-9, "scaled sum, got {sum}");
    }

    #[test]
    fn sampler_thread_collects_extra_series() {
        let tsdb = Tsdb::shared(TsdbConfig::default());
        let registry = Registry::shared();
        let sampler = Sampler::spawn(
            Duration::from_millis(5),
            Arc::clone(&tsdb),
            registry,
            Box::new(|buf| buf.push(("temp/m1/cpu".into(), 41.5))),
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while tsdb.latest("temp/m1/cpu").is_none() && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        sampler.stop();
        let (_, v) = tsdb.latest("temp/m1/cpu").expect("sampled at least once");
        assert_eq!(v, 41.5);
    }
}
