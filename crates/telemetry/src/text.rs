//! Line-by-line parser for the Prometheus text exposition format.
//!
//! The scrape surface is only useful if its output is well-formed, so
//! the parser is strict: every line must be blank, a `# HELP`/`# TYPE`
//! comment, or a sample of the shape
//!
//! ```text
//! name{label="value",...} value [timestamp]
//! ```
//!
//! Both `mercury-stats` (pretty-printing a live snapshot) and the
//! telemetry integration test (asserting the scrape output is valid)
//! parse through here. This module is compiled regardless of the
//! `instrument` feature — parsing has no hot-path cost.

use std::fmt;

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name as it appears on the line (histograms thus appear as
    /// `<family>_bucket` / `<family>_sum` / `<family>_count`).
    pub name: String,
    /// Label pairs, unescaped, in line order.
    pub labels: Vec<(String, String)>,
    /// Sample value (`+Inf`/`-Inf`/`NaN` accepted).
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    #[must_use]
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parse failure, with the 1-based line number where it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exposition line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a full exposition document, returning every sample line.
///
/// ```
/// let text = "# HELP m_total demo\n# TYPE m_total counter\nm_total{k=\"v\"} 3\n";
/// let samples = telemetry::text::parse_exposition(text).unwrap();
/// assert_eq!(samples[0].name, "m_total");
/// assert_eq!(samples[0].label("k"), Some("v"));
/// assert_eq!(samples[0].value, 3.0);
/// ```
///
/// # Errors
///
/// Returns a [`ParseError`] naming the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, ParseError> {
    let mut samples = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            parse_comment(comment, lineno)?;
            continue;
        }
        samples.push(parse_sample(line, lineno)?);
    }
    Ok(samples)
}

/// Validates a comment line: `# HELP <name> <text>` or `# TYPE <name>
/// <counter|gauge|histogram|summary|untyped>`.
fn parse_comment(rest: &str, line: usize) -> Result<(), ParseError> {
    let rest = rest.trim_start();
    let mut parts = rest.splitn(3, ' ');
    let keyword = parts.next().unwrap_or("");
    match keyword {
        "HELP" => {
            let name = parts.next().unwrap_or("");
            if !is_metric_name(name) {
                return Err(ParseError {
                    line,
                    message: format!("HELP names invalid metric {name:?}"),
                });
            }
            Ok(())
        }
        "TYPE" => {
            let name = parts.next().unwrap_or("");
            if !is_metric_name(name) {
                return Err(ParseError {
                    line,
                    message: format!("TYPE names invalid metric {name:?}"),
                });
            }
            let kind = parts.next().unwrap_or("").trim();
            match kind {
                "counter" | "gauge" | "histogram" | "summary" | "untyped" => Ok(()),
                other => Err(ParseError {
                    line,
                    message: format!("unknown TYPE {other:?}"),
                }),
            }
        }
        // Arbitrary comments are legal in the format.
        _ => Ok(()),
    }
}

/// Parses one sample line.
fn parse_sample(line: &str, lineno: usize) -> Result<Sample, ParseError> {
    let err = |message: String| ParseError {
        line: lineno,
        message,
    };
    let name_end = line
        .find(|c: char| c == '{' || c.is_whitespace())
        .ok_or_else(|| err("missing value".to_string()))?;
    let name = &line[..name_end];
    if !is_metric_name(name) {
        return Err(err(format!("invalid metric name {name:?}")));
    }
    let mut rest = &line[name_end..];
    let mut labels = Vec::new();
    if let Some(after_brace) = rest.strip_prefix('{') {
        let close = after_brace
            .find('}')
            .ok_or_else(|| err("unterminated label set".to_string()))?;
        parse_labels(&after_brace[..close], lineno, &mut labels)?;
        rest = &after_brace[close + 1..];
    }
    let mut fields = rest.split_whitespace();
    let value_str = fields
        .next()
        .ok_or_else(|| err("missing value".to_string()))?;
    let value = parse_value(value_str).ok_or_else(|| err(format!("bad value {value_str:?}")))?;
    // Optional timestamp; anything further is malformed.
    if let Some(ts) = fields.next() {
        if ts.parse::<i64>().is_err() {
            return Err(err(format!("bad timestamp {ts:?}")));
        }
    }
    if fields.next().is_some() {
        return Err(err("trailing garbage after timestamp".to_string()));
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Parses the inside of a `{...}` label set.
fn parse_labels(
    body: &str,
    lineno: usize,
    out: &mut Vec<(String, String)>,
) -> Result<(), ParseError> {
    let err = |message: String| ParseError {
        line: lineno,
        message,
    };
    let mut chars = body.chars().peekable();
    loop {
        // Skip separators / trailing comma.
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(());
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        let key = key.trim().to_string();
        if !is_label_name(&key) {
            return Err(err(format!("invalid label name {key:?}")));
        }
        if chars.next() != Some('"') {
            return Err(err(format!("label {key:?} value not quoted")));
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(err(format!("bad escape {other:?} in label {key:?}"))),
                },
                '"' => {
                    closed = true;
                    break;
                }
                c => value.push(c),
            }
        }
        if !closed {
            return Err(err(format!("unterminated value for label {key:?}")));
        }
        out.push((key, value));
    }
}

/// Parses a sample value, accepting the format's special floats.
fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse().ok(),
    }
}

/// `[a-zA-Z_:][a-zA-Z0-9_:]*`
fn is_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// `[a-zA-Z_][a-zA-Z0-9_]*`
fn is_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_labelled_samples() {
        let text = "\
# HELP mercury_net_datagrams_total Datagrams received
# TYPE mercury_net_datagrams_total counter
mercury_net_datagrams_total 42
mercury_freon_decisions_total{action=\"throttle\",reason=\"above_high\"} 3
mercury_cluster_tick_seconds_bucket{le=\"+Inf\"} 7 1700000000
";
        let samples = parse_exposition(text).unwrap();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "mercury_net_datagrams_total");
        assert_eq!(samples[0].value, 42.0);
        assert_eq!(samples[1].label("reason"), Some("above_high"));
        assert_eq!(samples[2].value, 7.0);
        assert!(samples[2].value.is_finite());
    }

    #[test]
    fn unescapes_label_values() {
        let samples = parse_exposition("m{k=\"a\\\"b\\\\c\\nd\"} 1\n").unwrap();
        assert_eq!(samples[0].label("k"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn special_values() {
        let s = parse_exposition("m_bucket{le=\"+Inf\"} 3\nm 0.25\nn NaN\n").unwrap();
        assert_eq!(s[0].label("le"), Some("+Inf"));
        assert_eq!(s[1].value, 0.25);
        assert!(s[2].value.is_nan());
    }

    #[test]
    fn rejects_malformed_lines() {
        for (bad, what) in [
            ("1garbage 3", "bad name"),
            ("m{k=\"v\"", "no value"),
            ("m{k=v} 1", "unquoted label"),
            ("m notanumber", "bad value"),
            ("m 1 notatimestamp", "bad timestamp"),
            ("# TYPE m sideways", "bad type"),
        ] {
            let res = parse_exposition(bad);
            assert!(res.is_err(), "{what}: {bad:?} should fail");
            assert_eq!(res.unwrap_err().line, 1, "{what}");
        }
    }

    #[test]
    fn error_reports_line_number() {
        let err = parse_exposition("ok 1\nok 2\nbroken {\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("line 3"));
    }
}
