//! Structured causal tracing: timed spans with parent links, a bounded
//! process-wide span store, and Chrome trace-event export.
//!
//! Metrics (the rest of this crate) aggregate; spans *narrate*. A
//! [`SpanRecord`] is one timed interval — a solver tick phase, a UDP
//! request, a tempd observation — with a process-unique id and an
//! optional parent id. Parent links are what make the causal chain of
//! the paper reconstructable from one artifact: a Freon actuation span
//! points at the rule-evaluation span that requested it, which points at
//! the tempd observation that fired the rule.
//!
//! Design rules follow the crate's:
//!
//! 1. **No globals.** A [`Tracer`] is an `Arc`-backed handle owned by
//!    whoever wants a trace (a `SolverService`, an experiment). Cloning
//!    shares the store. The default [`Tracer::disabled`] handle carries
//!    no storage, so components can hold one unconditionally.
//! 2. **Cheap when off, bounded when on.** With the `instrument`
//!    feature off every method is a no-op the optimizer deletes. At
//!    runtime a detached or disabled tracer costs one branch per call
//!    site. When recording, ids come from one relaxed atomic, clocks
//!    from `Instant`, and finished spans go into a bounded ring under a
//!    mutex — two lock acquisitions per span (hot threads batch through
//!    [`LocalSpans`] instead, paying one lock per flush). The ring
//!    overwrites oldest-first and counts what it dropped.
//! 3. **Mergeable.** Span ids are unique per tracer, timestamps are
//!    nanoseconds since the tracer's epoch, and the JSONL wire form
//!    round-trips losslessly, so dumps from several sources can be
//!    concatenated and exported together (`mercury-trace` does exactly
//!    that).
//!
//! Export targets: [`to_jsonl`] / [`parse_jsonl`] for the wire and for
//! incident bundles, [`to_chrome_trace`] for `chrome://tracing` /
//! Perfetto (complete `"X"` events; instants are zero-duration spans).

use std::borrow::Cow;
#[cfg(feature = "instrument")]
use std::collections::VecDeque;
use std::fmt;
#[cfg(feature = "instrument")]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
#[cfg(feature = "instrument")]
use std::sync::{Arc, Mutex};
#[cfg(feature = "instrument")]
use std::time::Instant;

/// Default bound on retained spans (~6 MiB at ~100 B/span).
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// Argument list attached to a finished span. Keys are `'static` at
/// every in-process call site; parsed spans own theirs.
pub type SpanArgs = Vec<(Cow<'static, str>, String)>;

/// One finished span: a timed interval with a process-unique `id` and a
/// `parent` link (`0` = no parent). `dur_ns == 0` marks an instant
/// event. `tid` is a logical lane for display: `0` for the recording
/// thread, `1 + worker index` for pool workers.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the causally-enclosing span, or 0.
    pub parent: u64,
    /// Logical lane (thread) for display.
    pub tid: u32,
    /// Start time, nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 = instant event).
    pub dur_ns: u64,
    /// Category (subsystem): `solver`, `net`, `freon`, `engine`.
    pub cat: Cow<'static, str>,
    /// Span name, stable and grep-able (`cluster.tick`, `net.request`).
    pub name: Cow<'static, str>,
    /// Structured key/value arguments.
    pub args: SpanArgs,
}

/// An in-flight span started by [`Tracer::start`]. Inert (and free)
/// when the tracer was detached or disabled at start time. Dropping an
/// unfinished span simply discards it.
#[derive(Debug)]
#[must_use = "finish the span with Tracer::end (or LocalSpans::end)"]
pub struct Span {
    #[cfg(feature = "instrument")]
    id: u64,
    #[cfg(feature = "instrument")]
    parent: u64,
    #[cfg(feature = "instrument")]
    start_ns: u64,
    #[cfg(feature = "instrument")]
    name: &'static str,
    #[cfg(feature = "instrument")]
    cat: &'static str,
    #[cfg(feature = "instrument")]
    live: bool,
}

impl Span {
    /// A span that records nothing when ended.
    pub fn inert() -> Span {
        Span {
            #[cfg(feature = "instrument")]
            id: 0,
            #[cfg(feature = "instrument")]
            parent: 0,
            #[cfg(feature = "instrument")]
            start_ns: 0,
            #[cfg(feature = "instrument")]
            name: "",
            #[cfg(feature = "instrument")]
            cat: "",
            #[cfg(feature = "instrument")]
            live: false,
        }
    }

    /// This span's id (0 when inert) — pass as `parent` to children or
    /// stash it to link later work back to this span.
    #[must_use]
    pub fn id(&self) -> u64 {
        #[cfg(feature = "instrument")]
        {
            if self.live {
                self.id
            } else {
                0
            }
        }
        #[cfg(not(feature = "instrument"))]
        {
            0
        }
    }

    /// Whether ending this span will record anything.
    #[must_use]
    pub fn is_live(&self) -> bool {
        #[cfg(feature = "instrument")]
        {
            self.live
        }
        #[cfg(not(feature = "instrument"))]
        {
            false
        }
    }
}

#[cfg(feature = "instrument")]
#[derive(Debug)]
struct Store {
    ring: VecDeque<SpanRecord>,
    capacity: usize,
    dropped: u64,
}

#[cfg(feature = "instrument")]
impl Store {
    fn push(&mut self, rec: SpanRecord) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(rec);
    }
}

#[cfg(feature = "instrument")]
#[derive(Debug)]
struct TracerInner {
    epoch: Instant,
    next_id: AtomicU64,
    enabled: AtomicBool,
    store: Mutex<Store>,
}

#[cfg(feature = "instrument")]
fn lock(inner: &TracerInner) -> std::sync::MutexGuard<'_, Store> {
    // A span push never panics while holding the lock; recover from a
    // poisoning panic elsewhere rather than cascading into tracing.
    inner
        .store
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A shareable handle to one span store.
///
/// ```
/// use telemetry::trace::Tracer;
/// let tracer = Tracer::new(1024);
/// let tick = tracer.start("cluster.tick", "solver");
/// let phase = tracer.start_child("batch.sweep", "solver", tick.id());
/// tracer.end(phase);
/// tracer.end(tick);
/// # #[cfg(feature = "instrument")]
/// assert_eq!(tracer.recent(10).len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    #[cfg(feature = "instrument")]
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A detached tracer: every operation is a cheap no-op. This is the
    /// `Default`, so components can hold a `Tracer` unconditionally.
    #[must_use]
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Creates a tracer retaining at most `capacity` spans (min 16),
    /// enabled immediately.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        #[cfg(feature = "instrument")]
        {
            Tracer {
                inner: Some(Arc::new(TracerInner {
                    epoch: Instant::now(),
                    next_id: AtomicU64::new(1),
                    enabled: AtomicBool::new(true),
                    store: Mutex::new(Store {
                        ring: VecDeque::new(),
                        capacity: capacity.max(16),
                        dropped: 0,
                    }),
                })),
            }
        }
        #[cfg(not(feature = "instrument"))]
        {
            let _ = capacity;
            Tracer::default()
        }
    }

    /// Whether this handle has a backing store at all.
    #[must_use]
    pub fn is_attached(&self) -> bool {
        #[cfg(feature = "instrument")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "instrument"))]
        {
            false
        }
    }

    /// Whether spans started now will record (attached *and* enabled).
    #[must_use]
    pub fn is_active(&self) -> bool {
        #[cfg(feature = "instrument")]
        {
            self.inner
                .as_deref()
                .is_some_and(|i| i.enabled.load(Ordering::Relaxed))
        }
        #[cfg(not(feature = "instrument"))]
        {
            false
        }
    }

    /// Runtime switch: pauses / resumes recording without detaching.
    pub fn set_enabled(&self, on: bool) {
        #[cfg(feature = "instrument")]
        if let Some(inner) = self.inner.as_deref() {
            inner.enabled.store(on, Ordering::Relaxed);
        }
        #[cfg(not(feature = "instrument"))]
        let _ = on;
    }

    /// Nanoseconds since this tracer's epoch (0 when detached).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        #[cfg(feature = "instrument")]
        {
            self.inner
                .as_deref()
                .map_or(0, |i| i.epoch.elapsed().as_nanos() as u64)
        }
        #[cfg(not(feature = "instrument"))]
        {
            0
        }
    }

    /// Starts a root span.
    pub fn start(&self, name: &'static str, cat: &'static str) -> Span {
        self.start_child(name, cat, 0)
    }

    /// Starts a span whose parent is the span with id `parent` (0 for
    /// none). Inert if the tracer is detached or disabled.
    pub fn start_child(&self, name: &'static str, cat: &'static str, parent: u64) -> Span {
        #[cfg(feature = "instrument")]
        {
            let Some(inner) = self.inner.as_deref() else {
                return Span::inert();
            };
            if !inner.enabled.load(Ordering::Relaxed) {
                return Span::inert();
            }
            Span {
                id: inner.next_id.fetch_add(1, Ordering::Relaxed),
                parent,
                start_ns: inner.epoch.elapsed().as_nanos() as u64,
                name,
                cat,
                live: true,
            }
        }
        #[cfg(not(feature = "instrument"))]
        {
            let _ = (name, cat, parent);
            Span::inert()
        }
    }

    /// Finishes a span with no arguments.
    pub fn end(&self, span: Span) {
        self.end_with_args(span, Vec::new());
    }

    /// Finishes a span, attaching arguments.
    pub fn end_with_args(&self, span: Span, args: SpanArgs) {
        #[cfg(feature = "instrument")]
        {
            if !span.live {
                return;
            }
            let Some(inner) = self.inner.as_deref() else {
                return;
            };
            let end_ns = inner.epoch.elapsed().as_nanos() as u64;
            lock(inner).push(finish(span, end_ns, 0, args));
        }
        #[cfg(not(feature = "instrument"))]
        let _ = (span, args);
    }

    /// Records a zero-duration instant event; returns its span id (0
    /// when nothing was recorded).
    pub fn instant(
        &self,
        name: &'static str,
        cat: &'static str,
        parent: u64,
        args: SpanArgs,
    ) -> u64 {
        #[cfg(feature = "instrument")]
        {
            let span = self.start_child(name, cat, parent);
            let id = span.id();
            self.end_with_args(span, args);
            id
        }
        #[cfg(not(feature = "instrument"))]
        {
            let _ = (name, cat, parent, args);
            0
        }
    }

    /// Pushes an externally-built record (used by [`LocalSpans`]).
    pub fn push(&self, rec: SpanRecord) {
        #[cfg(feature = "instrument")]
        {
            if let Some(inner) = self.inner.as_deref() {
                lock(inner).push(rec);
            }
        }
        #[cfg(not(feature = "instrument"))]
        let _ = rec;
    }

    /// A lock-free per-thread buffer feeding this tracer. `tid` is the
    /// logical lane recorded on its spans (workers use `1 + index`).
    #[must_use]
    pub fn local(&self, tid: u32) -> LocalSpans {
        LocalSpans {
            tracer: self.clone(),
            tid,
            #[cfg(feature = "instrument")]
            buf: Vec::new(),
        }
    }

    /// The most recent `limit` finished spans, oldest first, without
    /// clearing the store.
    #[must_use]
    pub fn recent(&self, limit: usize) -> Vec<SpanRecord> {
        #[cfg(feature = "instrument")]
        {
            let Some(inner) = self.inner.as_deref() else {
                return Vec::new();
            };
            let store = lock(inner);
            let skip = store.ring.len().saturating_sub(limit);
            store.ring.iter().skip(skip).cloned().collect()
        }
        #[cfg(not(feature = "instrument"))]
        {
            let _ = limit;
            Vec::new()
        }
    }

    /// Removes and returns every finished span, oldest first.
    #[must_use]
    pub fn drain(&self) -> Vec<SpanRecord> {
        #[cfg(feature = "instrument")]
        {
            let Some(inner) = self.inner.as_deref() else {
                return Vec::new();
            };
            lock(inner).ring.drain(..).collect()
        }
        #[cfg(not(feature = "instrument"))]
        {
            Vec::new()
        }
    }

    /// Spans lost to ring wraparound since creation.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        #[cfg(feature = "instrument")]
        {
            self.inner.as_deref().map_or(0, |i| lock(i).dropped)
        }
        #[cfg(not(feature = "instrument"))]
        {
            0
        }
    }
}

#[cfg(feature = "instrument")]
fn finish(span: Span, end_ns: u64, tid: u32, args: SpanArgs) -> SpanRecord {
    SpanRecord {
        id: span.id,
        parent: span.parent,
        tid,
        start_ns: span.start_ns,
        dur_ns: end_ns.saturating_sub(span.start_ns),
        cat: Cow::Borrowed(span.cat),
        name: Cow::Borrowed(span.name),
        args,
    }
}

/// A per-thread span buffer: `end` pushes into a plain `Vec` (no lock,
/// no contention with other threads), [`flush`](LocalSpans::flush)
/// hands the batch to the shared store under one lock. Pool workers use
/// one of these per worker so the per-tick hot path never contends.
#[derive(Debug)]
pub struct LocalSpans {
    tracer: Tracer,
    tid: u32,
    #[cfg(feature = "instrument")]
    buf: Vec<SpanRecord>,
}

impl LocalSpans {
    /// The logical lane this buffer records on.
    #[must_use]
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Starts a span (ids and clock come from the shared tracer).
    pub fn start(&self, name: &'static str, cat: &'static str, parent: u64) -> Span {
        self.tracer.start_child(name, cat, parent)
    }

    /// Finishes a span into the local buffer — no locking.
    pub fn end(&mut self, span: Span) {
        self.end_with_args(span, Vec::new());
    }

    /// Finishes a span with arguments into the local buffer.
    pub fn end_with_args(&mut self, span: Span, args: SpanArgs) {
        #[cfg(feature = "instrument")]
        {
            if !span.live {
                return;
            }
            let end_ns = self.tracer.now_ns();
            let tid = self.tid;
            self.buf.push(finish(span, end_ns, tid, args));
        }
        #[cfg(not(feature = "instrument"))]
        let _ = (span, args);
    }

    /// Moves every buffered span into the shared store (one lock).
    pub fn flush(&mut self) {
        #[cfg(feature = "instrument")]
        {
            if self.buf.is_empty() {
                return;
            }
            if let Some(inner) = self.tracer.inner.as_deref() {
                let mut store = lock(inner);
                for rec in self.buf.drain(..) {
                    store.push(rec);
                }
            } else {
                self.buf.clear();
            }
        }
    }
}

impl Drop for LocalSpans {
    fn drop(&mut self) {
        self.flush();
    }
}

// ---------------------------------------------------------------------------
// Serialization: JSONL wire/bundle form and Chrome trace-event export.
// Compiled regardless of the `instrument` feature — parsing and
// formatting have no hot-path cost and `mercury-trace` needs them even
// in cfg-off builds.
// ---------------------------------------------------------------------------

/// Escapes a string into a JSON string literal (without quotes).
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl SpanRecord {
    /// Renders this span as one compact JSON object (the JSONL /
    /// incident-bundle form; [`SpanRecord::from_json`] inverts it).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!(
            "{{\"id\":{},\"parent\":{},\"tid\":{},\"start_ns\":{},\"dur_ns\":{},\"cat\":\"",
            self.id, self.parent, self.tid, self.start_ns, self.dur_ns
        ));
        escape_json(&self.cat, &mut out);
        out.push_str("\",\"name\":\"");
        escape_json(&self.name, &mut out);
        out.push_str("\",\"args\":{");
        for (i, (k, v)) in self.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(k, &mut out);
            out.push_str("\":\"");
            escape_json(v, &mut out);
            out.push('"');
        }
        out.push_str("}}");
        out
    }

    /// Parses one span object produced by [`SpanRecord::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`TraceParseError`] describing the first malformed
    /// byte.
    pub fn from_json(s: &str) -> Result<SpanRecord, TraceParseError> {
        let mut p = Parser::new(s);
        let rec = p.parse_span()?;
        p.ws();
        if !p.at_end() {
            return Err(p.err("trailing bytes after span object"));
        }
        Ok(rec)
    }
}

/// Renders spans as newline-delimited JSON, one span object per line —
/// the wire form of `Reply::Trace` and the `spans` payload of incident
/// bundles (chunked at line boundaries like the metrics scrape).
#[must_use]
pub fn to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&s.to_json());
        out.push('\n');
    }
    out
}

/// Parses newline-delimited span objects (blank lines skipped).
///
/// # Errors
///
/// Returns a [`TraceParseError`] naming the first malformed line.
pub fn parse_jsonl(text: &str) -> Result<Vec<SpanRecord>, TraceParseError> {
    let mut spans = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        spans.push(SpanRecord::from_json(line)?);
    }
    Ok(spans)
}

/// Renders spans as a Chrome trace-event JSON document (the "JSON
/// object format": `{"traceEvents": [...]}`) loadable in
/// `chrome://tracing` and Perfetto. Timestamps convert to microseconds;
/// every event carries its `span_id` / `parent_id` in `args` so the
/// causal chain survives the export.
#[must_use]
pub fn to_chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json(&s.name, &mut out);
        out.push_str("\",\"cat\":\"");
        escape_json(&s.cat, &mut out);
        out.push_str(&format!(
            "\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{",
            s.start_ns as f64 / 1_000.0,
            s.dur_ns as f64 / 1_000.0,
            s.tid
        ));
        out.push_str(&format!(
            "\"span_id\":\"{}\",\"parent_id\":\"{}\"",
            s.id, s.parent
        ));
        for (k, v) in &s.args {
            out.push_str(",\"");
            escape_json(k, &mut out);
            out.push_str("\":\"");
            escape_json(v, &mut out);
            out.push('"');
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// A span-JSON parse failure, with the byte offset where it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceParseError {
    /// Byte offset of the offending input.
    pub pos: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "span json at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// Minimal cursor parser for the fixed span-object shape this module
/// emits (flat fields plus one nested string-valued `args` object).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> TraceParseError {
        TraceParseError {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), TraceParseError> {
        self.ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn parse_string(&mut self) -> Result<String, TraceParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape not a scalar"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(self.err(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8
                    // because it came in as &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("eof"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_u64(&mut self) -> Result<u64, TraceParseError> {
        self.ws();
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("number out of range"))
    }

    fn parse_args(&mut self) -> Result<SpanArgs, TraceParseError> {
        self.expect(b'{')?;
        let mut args = SpanArgs::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(args);
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_string()?;
            args.push((Cow::Owned(key), value));
            self.ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(args);
                }
                _ => return Err(self.err("expected ',' or '}' in args")),
            }
        }
    }

    fn parse_span(&mut self) -> Result<SpanRecord, TraceParseError> {
        self.expect(b'{')?;
        let mut rec = SpanRecord {
            id: 0,
            parent: 0,
            tid: 0,
            start_ns: 0,
            dur_ns: 0,
            cat: Cow::Borrowed(""),
            name: Cow::Borrowed(""),
            args: Vec::new(),
        };
        let mut saw_id = false;
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            match key.as_str() {
                "id" => {
                    rec.id = self.parse_u64()?;
                    saw_id = true;
                }
                "parent" => rec.parent = self.parse_u64()?,
                "tid" => {
                    rec.tid = u32::try_from(self.parse_u64()?)
                        .map_err(|_| self.err("tid out of range"))?;
                }
                "start_ns" => rec.start_ns = self.parse_u64()?,
                "dur_ns" => rec.dur_ns = self.parse_u64()?,
                "cat" => rec.cat = Cow::Owned(self.parse_string()?),
                "name" => rec.name = Cow::Owned(self.parse_string()?),
                "args" => rec.args = self.parse_args()?,
                other => return Err(self.err(format!("unknown span field {other:?}"))),
            }
            self.ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.err("expected ',' or '}' in span")),
            }
        }
        if !saw_id || rec.id == 0 {
            return Err(self.err("span object missing a nonzero id"));
        }
        if rec.name.is_empty() {
            return Err(self.err("span object missing a name"));
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: u64, parent: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            tid: 2,
            start_ns: 1_000,
            dur_ns: 250,
            cat: Cow::Borrowed("solver"),
            name: Cow::Borrowed("cluster.tick"),
            args: vec![(Cow::Borrowed("tick"), "7".to_string())],
        }
    }

    #[test]
    fn json_roundtrip_preserves_every_field() {
        let mut rec = sample(3, 1);
        rec.args
            .push((Cow::Borrowed("msg"), "quo\"te\\slash\nnl\ttab".to_string()));
        let parsed = SpanRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(parsed, rec);
    }

    #[test]
    fn jsonl_roundtrip_and_blank_lines() {
        let spans = vec![sample(1, 0), sample(2, 1)];
        let mut text = to_jsonl(&spans);
        text.push('\n');
        assert_eq!(parse_jsonl(&text).unwrap(), spans);
        assert!(parse_jsonl("").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_spans() {
        for (bad, what) in [
            ("{\"id\":0,\"name\":\"x\"}", "zero id"),
            ("{\"parent\":1}", "missing id"),
            ("{\"id\":1,\"name\":\"x\"} trailing", "trailing bytes"),
            ("{\"id\":1,\"name\":\"x\",\"bogus\":3}", "unknown field"),
            ("{\"id\":1,\"name\":\"x\"", "unterminated object"),
        ] {
            assert!(SpanRecord::from_json(bad).is_err(), "{what}: {bad}");
        }
    }

    #[test]
    fn chrome_export_is_wellformed() {
        let out = to_chrome_trace(&[sample(1, 0), sample(2, 1)]);
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.ends_with("\"displayTimeUnit\":\"ms\"}"));
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"span_id\":\"2\",\"parent_id\":\"1\""));
        assert!(out.contains("\"ts\":1.000"));
    }

    #[cfg(feature = "instrument")]
    mod live {
        use super::*;

        #[test]
        fn spans_record_with_parent_links() {
            let tracer = Tracer::new(64);
            let root = tracer.start("a", "t");
            let child = tracer.start_child("b", "t", root.id());
            assert_ne!(root.id(), 0);
            tracer.end(child);
            tracer.end_with_args(root, vec![(Cow::Borrowed("k"), "v".into())]);
            let spans = tracer.recent(10);
            assert_eq!(spans.len(), 2);
            assert_eq!(spans[0].name, "b");
            assert_eq!(spans[0].parent, spans[1].id);
            assert_eq!(spans[1].args[0].1, "v");
            assert!(spans[1].dur_ns >= spans[0].dur_ns);
        }

        #[test]
        fn detached_and_disabled_tracers_record_nothing() {
            let detached = Tracer::disabled();
            let s = detached.start("a", "t");
            assert!(!s.is_live());
            detached.end(s);
            assert!(detached.recent(10).is_empty());
            assert!(!detached.is_attached());

            let paused = Tracer::new(64);
            paused.set_enabled(false);
            assert!(paused.is_attached() && !paused.is_active());
            let s = paused.start("a", "t");
            assert!(!s.is_live());
            paused.end(s);
            assert_eq!(paused.instant("i", "t", 0, Vec::new()), 0);
            assert!(paused.recent(10).is_empty());
        }

        #[test]
        fn ring_bounds_and_counts_drops() {
            let tracer = Tracer::new(16); // min capacity
            for _ in 0..20 {
                let s = tracer.start("a", "t");
                tracer.end(s);
            }
            assert_eq!(tracer.recent(100).len(), 16);
            assert_eq!(tracer.dropped(), 4);
            assert_eq!(tracer.drain().len(), 16);
            assert!(tracer.recent(100).is_empty());
        }

        #[test]
        fn local_spans_flush_with_their_tid() {
            let tracer = Tracer::new(64);
            let mut local = tracer.local(3);
            let s = local.start("work", "pool", 9);
            local.end(s);
            assert!(tracer.recent(10).is_empty(), "buffered, not yet flushed");
            local.flush();
            let spans = tracer.recent(10);
            assert_eq!(spans.len(), 1);
            assert_eq!(spans[0].tid, 3);
            assert_eq!(spans[0].parent, 9);

            // Drop flushes too.
            let mut local = tracer.local(4);
            let s = local.start("more", "pool", 0);
            local.end(s);
            drop(local);
            assert_eq!(tracer.recent(10).len(), 2);
        }

        #[test]
        fn instants_are_zero_duration_and_linked() {
            let tracer = Tracer::new(64);
            let root = tracer.start("a", "t");
            let root_id = root.id();
            let id = tracer.instant("evt", "t", root_id, Vec::new());
            tracer.end(root);
            assert_ne!(id, 0);
            let spans = tracer.recent(10);
            let evt = spans.iter().find(|s| s.name == "evt").unwrap();
            assert_eq!(evt.parent, root_id);
        }

        #[test]
        fn ids_are_unique_across_threads() {
            let tracer = Tracer::new(4096);
            std::thread::scope(|scope| {
                for tid in 0..4u32 {
                    let mut local = tracer.local(tid);
                    scope.spawn(move || {
                        for _ in 0..200 {
                            let s = local.start("w", "t", 0);
                            local.end(s);
                        }
                    });
                }
            });
            let spans = tracer.recent(5000);
            assert_eq!(spans.len(), 800);
            let mut ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 800, "span ids must be unique");
        }
    }
}
