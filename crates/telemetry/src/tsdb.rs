//! Embedded time-series store: Gorilla-style compressed history rings.
//!
//! [`Tsdb`] keeps one bounded ring of compressed blocks per series.
//! Inside a block, timestamps are delta-of-delta coded and values are
//! XOR coded against their predecessor (the scheme from Facebook's
//! Gorilla paper), so a steady 1 Hz temperature series costs a couple
//! of bytes per sample instead of sixteen. Decoding is bit-exact: every
//! `(u64, f64)` pair appended — including NaNs with odd payloads,
//! infinities, and denormals — comes back with identical bits.
//!
//! Memory is bounded per series: when the ring exceeds
//! [`TsdbConfig::max_blocks_per_series`] the oldest sealed block is
//! evicted, optionally spilled to an append-only segment file under
//! [`TsdbConfig::spill_dir`] (`results/series/` in the experiment
//! harness) where [`read_segment`] can recover it later.
//!
//! The store itself is clock-free and unit-agnostic: callers pick the
//! timestamp unit (the service samples wall-clock milliseconds, the
//! freon engine samples simulated seconds) and must append each series
//! in non-decreasing time order — out-of-order appends are dropped and
//! counted, never reordered, preserving the repo's determinism
//! invariant.

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Magic prefix of an on-disk segment file (see [`read_segment`]).
pub const SEGMENT_MAGIC: &[u8; 4] = b"MTS1";

// ---------------------------------------------------------------------------
// Bit-level plumbing
// ---------------------------------------------------------------------------

/// Append-only MSB-first bit buffer.
#[derive(Debug, Clone, Default)]
struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the final byte (0 when byte-aligned).
    used: u8,
}

impl BitWriter {
    fn push_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.len() - 1;
            self.bytes[last] |= 1 << (7 - self.used);
        }
        self.used = (self.used + 1) % 8;
    }

    /// Writes the low `count` bits of `value`, most significant first.
    fn push_bits(&mut self, value: u64, count: u32) {
        debug_assert!(count <= 64);
        for i in (0..count).rev() {
            self.push_bit((value >> i) & 1 == 1);
        }
    }

    fn byte_len(&self) -> usize {
        self.bytes.len()
    }
}

/// MSB-first bit cursor over a byte slice.
#[derive(Debug)]
struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit position.
    pos: usize,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn read_bit(&mut self) -> Option<bool> {
        let byte = self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8) as u32)) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    fn read_bits(&mut self, count: u32) -> Option<u64> {
        let mut value = 0u64;
        for _ in 0..count {
            value = (value << 1) | u64::from(self.read_bit()?);
        }
        Some(value)
    }
}

// ---------------------------------------------------------------------------
// Block encoding
// ---------------------------------------------------------------------------

/// One sealed, immutable compressed run of samples.
#[derive(Debug, Clone)]
pub struct Block {
    /// Compressed payload (timestamp + value streams interleaved).
    bytes: Vec<u8>,
    /// Number of samples encoded in `bytes`.
    count: u32,
    /// Timestamp of the first sample.
    t_first: u64,
    /// Timestamp of the last sample.
    t_last: u64,
}

impl Block {
    /// Timestamp of the first sample in the block.
    #[must_use]
    pub fn t_first(&self) -> u64 {
        self.t_first
    }

    /// Timestamp of the last sample in the block.
    #[must_use]
    pub fn t_last(&self) -> u64 {
        self.t_last
    }

    /// Number of samples in the block.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Compressed payload size in bytes.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Decompresses the block back to its `(timestamp, value)` pairs.
    ///
    /// The decode mirrors the append path bit for bit; a well-formed
    /// block always yields exactly [`count`](Self::count) samples.
    #[must_use]
    pub fn samples(&self) -> Vec<(u64, f64)> {
        decode_stream(&self.bytes, self.count)
    }
}

/// Streaming Gorilla encoder for the open (not yet sealed) block.
#[derive(Debug, Clone, Default)]
struct BlockBuilder {
    w: BitWriter,
    count: u32,
    t_first: u64,
    t_last: u64,
    prev_delta: u64,
    prev_bits: u64,
    lead: u32,
    trail: u32,
    window_valid: bool,
}

impl BlockBuilder {
    /// Appends one sample; `t` must be `>= self.t_last` once non-empty.
    fn push(&mut self, t: u64, value: f64) {
        let bits = value.to_bits();
        if self.count == 0 {
            self.t_first = t;
            self.w.push_bits(t, 64);
            self.w.push_bits(bits, 64);
            self.prev_delta = 0;
        } else {
            // Delta-of-delta timestamp classes: 0 | 10+7b | 110+9b |
            // 1110+12b | 1111+64b. Wrapping arithmetic keeps arbitrary
            // u64 timestamps exact through the i64 cast.
            let delta = t.wrapping_sub(self.t_last);
            let dod = delta.wrapping_sub(self.prev_delta) as i64;
            self.prev_delta = delta;
            if dod == 0 {
                self.w.push_bit(false);
            } else if (-63..=64).contains(&dod) {
                self.w.push_bits(0b10, 2);
                self.w.push_bits((dod + 63) as u64, 7);
            } else if (-255..=256).contains(&dod) {
                self.w.push_bits(0b110, 3);
                self.w.push_bits((dod + 255) as u64, 9);
            } else if (-2047..=2048).contains(&dod) {
                self.w.push_bits(0b1110, 4);
                self.w.push_bits((dod + 2047) as u64, 12);
            } else {
                self.w.push_bits(0b1111, 4);
                self.w.push_bits(dod as u64, 64);
            }

            // XOR value classes: 0 (identical) | 10 + bits inside the
            // previous leading/trailing window | 11 + new window.
            let xor = bits ^ self.prev_bits;
            if xor == 0 {
                self.w.push_bit(false);
            } else {
                self.w.push_bit(true);
                let lead = xor.leading_zeros().min(31);
                let trail = xor.trailing_zeros();
                if self.window_valid && lead >= self.lead && trail >= self.trail {
                    self.w.push_bit(false);
                    let sig = 64 - self.lead - self.trail;
                    self.w.push_bits(xor >> self.trail, sig);
                } else {
                    self.w.push_bit(true);
                    let sig = 64 - lead - trail;
                    self.w.push_bits(u64::from(lead), 5);
                    self.w.push_bits(u64::from(sig - 1), 6);
                    self.w.push_bits(xor >> trail, sig);
                    self.lead = lead;
                    self.trail = trail;
                    self.window_valid = true;
                }
            }
        }
        self.t_last = t;
        self.prev_bits = bits;
        self.count += 1;
    }

    fn seal(&mut self) -> Block {
        let sealed = std::mem::take(self);
        Block {
            bytes: sealed.w.bytes,
            count: sealed.count,
            t_first: sealed.t_first,
            t_last: sealed.t_last,
        }
    }

    /// Decodes the open block's samples so queries see un-sealed data.
    fn samples(&self) -> Vec<(u64, f64)> {
        decode_stream(&self.w.bytes, self.count)
    }
}

/// Decodes `count` samples out of a compressed stream.
fn decode_stream(bytes: &[u8], count: u32) -> Vec<(u64, f64)> {
    let mut out = Vec::with_capacity(count as usize);
    if count == 0 {
        return out;
    }
    let mut r = BitReader::new(bytes);
    let Some(mut t) = r.read_bits(64) else {
        return out;
    };
    let Some(mut bits) = r.read_bits(64) else {
        return out;
    };
    out.push((t, f64::from_bits(bits)));
    let mut delta = 0u64;
    let (mut lead, mut trail) = (0u32, 0u32);
    for _ in 1..count {
        let dod = match r.read_bit() {
            Some(false) => 0i64,
            Some(true) => match r.read_bit() {
                Some(false) => match r.read_bits(7) {
                    Some(v) => v as i64 - 63,
                    None => break,
                },
                Some(true) => match r.read_bit() {
                    Some(false) => match r.read_bits(9) {
                        Some(v) => v as i64 - 255,
                        None => break,
                    },
                    Some(true) => match r.read_bit() {
                        Some(false) => match r.read_bits(12) {
                            Some(v) => v as i64 - 2047,
                            None => break,
                        },
                        Some(true) => match r.read_bits(64) {
                            Some(v) => v as i64,
                            None => break,
                        },
                        None => break,
                    },
                    None => break,
                },
                None => break,
            },
            None => break,
        };
        delta = delta.wrapping_add(dod as u64);
        t = t.wrapping_add(delta);

        match r.read_bit() {
            Some(false) => {}
            Some(true) => match r.read_bit() {
                Some(false) => {
                    let sig = 64 - lead - trail;
                    match r.read_bits(sig) {
                        Some(v) => bits ^= v << trail,
                        None => break,
                    }
                }
                Some(true) => {
                    let Some(new_lead) = r.read_bits(5) else {
                        break;
                    };
                    let Some(sig_m1) = r.read_bits(6) else { break };
                    let sig = sig_m1 as u32 + 1;
                    lead = new_lead as u32;
                    trail = 64 - lead - sig;
                    match r.read_bits(sig) {
                        Some(v) => bits ^= v << trail,
                        None => break,
                    }
                }
                None => break,
            },
            None => break,
        }
        out.push((t, f64::from_bits(bits)));
    }
    out
}

// ---------------------------------------------------------------------------
// Series + store
// ---------------------------------------------------------------------------

/// Sizing knobs for a [`Tsdb`].
#[derive(Debug, Clone)]
pub struct TsdbConfig {
    /// Samples per compressed block before it is sealed.
    pub samples_per_block: u32,
    /// Sealed blocks retained per series; the oldest is evicted beyond
    /// this (spilled to disk when `spill_dir` is set, dropped otherwise).
    pub max_blocks_per_series: usize,
    /// Directory for append-only `.seg` spill files, one per series.
    pub spill_dir: Option<PathBuf>,
}

impl Default for TsdbConfig {
    fn default() -> Self {
        Self {
            samples_per_block: 240,
            max_blocks_per_series: 16,
            spill_dir: None,
        }
    }
}

#[derive(Debug, Default)]
struct SeriesStore {
    open: BlockBuilder,
    blocks: VecDeque<Block>,
    evicted_blocks: u64,
    dropped_out_of_order: u64,
}

#[derive(Debug)]
struct SeriesEntry {
    name: String,
    store: SeriesStore,
}

#[derive(Debug, Default)]
struct TsdbInner {
    index: HashMap<String, usize>,
    series: Vec<SeriesEntry>,
}

/// Stable handle to one series, resolved once via [`Tsdb::handle`] so
/// hot append paths skip the name hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesHandle(usize);

/// Aggregate counters over the whole store (see [`Tsdb::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TsdbStats {
    /// Number of distinct series.
    pub series: usize,
    /// Sealed blocks currently retained across every ring.
    pub sealed_blocks: usize,
    /// Total samples currently queryable (sealed + open).
    pub samples: u64,
    /// Blocks evicted from rings since the store was created.
    pub evicted_blocks: u64,
    /// Appends dropped for arriving out of time order.
    pub dropped_out_of_order: u64,
}

/// One downsampled bucket from [`Tsdb::query_downsampled`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Bucket start timestamp (inclusive).
    pub t: u64,
    /// Minimum sample value in the bucket.
    pub min: f64,
    /// Mean of the sample values in the bucket.
    pub mean: f64,
    /// Maximum sample value in the bucket.
    pub max: f64,
    /// Samples aggregated into the bucket.
    pub count: u64,
}

/// Thread-safe store of per-series compressed history rings.
#[derive(Debug)]
pub struct Tsdb {
    config: TsdbConfig,
    inner: Mutex<TsdbInner>,
}

impl Tsdb {
    /// Empty store with the given sizing.
    #[must_use]
    pub fn new(config: TsdbConfig) -> Self {
        Self {
            config,
            inner: Mutex::new(TsdbInner::default()),
        }
    }

    /// `Arc`-wrapped store, ready to share with a [`crate::Sampler`].
    #[must_use]
    pub fn shared(config: TsdbConfig) -> Arc<Self> {
        Arc::new(Self::new(config))
    }

    /// The sizing this store was built with.
    #[must_use]
    pub fn config(&self) -> &TsdbConfig {
        &self.config
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TsdbInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Resolves (creating if needed) a stable handle for `series`.
    pub fn handle(&self, series: &str) -> SeriesHandle {
        let mut inner = self.lock();
        SeriesHandle(entry_index(&mut inner, series))
    }

    /// Appends one sample to `series`, creating it on first touch.
    ///
    /// Returns `false` (and counts a drop) if `t` precedes the series'
    /// newest timestamp; equal timestamps are accepted.
    pub fn append(&self, series: &str, t: u64, value: f64) -> bool {
        let mut inner = self.lock();
        let idx = entry_index(&mut inner, series);
        append_at(&self.config, &mut inner.series[idx], t, value)
    }

    /// [`append`](Self::append) through a pre-resolved handle.
    pub fn append_handle(&self, handle: SeriesHandle, t: u64, value: f64) -> bool {
        let mut inner = self.lock();
        match inner.series.get_mut(handle.0) {
            Some(entry) => append_at(&self.config, entry, t, value),
            None => false,
        }
    }

    /// Every series name, sorted.
    #[must_use]
    pub fn series_names(&self) -> Vec<String> {
        let inner = self.lock();
        let mut names: Vec<String> = inner.series.iter().map(|e| e.name.clone()).collect();
        names.sort();
        names
    }

    /// Series names matching a `*`-glob pattern, sorted.
    #[must_use]
    pub fn match_names(&self, pattern: &str) -> Vec<String> {
        let inner = self.lock();
        let mut names: Vec<String> = inner
            .series
            .iter()
            .filter(|e| glob_match(pattern.as_bytes(), e.name.as_bytes()))
            .map(|e| e.name.clone())
            .collect();
        names.sort();
        names
    }

    /// Raw samples of `series` with timestamps in `[start, end]`.
    #[must_use]
    pub fn query_raw(&self, series: &str, start: u64, end: u64) -> Vec<(u64, f64)> {
        let inner = self.lock();
        let Some(&idx) = inner.index.get(series) else {
            return Vec::new();
        };
        let store = &inner.series[idx].store;
        let mut out = Vec::new();
        for block in &store.blocks {
            if block.t_last < start || block.t_first > end {
                continue;
            }
            out.extend(
                block
                    .samples()
                    .into_iter()
                    .filter(|&(t, _)| t >= start && t <= end),
            );
        }
        if store.open.count > 0 && store.open.t_last >= start && store.open.t_first <= end {
            out.extend(
                store
                    .open
                    .samples()
                    .into_iter()
                    .filter(|&(t, _)| t >= start && t <= end),
            );
        }
        out
    }

    /// Min/mean/max buckets of width `step` over `[start, end]`.
    ///
    /// Empty buckets are omitted; NaN samples are skipped during
    /// aggregation (they would poison every bound they touch).
    #[must_use]
    pub fn query_downsampled(&self, series: &str, start: u64, end: u64, step: u64) -> Vec<Bucket> {
        let step = step.max(1);
        let mut out: Vec<Bucket> = Vec::new();
        for (t, v) in self.query_raw(series, start, end) {
            if v.is_nan() {
                continue;
            }
            let bucket_t = start + (t - start) / step * step;
            match out.last_mut() {
                Some(b) if b.t == bucket_t => {
                    b.min = b.min.min(v);
                    b.max = b.max.max(v);
                    // `mean` accumulates the sum until the final pass.
                    b.mean += v;
                    b.count += 1;
                }
                _ => out.push(Bucket {
                    t: bucket_t,
                    min: v,
                    mean: v,
                    max: v,
                    count: 1,
                }),
            }
        }
        for b in &mut out {
            b.mean /= b.count as f64;
        }
        out
    }

    /// Per-bucket counter rate (increase per timestamp unit) over
    /// `[start, end]`, reset-aware: a decrease is treated as a counter
    /// restart and contributes the post-reset value.
    #[must_use]
    pub fn query_rate(&self, series: &str, start: u64, end: u64, step: u64) -> Vec<(u64, f64)> {
        let step = step.max(1);
        let samples = self.query_raw(series, start, end);
        let mut out: Vec<(u64, f64)> = Vec::new();
        let mut prev: Option<f64> = None;
        for (t, v) in samples {
            if v.is_nan() {
                continue;
            }
            let increase = match prev {
                None => 0.0,
                Some(p) if v >= p => v - p,
                Some(_) => v, // counter reset
            };
            prev = Some(v);
            let bucket_t = start + (t - start) / step * step;
            match out.last_mut() {
                Some(b) if b.0 == bucket_t => b.1 += increase,
                _ => out.push((bucket_t, increase)),
            }
        }
        for (_, v) in &mut out {
            *v /= step as f64;
        }
        out
    }

    /// Newest sample of `series`, if any.
    #[must_use]
    pub fn latest(&self, series: &str) -> Option<(u64, f64)> {
        let inner = self.lock();
        let &idx = inner.index.get(series)?;
        let store = &inner.series[idx].store;
        if store.open.count > 0 {
            store.open.samples().last().copied()
        } else {
            store
                .blocks
                .back()
                .and_then(|b| b.samples().last().copied())
        }
    }

    /// Payload bytes currently held: sealed block bytes, open-block
    /// bytes, and series names. The eviction bound caps this.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let inner = self.lock();
        inner
            .series
            .iter()
            .map(|e| {
                e.name.len()
                    + e.store.open.w.byte_len()
                    + e.store.blocks.iter().map(Block::byte_len).sum::<usize>()
            })
            .sum()
    }

    /// Aggregate counters across every series.
    #[must_use]
    pub fn stats(&self) -> TsdbStats {
        let inner = self.lock();
        let mut stats = TsdbStats {
            series: inner.series.len(),
            ..TsdbStats::default()
        };
        for e in &inner.series {
            stats.sealed_blocks += e.store.blocks.len();
            stats.samples += u64::from(e.store.open.count)
                + e.store
                    .blocks
                    .iter()
                    .map(|b| u64::from(b.count))
                    .sum::<u64>();
            stats.evicted_blocks += e.store.evicted_blocks;
            stats.dropped_out_of_order += e.store.dropped_out_of_order;
        }
        stats
    }
}

fn entry_index(inner: &mut TsdbInner, series: &str) -> usize {
    if let Some(&idx) = inner.index.get(series) {
        return idx;
    }
    let idx = inner.series.len();
    inner.series.push(SeriesEntry {
        name: series.to_string(),
        store: SeriesStore::default(),
    });
    inner.index.insert(series.to_string(), idx);
    idx
}

fn append_at(config: &TsdbConfig, entry: &mut SeriesEntry, t: u64, value: f64) -> bool {
    let store = &mut entry.store;
    let newest = if store.open.count > 0 {
        Some(store.open.t_last)
    } else {
        store.blocks.back().map(|b| b.t_last)
    };
    if newest.is_some_and(|n| t < n) {
        store.dropped_out_of_order += 1;
        return false;
    }
    store.open.push(t, value);
    if store.open.count >= config.samples_per_block {
        let block = store.open.seal();
        store.blocks.push_back(block);
        while store.blocks.len() > config.max_blocks_per_series {
            let oldest = store.blocks.pop_front().expect("ring just overflowed");
            store.evicted_blocks += 1;
            if let Some(dir) = &config.spill_dir {
                // Spill failures (disk full, permissions) silently drop
                // the block — history is best-effort, the ring is not.
                let _ = spill_block(dir, &entry.name, &oldest);
            }
        }
    }
    true
}

/// Matches `*`-globs (any run of characters); everything else literal.
fn glob_match(pattern: &[u8], name: &[u8]) -> bool {
    match pattern.first() {
        None => name.is_empty(),
        Some(b'*') => {
            glob_match(&pattern[1..], name) || (!name.is_empty() && glob_match(pattern, &name[1..]))
        }
        Some(c) => name.first() == Some(c) && glob_match(&pattern[1..], &name[1..]),
    }
}

// ---------------------------------------------------------------------------
// Segment spill
// ---------------------------------------------------------------------------

/// Filesystem-safe segment file name for a series.
#[must_use]
pub fn segment_file_name(series: &str) -> String {
    let mut name: String = series
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect();
    name.push_str(".seg");
    name
}

/// Appends one evicted block to `<dir>/<sanitized name>.seg`.
///
/// Record layout after the one-time [`SEGMENT_MAGIC`] header:
/// `t_first: u64le, t_last: u64le, count: u32le, len: u32le, bytes`.
fn spill_block(dir: &Path, series: &str, block: &Block) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(segment_file_name(series));
    let fresh = !path.exists();
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut buf = Vec::with_capacity(28 + block.bytes.len());
    if fresh {
        buf.extend_from_slice(SEGMENT_MAGIC);
    }
    buf.extend_from_slice(&block.t_first.to_le_bytes());
    buf.extend_from_slice(&block.t_last.to_le_bytes());
    buf.extend_from_slice(&block.count.to_le_bytes());
    buf.extend_from_slice(&(block.bytes.len() as u32).to_le_bytes());
    buf.extend_from_slice(&block.bytes);
    file.write_all(&buf)
}

/// Reads every sample back out of a spill segment written by a
/// [`Tsdb`] with [`TsdbConfig::spill_dir`] set.
pub fn read_segment(path: &Path) -> std::io::Result<Vec<(u64, f64)>> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    if bytes.len() < 4 || &bytes[..4] != SEGMENT_MAGIC {
        return Err(bad("not a mercury series segment"));
    }
    let mut out = Vec::new();
    let mut at = 4usize;
    while at < bytes.len() {
        if at + 24 > bytes.len() {
            return Err(bad("truncated segment record header"));
        }
        let count = u32::from_le_bytes(bytes[at + 16..at + 20].try_into().unwrap());
        let len = u32::from_le_bytes(bytes[at + 20..at + 24].try_into().unwrap()) as usize;
        at += 24;
        if at + len > bytes.len() {
            return Err(bad("truncated segment record payload"));
        }
        out.extend(decode_stream(&bytes[at..at + len], count));
        at += len;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Wire text format (shared by the service and the tools)
// ---------------------------------------------------------------------------

/// What a `SeriesQuery` asks the store to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Raw `(t, value)` samples.
    Raw,
    /// Min/mean/max buckets of the requested step.
    Downsample,
    /// Reset-aware counter rate per bucket.
    Rate,
}

impl QueryKind {
    /// Wire byte for this kind.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            QueryKind::Raw => 0,
            QueryKind::Downsample => 1,
            QueryKind::Rate => 2,
        }
    }

    /// Parses a wire byte back into a kind.
    #[must_use]
    pub fn from_u8(byte: u8) -> Option<Self> {
        match byte {
            0 => Some(QueryKind::Raw),
            1 => Some(QueryKind::Downsample),
            2 => Some(QueryKind::Rate),
            _ => None,
        }
    }

    fn token(self) -> &'static str {
        match self {
            QueryKind::Raw => "raw",
            QueryKind::Downsample => "ds",
            QueryKind::Rate => "rate",
        }
    }

    fn from_token(token: &str) -> Option<Self> {
        match token {
            "raw" => Some(QueryKind::Raw),
            "ds" => Some(QueryKind::Downsample),
            "rate" => Some(QueryKind::Rate),
            _ => None,
        }
    }
}

/// One point of a query result; raw and rate points carry the value in
/// all three of `min`/`mean`/`max`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Sample or bucket-start timestamp.
    pub t: u64,
    /// Bucket minimum (== value for raw/rate).
    pub min: f64,
    /// Bucket mean (== value for raw/rate).
    pub mean: f64,
    /// Bucket maximum (== value for raw/rate).
    pub max: f64,
}

impl SeriesPoint {
    /// A point where min == mean == max == `value`.
    #[must_use]
    pub fn flat(t: u64, value: f64) -> Self {
        Self {
            t,
            min: value,
            mean: value,
            max: value,
        }
    }
}

/// One series' worth of query output, as moved over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesResult {
    /// Series name.
    pub name: String,
    /// Query kind that produced the points.
    pub kind: QueryKind,
    /// The points, in time order.
    pub points: Vec<SeriesPoint>,
}

/// Runs one query against the store and shapes the result for the wire.
#[must_use]
pub fn run_query(
    tsdb: &Tsdb,
    series: &str,
    kind: QueryKind,
    start: u64,
    end: u64,
    step: u64,
) -> SeriesResult {
    let points = match kind {
        QueryKind::Raw => tsdb
            .query_raw(series, start, end)
            .into_iter()
            .map(|(t, v)| SeriesPoint::flat(t, v))
            .collect(),
        QueryKind::Downsample => tsdb
            .query_downsampled(series, start, end, step)
            .into_iter()
            .map(|b| SeriesPoint {
                t: b.t,
                min: b.min,
                mean: b.mean,
                max: b.max,
            })
            .collect(),
        QueryKind::Rate => tsdb
            .query_rate(series, start, end, step)
            .into_iter()
            .map(|(t, v)| SeriesPoint::flat(t, v))
            .collect(),
    };
    SeriesResult {
        name: series.to_string(),
        kind,
        points,
    }
}

/// Renders query results as the line-oriented wire text: one series per
/// line, `name kind t:v ...` (raw/rate) or `name ds t:min:mean:max ...`.
///
/// Finite values survive the text round trip exactly (Rust's `f64`
/// `Display` is shortest-round-trip); NaN collapses to the canonical
/// NaN, which is the one place the wire is lossier than the store.
#[must_use]
pub fn render_results(results: &[SeriesResult]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&r.name);
        out.push(' ');
        out.push_str(r.kind.token());
        for p in &r.points {
            match r.kind {
                QueryKind::Downsample => {
                    let _ = write!(out, " {}:{}:{}:{}", p.t, p.min, p.mean, p.max);
                }
                _ => {
                    let _ = write!(out, " {}:{}", p.t, p.mean);
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Parses [`render_results`] text back into structured results.
pub fn parse_results(text: &str) -> Result<Vec<SeriesResult>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let name = tokens.next().ok_or_else(|| bad_line(lineno))?.to_string();
        let kind = tokens
            .next()
            .and_then(QueryKind::from_token)
            .ok_or_else(|| bad_line(lineno))?;
        let mut points = Vec::new();
        for token in tokens {
            let fields: Vec<&str> = token.split(':').collect();
            let point = match (kind, fields.as_slice()) {
                (QueryKind::Downsample, [t, min, mean, max]) => SeriesPoint {
                    t: parse_u64(t, lineno)?,
                    min: parse_f64(min, lineno)?,
                    mean: parse_f64(mean, lineno)?,
                    max: parse_f64(max, lineno)?,
                },
                (QueryKind::Raw | QueryKind::Rate, [t, v]) => {
                    SeriesPoint::flat(parse_u64(t, lineno)?, parse_f64(v, lineno)?)
                }
                _ => return Err(bad_line(lineno)),
            };
            points.push(point);
        }
        out.push(SeriesResult { name, kind, points });
    }
    Ok(out)
}

fn bad_line(lineno: usize) -> String {
    format!("malformed series line {}", lineno + 1)
}

fn parse_u64(token: &str, lineno: usize) -> Result<u64, String> {
    token.parse().map_err(|_| bad_line(lineno))
}

fn parse_f64(token: &str, lineno: usize) -> Result<f64, String> {
    token.parse().map_err(|_| bad_line(lineno))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(samples: &[(u64, f64)]) {
        let mut b = BlockBuilder::default();
        for &(t, v) in samples {
            b.push(t, v);
        }
        let got = b.samples();
        assert_eq!(got.len(), samples.len());
        for (i, (&(t, v), &(gt, gv))) in samples.iter().zip(got.iter()).enumerate() {
            assert_eq!(t, gt, "timestamp {i}");
            assert_eq!(v.to_bits(), gv.to_bits(), "value bits {i}");
        }
        let sealed = b.clone().seal();
        let got = sealed.samples();
        assert_eq!(got.len(), samples.len());
        for (&(t, v), &(gt, gv)) in samples.iter().zip(got.iter()) {
            assert_eq!((t, v.to_bits()), (gt, gv.to_bits()));
        }
    }

    #[test]
    fn block_roundtrips_steady_series() {
        let samples: Vec<(u64, f64)> = (0..500)
            .map(|i| (1000 + i * 1000, 40.0 + (i as f64 * 0.1).sin()))
            .collect();
        roundtrip(&samples);
    }

    #[test]
    fn block_roundtrips_awkward_values() {
        roundtrip(&[
            (0, 0.0),
            (0, -0.0),
            (1, f64::NAN),
            (2, f64::from_bits(0x7ff8_dead_beef_0001)), // NaN payload
            (3, f64::INFINITY),
            (5, f64::NEG_INFINITY),
            (5, f64::MIN_POSITIVE / 8.0), // denormal
            (1_000_000_007, f64::MAX),
            (u64::MAX, f64::MIN),
        ]);
    }

    #[test]
    fn block_roundtrips_irregular_timestamps() {
        let samples: Vec<(u64, f64)> =
            [0u64, 1, 2, 70, 71, 400, 3000, 3001, 9_999_999, u64::MAX / 2]
                .iter()
                .enumerate()
                .map(|(i, &t)| (t, i as f64 * -3.25))
                .collect();
        roundtrip(&samples);
    }

    #[test]
    fn steady_series_compresses_well() {
        let mut b = BlockBuilder::default();
        for i in 0..240u64 {
            b.push(i * 1000, 42.0);
        }
        let block = b.seal();
        // 16 bytes for the header pair, ~2 bits per further sample.
        assert!(block.byte_len() < 120, "got {} bytes", block.byte_len());
    }

    #[test]
    fn append_rejects_out_of_order() {
        let db = Tsdb::new(TsdbConfig::default());
        assert!(db.append("s", 10, 1.0));
        assert!(db.append("s", 10, 2.0)); // equal timestamps allowed
        assert!(!db.append("s", 9, 3.0));
        assert_eq!(db.stats().dropped_out_of_order, 1);
        assert_eq!(db.query_raw("s", 0, 100).len(), 2);
    }

    #[test]
    fn ring_evicts_oldest_blocks() {
        let db = Tsdb::new(TsdbConfig {
            samples_per_block: 10,
            max_blocks_per_series: 3,
            spill_dir: None,
        });
        for t in 0..100u64 {
            db.append("s", t, t as f64);
        }
        let stats = db.stats();
        assert_eq!(stats.sealed_blocks, 3);
        assert_eq!(stats.evicted_blocks, 7);
        // t=99 sealed the 10th block, so the ring holds t = 70..99.
        let samples = db.query_raw("s", 0, 1000);
        assert_eq!(samples.first().unwrap().0, 70);
        assert_eq!(samples.last().unwrap().0, 99);
    }

    #[test]
    fn downsample_and_rate() {
        let db = Tsdb::new(TsdbConfig::default());
        for t in 0..60u64 {
            db.append("temps", t, t as f64);
            db.append("requests_total", t, (t * 5) as f64);
        }
        let buckets = db.query_downsampled("temps", 0, 59, 10);
        assert_eq!(buckets.len(), 6);
        assert_eq!(buckets[0].min, 0.0);
        assert_eq!(buckets[0].max, 9.0);
        assert!((buckets[0].mean - 4.5).abs() < 1e-12);
        let rate = db.query_rate("requests_total", 0, 59, 10);
        // 5 per unit, except the first bucket misses the seed sample's delta.
        assert!((rate[1].1 - 5.0).abs() < 1e-12);
        assert!((rate[5].1 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rate_handles_counter_reset() {
        let db = Tsdb::new(TsdbConfig::default());
        for (t, v) in [(0u64, 10.0), (1, 20.0), (2, 3.0), (3, 8.0)] {
            db.append("c", t, v);
        }
        let rate = db.query_rate("c", 0, 3, 4);
        // 10 (increase) + 3 (post-reset) + 5 (increase) over step 4.
        assert!((rate[0].1 - 18.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn glob_matching() {
        let db = Tsdb::new(TsdbConfig::default());
        for name in ["temp/m1/cpu", "temp/m1/disk", "temp/m2/cpu", "other"] {
            db.append(name, 0, 1.0);
        }
        assert_eq!(db.match_names("temp/*/cpu").len(), 2);
        assert_eq!(db.match_names("temp/*").len(), 3);
        assert_eq!(db.match_names("*").len(), 4);
        assert_eq!(db.match_names("other").len(), 1);
        assert_eq!(db.match_names("missing*thing").len(), 0);
    }

    #[test]
    fn spill_segments_roundtrip() {
        let dir = std::env::temp_dir().join(format!("tsdb_spill_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = Tsdb::new(TsdbConfig {
            samples_per_block: 10,
            max_blocks_per_series: 2,
            spill_dir: Some(dir.clone()),
        });
        for t in 0..70u64 {
            db.append("temp/m1/cpu", t, t as f64 + 0.5);
        }
        // 7 sealed blocks, ring keeps 2, so 5 spilled: t = 0..50.
        let spilled = read_segment(&dir.join(segment_file_name("temp/m1/cpu"))).unwrap();
        assert_eq!(spilled.len(), 50);
        assert_eq!(spilled[0], (0, 0.5));
        assert_eq!(spilled[49], (49, 49.5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn handles_bypass_name_lookup() {
        let db = Tsdb::new(TsdbConfig::default());
        let h = db.handle("fast");
        assert!(db.append_handle(h, 1, 2.0));
        assert_eq!(db.latest("fast"), Some((1, 2.0)));
        assert_eq!(db.handle("fast"), h);
    }

    #[test]
    fn wire_text_roundtrips() {
        let db = Tsdb::new(TsdbConfig::default());
        for t in 0..20u64 {
            db.append("temp/m1/cpu", t, 40.0 + t as f64 / 3.0);
        }
        let results = vec![
            run_query(&db, "temp/m1/cpu", QueryKind::Raw, 0, 19, 1),
            run_query(&db, "temp/m1/cpu", QueryKind::Downsample, 0, 19, 5),
            run_query(&db, "temp/m1/cpu", QueryKind::Rate, 0, 19, 5),
        ];
        let text = render_results(&results);
        let parsed = parse_results(&text).unwrap();
        assert_eq!(parsed, results);
    }

    #[test]
    fn wire_text_carries_non_finite_values() {
        let r = vec![SeriesResult {
            name: "weird".into(),
            kind: QueryKind::Raw,
            points: vec![
                SeriesPoint::flat(1, f64::INFINITY),
                SeriesPoint::flat(2, f64::NEG_INFINITY),
                SeriesPoint::flat(3, f64::NAN),
            ],
        }];
        let parsed = parse_results(&render_results(&r)).unwrap();
        assert_eq!(parsed[0].points[0].mean, f64::INFINITY);
        assert_eq!(parsed[0].points[1].mean, f64::NEG_INFINITY);
        assert!(parsed[0].points[2].mean.is_nan());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_results("name").is_err());
        assert!(parse_results("name nope 1:2").is_err());
        assert!(parse_results("name raw 1:2:3").is_err());
        assert!(parse_results("name ds 1:2").is_err());
        assert!(parse_results("name raw x:2").is_err());
    }
}
