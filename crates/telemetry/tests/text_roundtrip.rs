//! Round-trip: everything [`telemetry::Registry::render_prometheus`]
//! can emit must come back unchanged through the strict parser in
//! [`telemetry::text`]. The renderer and the parser are written
//! independently on purpose — this suite is the contract between them,
//! exercised on the edge cases a live scrape rarely hits: escaped label
//! values, special floats, histogram bucket series, and re-registered
//! families.

use telemetry::text::parse_exposition;
use telemetry::Registry;

#[test]
fn escaped_label_values_survive_the_round_trip() {
    let registry = Registry::new();
    let nasty = "quote \" backslash \\ newline \n done";
    let c = registry.counter_with_labels(
        "mercury_roundtrip_total",
        "labels with every escapable character",
        &[("detail", nasty), ("plain", "ok")],
    );
    c.add(7);
    let text = registry.render_prometheus();
    let samples = parse_exposition(&text).expect("rendered exposition must parse");
    let sample = samples
        .iter()
        .find(|s| s.name == "mercury_roundtrip_total")
        .expect("family missing");
    assert_eq!(sample.label("detail"), Some(nasty));
    assert_eq!(sample.label("plain"), Some("ok"));
    assert_eq!(sample.value, 7.0);
}

#[test]
fn special_float_gauges_round_trip() {
    let registry = Registry::new();
    registry
        .gauge_with_labels("mercury_edge", "special values", &[("case", "pos_inf")])
        .set(f64::INFINITY);
    registry
        .gauge_with_labels("mercury_edge", "special values", &[("case", "neg_inf")])
        .set(f64::NEG_INFINITY);
    registry
        .gauge_with_labels("mercury_edge", "special values", &[("case", "nan")])
        .set(f64::NAN);
    registry
        .gauge_with_labels("mercury_edge", "special values", &[("case", "tiny")])
        .set(1e-12);
    let samples = parse_exposition(&registry.render_prometheus()).unwrap();
    let by_case = |case: &str| {
        samples
            .iter()
            .find(|s| s.name == "mercury_edge" && s.label("case") == Some(case))
            .unwrap_or_else(|| panic!("case {case} missing"))
            .value
    };
    assert_eq!(by_case("pos_inf"), f64::INFINITY);
    assert_eq!(by_case("neg_inf"), f64::NEG_INFINITY);
    assert!(by_case("nan").is_nan());
    assert_eq!(by_case("tiny"), 1e-12);
}

#[test]
fn histogram_series_parse_with_monotone_buckets() {
    let registry = Registry::new();
    let h = registry.histogram_scaled(
        "mercury_roundtrip_seconds",
        "latencies recorded in nanoseconds",
        1e-9,
    );
    for v in [50, 900, 900, 40_000, 2_000_000] {
        h.observe(v);
    }
    let samples = parse_exposition(&registry.render_prometheus()).unwrap();
    let buckets: Vec<&telemetry::text::Sample> = samples
        .iter()
        .filter(|s| s.name == "mercury_roundtrip_seconds_bucket")
        .collect();
    assert!(buckets.len() >= 2, "cumulative buckets plus +Inf expected");
    let mut last = 0.0;
    for b in &buckets {
        assert!(
            b.value >= last,
            "cumulative bucket counts must be monotone: {samples:?}"
        );
        last = b.value;
    }
    assert_eq!(buckets.last().unwrap().label("le"), Some("+Inf"));
    assert_eq!(buckets.last().unwrap().value, 5.0);
    let count = samples
        .iter()
        .find(|s| s.name == "mercury_roundtrip_seconds_count")
        .unwrap();
    assert_eq!(count.value, 5.0);
    let sum = samples
        .iter()
        .find(|s| s.name == "mercury_roundtrip_seconds_sum")
        .unwrap();
    // Bucketing quantizes the recorded values, but the sum keeps the
    // scaled order of magnitude.
    assert!(sum.value > 0.0 && sum.value < 1.0, "sum {}", sum.value);
}

#[test]
fn reregistration_renders_one_series_not_two() {
    let registry = Registry::new();
    let first = registry.counter("mercury_once_total", "registered twice");
    first.add(3);
    let second = registry.counter("mercury_once_total", "registered twice");
    second.add(5);
    let samples = parse_exposition(&registry.render_prometheus()).unwrap();
    let series: Vec<_> = samples
        .iter()
        .filter(|s| s.name == "mercury_once_total")
        .collect();
    assert_eq!(series.len(), 1, "idempotent registration must not fork");
    assert_eq!(series[0].value, 5.0, "the fresh handle wins");
}

#[test]
fn fresh_registry_exposes_zero_dropped_events() {
    let registry = Registry::new();
    let samples = parse_exposition(&registry.render_prometheus()).unwrap();
    let dropped = samples
        .iter()
        .find(|s| s.name == "mercury_telemetry_events_dropped_total")
        .expect("the drop counter is part of every exposition");
    assert_eq!(dropped.value, 0.0);
}

#[test]
fn mixed_document_round_trips_every_sample() {
    // One registry with every metric kind, rendered and parsed: no
    // sample line may be lost or reordered within its family.
    let registry = Registry::new();
    registry.counter("mercury_a_total", "a").add(1);
    registry.gauge("mercury_b", "b").set(-2.5);
    registry.histogram("mercury_c", "c (unit-free)").observe(10);
    for (k, v) in [("x", "1"), ("y", "2"), ("z", "3")] {
        registry
            .counter_with_labels("mercury_d_total", "d", &[("shard", k)])
            .add(v.parse().unwrap());
    }
    let text = registry.render_prometheus();
    let samples = parse_exposition(&text).unwrap();
    assert!(samples.iter().any(|s| s.name == "mercury_a_total"));
    assert!(samples
        .iter()
        .any(|s| s.name == "mercury_b" && s.value == -2.5));
    assert!(samples.iter().any(|s| s.name == "mercury_c_count"));
    let shards: Vec<_> = samples
        .iter()
        .filter(|s| s.name == "mercury_d_total")
        .collect();
    assert_eq!(shards.len(), 3);
    assert_eq!(shards[0].label("shard"), Some("x"));
    assert_eq!(shards[2].label("shard"), Some("z"));
    assert_eq!(
        shards.iter().map(|s| s.value).sum::<f64>(),
        6.0,
        "shard values 1+2+3"
    );
}
