//! Property tests for the `telemetry::tsdb` compression layer: the
//! Gorilla-style encoding must round-trip arbitrary samples bit-exactly
//! (NaN payloads, infinities, denormals, irregular timestamps), and the
//! block rings must honor their configured memory bound.

use proptest::prelude::*;
use telemetry::tsdb::{Tsdb, TsdbConfig};

/// Value strategy biased toward the awkward corners of f64: raw bit
/// patterns (hits NaN payloads, denormals, infinities by construction)
/// mixed with plausible temperatures and exact specials.
fn value() -> impl Strategy<Value = f64> {
    prop_oneof![
        any::<u64>().prop_map(f64::from_bits),
        -100.0f64..150.0,
        (0u64..7).prop_map(|i| {
            [
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
                -0.0,
                f64::MIN_POSITIVE / 1024.0, // denormal
                f64::MAX,
                f64::MIN,
            ][i as usize]
        }),
    ]
}

/// Non-decreasing timestamp deltas, heavy on the small regular steps
/// the delta-of-delta classes target but with occasional huge jumps.
fn deltas() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            0u64..3,
            1u64..2000,
            1u64..1_000_000_000,
            any::<u64>().prop_map(|d| d >> 8),
        ],
        1..600,
    )
}

fn assert_bit_exact(expected: &[(u64, f64)], got: &[(u64, f64)]) -> Result<(), TestCaseError> {
    prop_assert_eq!(expected.len(), got.len());
    for (i, (&(t, v), &(gt, gv))) in expected.iter().zip(got.iter()).enumerate() {
        prop_assert!(t == gt, "timestamp {} diverged: {} vs {}", i, t, gt);
        prop_assert!(
            v.to_bits() == gv.to_bits(),
            "value bits diverged at sample {}: {:#x} vs {:#x}",
            i,
            v.to_bits(),
            gv.to_bits()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary samples survive append → seal → decode with identical
    /// bits, across block boundaries and in the open block.
    #[test]
    fn roundtrip_is_bit_exact(
        t0 in any::<u64>().prop_map(|t| t >> 1),
        steps in deltas(),
        values in proptest::collection::vec(value(), 600),
        samples_per_block in 2u32..100,
    ) {
        let db = Tsdb::new(TsdbConfig {
            samples_per_block,
            max_blocks_per_series: usize::MAX,
            spill_dir: None,
        });
        let mut expected = Vec::with_capacity(steps.len());
        let mut t = t0;
        for (delta, v) in steps.iter().zip(values.iter()) {
            t = t.saturating_add(*delta);
            expected.push((t, *v));
            prop_assert!(db.append("s", t, *v), "in-order append refused");
        }
        let got = db.query_raw("s", 0, u64::MAX);
        assert_bit_exact(&expected, &got)?;
    }

    /// Range queries return exactly the samples inside [start, end].
    #[test]
    fn range_queries_are_exact(
        steps in deltas(),
        values in proptest::collection::vec(value(), 600),
        lo in 0u64..2000,
        span in 0u64..4000,
    ) {
        let db = Tsdb::new(TsdbConfig {
            samples_per_block: 16,
            max_blocks_per_series: usize::MAX,
            spill_dir: None,
        });
        let mut expected = Vec::new();
        let mut t = 0u64;
        for (delta, v) in steps.iter().zip(values.iter()) {
            t = t.saturating_add(*delta % 50);
            expected.push((t, *v));
            db.append("s", t, *v);
        }
        let hi = lo.saturating_add(span);
        let want: Vec<(u64, f64)> = expected
            .iter()
            .copied()
            .filter(|&(t, _)| t >= lo && t <= hi)
            .collect();
        let got = db.query_raw("s", lo, hi);
        assert_bit_exact(&want, &got)?;
    }

    /// The ring bound holds for any block sizing: sealed blocks per
    /// series never exceed the configured maximum.
    #[test]
    fn eviction_respects_block_bound(
        samples_per_block in 2u32..40,
        max_blocks in 1usize..8,
        count in 100u64..2000,
    ) {
        let db = Tsdb::new(TsdbConfig {
            samples_per_block,
            max_blocks_per_series: max_blocks,
            spill_dir: None,
        });
        for t in 0..count {
            db.append("s", t, (t % 97) as f64 * 0.5);
        }
        let stats = db.stats();
        prop_assert!(stats.sealed_blocks <= max_blocks);
        let retained = u64::from(samples_per_block) * (max_blocks as u64 + 1);
        prop_assert!(stats.samples <= retained, "{} samples retained, cap {}", stats.samples, retained);
    }
}

/// The acceptance-criteria replay: 1024 machines sampled for 10k ticks
/// stay inside the configured ring bound, and memory stops growing once
/// the rings are full.
#[test]
fn replay_1024_machines_10k_ticks_stays_bounded() {
    let config = TsdbConfig {
        samples_per_block: 240,
        max_blocks_per_series: 4,
        spill_dir: None,
    };
    let db = Tsdb::new(config.clone());
    let handles: Vec<_> = (0..1024)
        .map(|m| db.handle(&format!("temp/machine{m}/cpu")))
        .collect();
    // Deterministic wiggly temperatures from a cheap LCG.
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut rand = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 40) as f64 / (1u64 << 24) as f64
    };
    // Rings fill by t = 240 * 5 = 1200; peak usage after that is the
    // steady state (the open block sawtooths below it each seal).
    let mut steady_peak = 0usize;
    for t in 0..10_000u64 {
        for h in &handles {
            db.append_handle(*h, t, 40.0 + 25.0 * rand());
        }
        if (1200..6000).contains(&t) && t % 40 == 0 {
            steady_peak = steady_peak.max(db.memory_bytes());
        }
    }
    let stats = db.stats();
    assert_eq!(stats.series, 1024);
    assert_eq!(stats.dropped_out_of_order, 0);
    // Ring bound: at most max_blocks sealed + one open block per series.
    let per_series_samples =
        u64::from(config.samples_per_block) * (config.max_blocks_per_series as u64 + 1);
    assert!(
        stats.samples <= 1024 * per_series_samples,
        "{} samples retained, cap {}",
        stats.samples,
        1024 * per_series_samples
    );
    // Worst-case Gorilla sample is < 20 bytes; the configured rings may
    // never exceed that ceiling no matter how long the replay runs.
    let bound =
        1024 * (config.max_blocks_per_series + 1) * (config.samples_per_block as usize * 20 + 64);
    let mem = db.memory_bytes();
    assert!(
        mem <= bound,
        "memory {mem} exceeds configured bound {bound}"
    );
    // And after the rings filled (well before t=6000), usage is flat:
    // the final footprint never exceeds the steady-state peak.
    assert!(
        mem <= steady_peak,
        "memory kept growing after the rings filled: peak {steady_peak}, final {mem}"
    );
    assert!(stats.evicted_blocks > 0, "replay never exercised eviction");
}
