//! Shared plumbing for the experiment harness.

use std::fs;
use std::path::PathBuf;

/// Returns (creating if necessary) the results directory.
pub fn results_dir() -> std::io::Result<PathBuf> {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Writes a CSV file under `results/` and reports where it went.
pub fn write_results(name: &str, contents: &str) -> std::io::Result<()> {
    let path = results_dir()?.join(name);
    fs::write(&path, contents)?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Prints the paper's claim for an experiment.
pub fn paper(line: &str) {
    println!("PAPER:    {line}");
}

/// Prints what this reproduction measured.
pub fn measured(line: &str) {
    println!("MEASURED: {line}");
}

/// Prints a pass/attention verdict for a reproduction check.
pub fn verdict(ok: bool, line: &str) {
    if ok {
        println!("CHECK:    ok — {line}");
    } else {
        println!("CHECK:    ATTENTION — {line}");
    }
}

/// Centered moving average with window `w` (odd windows behave
/// symmetrically; edges shrink the window). Used to compare *trends*
/// against noisy, quantized sensor series the way one reads the paper's
/// figures.
pub fn smooth(series: &[f64], w: usize) -> Vec<f64> {
    if w <= 1 || series.is_empty() {
        return series.to_vec();
    }
    let half = w / 2;
    (0..series.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(series.len());
            series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Maximum absolute pointwise difference between two equally long series.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Root-mean-square difference between two equally long series.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return 0.0;
    }
    let sum: f64 = a
        .iter()
        .zip(b)
        .take(n)
        .map(|(x, y)| (x - y) * (x - y))
        .sum();
    (sum / n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoothing_preserves_constants_and_averages_steps() {
        let flat = vec![5.0; 20];
        assert_eq!(smooth(&flat, 7), flat);
        // A step function's smoothed midpoint is the average of the sides.
        let mut step = vec![0.0; 10];
        step.extend(vec![10.0; 10]);
        let smoothed = smooth(&step, 5);
        assert!(smoothed[9] > 0.0 && smoothed[9] < 10.0);
        // Window 1 or empty input are identity.
        assert_eq!(smooth(&step, 1), step);
        assert!(smooth(&[], 9).is_empty());
    }

    #[test]
    fn smoothing_shrinks_windows_at_the_edges() {
        let series = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let smoothed = smooth(&series, 3);
        assert!((smoothed[0] - 1.5).abs() < 1e-12); // mean of [1,2]
        assert!((smoothed[2] - 3.0).abs() < 1e-12); // mean of [2,3,4]
        assert!((smoothed[4] - 4.5).abs() < 1e-12); // mean of [4,5]
    }

    #[test]
    fn diff_metrics() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.5, 2.0, 1.0];
        assert!((max_abs_diff(&a, &b) - 2.0).abs() < 1e-12);
        let expected = ((0.25 + 0.0 + 4.0) / 3.0_f64).sqrt();
        assert!((rmse(&a, &b) - expected).abs() < 1e-12);
        assert_eq!(rmse(&[], &[]), 0.0);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }
}
