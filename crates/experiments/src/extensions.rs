//! The paper's discussed-but-unevaluated comparisons, built out: §4.3's
//! remote vs local throttling, and §7's variable-speed fans.

use crate::common::{measured, paper, verdict, write_results};
use crate::freon_exp::run_policy;
use freon::{CombinedPolicy, FreonConfig, FreonPolicy, LocalDvfsPolicy, NoPolicy};
use mercury::fan::{FanController, FanCurve};
use std::fmt::Write as _;

type Result<T = ()> = std::result::Result<T, Box<dyn std::error::Error>>;

/// §4.3: Freon's remote throttling vs CPU-local DVFS vs the combination,
/// under the §5 scenario.
pub fn sec43_throttling() -> Result {
    let cfg = FreonConfig::paper();
    let th = cfg
        .thresholds_for("cpu")
        .expect("cpu thresholds exist")
        .high;

    let mut freon = FreonPolicy::new(cfg.clone(), 4);
    let freon_log = run_policy(&mut freon)?;
    let mut local = LocalDvfsPolicy::new(cfg.clone(), 4);
    let local_log = run_policy(&mut local)?;
    let mut combined = CombinedPolicy::new(cfg.clone(), 4);
    let combined_log = run_policy(&mut combined)?;

    let mut csv = String::from("policy,drop_rate_pct,seconds_above_th,peak_c,servers_lost\n");
    let mut rows = Vec::new();
    for (name, log, lost) in [
        ("freon", &freon_log, freon.red_line_shutdowns()),
        ("local-dvfs", &local_log, local.red_line_shutdowns()),
        (
            "freon+dvfs",
            &combined_log,
            combined.freon().red_line_shutdowns(),
        ),
    ] {
        let above: u64 = (0..4).map(|i| log.seconds_above(i, th)).sum();
        let peak = (0..4)
            .map(|i| log.max_cpu_temp(i))
            .fold(f64::NEG_INFINITY, f64::max);
        let _ = writeln!(
            csv,
            "{name},{:.3},{above},{peak:.2},{lost}",
            log.drop_rate() * 100.0
        );
        rows.push((name, log.drop_rate(), above, peak, lost));
    }
    write_results("sec43_throttling.csv", &csv)?;

    paper("§4.3 argues remote throttling needs no hardware support, throttles any component, and offers a continuous control range, while DVFS is CPU-only with few levels; 'the best approach should probably be a combination' of software (coarse) and hardware (fine-grained)");
    for (name, drop, above, peak, lost) in &rows {
        measured(&format!(
            "{name}: drop {:.2}%, {above} s above T_h, peak {peak:.1} °C, {lost} servers lost",
            drop * 100.0
        ));
    }
    measured(&format!(
        "local DVFS took {} frequency steps; the combination took {} (software absorbed the rest)",
        local.steps_down(),
        combined.dvfs_steps_down()
    ));
    let freon_row = &rows[0];
    let combined_row = &rows[2];
    verdict(
        freon_row.1 == 0.0,
        "remote throttling serves the full trace",
    );
    verdict(
        combined_row.2 <= freon_row.2 && combined_row.1 <= freon_row.1,
        "the combination is at least as good as software alone (the paper's conjecture)",
    );
    verdict(
        rows[1].4 == 0,
        "local DVFS alone avoids red-lining in this scenario",
    );
    Ok(())
}

/// §7: variable-speed fans. The same no-policy emergency run with fixed
/// Table 1 fans vs a firmware fan curve — the curve should blunt the
/// emergency on its own.
pub fn ablation_fans() -> Result {
    let (model, sim) = crate::freon_exp::setup();
    let trace = crate::freon_exp::paper_trace();
    let script = crate::freon_exp::emergencies();

    let run = |fan: Option<FanController>| -> Result<freon::ExperimentLog> {
        let config = freon::ExperimentConfig {
            duration_s: crate::freon_exp::DURATION_S,
            fan_controller: fan,
            ..Default::default()
        };
        let log = freon::Experiment::new(&model, sim.clone(), &trace, Some(&script), config)?
            .run(&mut NoPolicy)?;
        Ok(log)
    };

    let fixed = run(None)?;
    // A 38.6 cfm floor (the Table 1 fan) ramping to double speed by 70 °C.
    let curve = FanCurve::ramp(45.0, 38.6, 70.0, 77.2);
    let variable = run(Some(FanController::new(curve, "cpu")))?;

    let mut csv = String::from("fans,peak_m1_c,peak_m3_c,seconds_m1_above_67\n");
    for (name, log) in [("fixed", &fixed), ("variable", &variable)] {
        let _ = writeln!(
            csv,
            "{name},{:.2},{:.2},{}",
            log.max_cpu_temp(0),
            log.max_cpu_temp(2),
            log.seconds_above(0, 67.0)
        );
    }
    write_results("ablation_fans.csv", &csv)?;

    paper("§7: 'we are currently extending our models to consider clock throttling and variable-speed fans' — both 'essentially depend on temperature, which Mercury emulates accurately'");
    measured(&format!(
        "machine1 peak with fixed fans {:.1} °C vs {:.1} °C with a 38.6→77.2 cfm curve; time above 67 °C {} s vs {} s",
        fixed.max_cpu_temp(0),
        variable.max_cpu_temp(0),
        fixed.seconds_above(0, 67.0),
        variable.seconds_above(0, 67.0)
    ));
    verdict(
        variable.max_cpu_temp(0) < fixed.max_cpu_temp(0) - 0.5,
        "the fan curve lowers the emergency peak on its own",
    );
    Ok(())
}
