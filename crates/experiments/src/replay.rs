//! `experiments replay` — the fleet-scale `.events` replay harness.
//!
//! Synthesizes (or loads) a 1024-machine `mercury-events-v1` trace,
//! replays it out of core through [`mercury::trace::stream`], cuts it at
//! checkpoint boundaries, replays the segments in parallel, and verifies
//! the segmented run is bit-identical to the serial one. The measured
//! numbers become the `replay` section of `BENCH_solver.json` (written
//! in full by `experiments bench_solver`, spliced in place by this
//! subcommand), with three hard gates from the roadmap:
//!
//! * ≥ 100k machine-ticks/sec sustained wall-clock replay throughput
//!   (a week of a 10k-machine fleet ≈ 6 × 10⁹ machine-ticks);
//! * a flat resident set while replaying — the peak-RSS watermark taken
//!   after the warm-up pass may not grow measurably over the remaining
//!   passes, and the stream's own decode memory must not grow at all;
//! * every parallel time segment ends bit-identical to the serial run.
//!
//! ```text
//! usage: experiments replay [--machines N] [--ticks N] [--passes N]
//!                           [--segments N] [--threads N] [--events FILE]
//!
//!   --machines   fleet size for the synthesized trace (default 1024)
//!   --ticks      ticks per synthesized trace (default 2000)
//!   --passes     replay passes for the throughput measurement (default 3)
//!   --segments   parallel time segments for the equivalence run (default 4)
//!   --threads    solver threads per cluster (default 1)
//!   --events     replay an existing .events file (e.g. from
//!                mercury-traceconv) instead of synthesizing one; machine
//!                names must match validation_cluster(N) (machine1..N)
//! ```

use crate::common::{measured, verdict};
use mercury::presets;
use mercury::solver::{ClusterSolver, SolverConfig};
use mercury::trace::events;
use mercury::trace::stream::{peak_rss_bytes, ClusterBinding, EventsStream, ReplayMetrics};
use mercury::trace::UtilizationTrace;
use std::path::{Path, PathBuf};
use std::time::Instant;

type Result<T = ()> = std::result::Result<T, Box<dyn std::error::Error>>;

/// Monitored components driven by the synthesized trace.
const COMPONENTS: [&str; 2] = ["cpu", "disk_platters"];
/// Ticks per input-stable block in the synthesized trace — the span
/// length the encoder turns into HOLD records and replay fuses into one
/// `step_for` call.
const BLOCK_TICKS: usize = 30;

/// Everything one harness run measured, for the JSON section and logs.
pub struct ReplayBench {
    pub machines: usize,
    pub ticks: u64,
    pub passes: usize,
    pub segments: usize,
    pub threads: usize,
    pub events_bytes: u64,
    pub mapped: bool,
    pub serial_seconds: f64,
    pub segmented_seconds: f64,
    pub bit_identical: bool,
    pub stream_memory_bytes: usize,
    pub rss_warm_bytes: u64,
    pub rss_end_bytes: u64,
    pub metrics: ReplayMetrics,
}

impl ReplayBench {
    /// Cluster ticks per wall-clock second over the throughput passes.
    pub fn ticks_per_sec(&self) -> f64 {
        self.ticks as f64 * self.passes as f64 / self.serial_seconds
    }

    /// Machine-ticks per wall-clock second — the fleet-scale unit the
    /// ROADMAP's ≥100k gate is expressed in (one cluster tick advances
    /// every machine by one tick).
    pub fn machine_ticks_per_sec(&self) -> f64 {
        self.ticks_per_sec() * self.machines as f64
    }

    /// Peak-RSS growth between the warm-up watermark and the end of the
    /// last pass.
    pub fn rss_growth_bytes(&self) -> u64 {
        self.rss_end_bytes.saturating_sub(self.rss_warm_bytes)
    }

    /// The `"replay"` object for `BENCH_solver.json`.
    pub fn to_json(&self) -> String {
        format!(
            "\"replay\": {{\n    \"model\": \"validation_cluster({})\",\n    \"machines\": {},\n    \"ticks_per_pass\": {},\n    \"passes\": {},\n    \"segments\": {},\n    \"threads\": {},\n    \"events_bytes\": {},\n    \"mapped\": {},\n    \"serial_seconds\": {:.3},\n    \"ticks_per_sec\": {:.1},\n    \"machine_ticks_per_sec\": {:.1},\n    \"segmented_seconds\": {:.3},\n    \"segments_bit_identical\": {},\n    \"stream_memory_bytes\": {},\n    \"peak_rss_warm_bytes\": {},\n    \"peak_rss_end_bytes\": {},\n    \"rss_growth_bytes\": {}\n  }}",
            self.machines,
            self.machines,
            self.ticks,
            self.passes,
            self.segments,
            self.threads,
            self.events_bytes,
            self.mapped,
            self.serial_seconds,
            self.ticks_per_sec(),
            self.machine_ticks_per_sec(),
            self.segmented_seconds,
            self.bit_identical,
            self.stream_memory_bytes,
            self.rss_warm_bytes,
            self.rss_end_bytes,
            self.rss_growth_bytes()
        )
    }
}

/// Synthesizes a blocky fleet trace — per-machine phase-shifted square
/// waves whose inputs hold for [`BLOCK_TICKS`]-tick spans — and encodes
/// it to `path`.
pub fn synthesize_events(path: &Path, machines: usize, ticks: usize) -> Result<()> {
    let mut traces = Vec::with_capacity(machines);
    for m in 0..machines {
        let mut trace = UtilizationTrace::new(
            format!("machine{}", m + 1),
            1.0,
            COMPONENTS.iter().map(|c| c.to_string()).collect(),
        )?;
        for t in 0..ticks {
            let block = t / BLOCK_TICKS + m % 7;
            let cpu = 0.15 + 0.1 * (block % 8) as f64;
            let disk = 0.9 - 0.1 * (block % 5) as f64;
            trace.push_row(&[cpu, disk])?;
        }
        traces.push(trace);
    }
    let file = std::fs::File::create(path)?;
    let mut out = std::io::BufWriter::new(file);
    events::encode(&traces, &mut out)?;
    use std::io::Write as _;
    out.flush()?;
    Ok(())
}

fn build_cluster(machines: usize, threads: usize) -> Result<ClusterSolver> {
    let mut cluster = ClusterSolver::new(
        &presets::validation_cluster(machines),
        SolverConfig::default(),
    )?;
    cluster.set_threads(threads);
    Ok(cluster)
}

/// Runs the full harness: segmented-equivalence pass first, then the
/// timed throughput passes over the same file.
pub fn bench_replay(
    events_path: &Path,
    machines: usize,
    passes: usize,
    segments: usize,
    threads: usize,
) -> Result<ReplayBench> {
    let metrics = ReplayMetrics::new();
    let events_bytes = std::fs::metadata(events_path)?.len();

    // --- pass 0: serial replay, checkpointing at segment boundaries ---
    let mut serial = build_cluster(machines, threads)?;
    let mut stream = EventsStream::open(events_path)?;
    stream.set_metrics(metrics.clone());
    let mapped = stream.is_mapped();
    let ticks = stream.header().ticks;
    if ticks < segments as u64 {
        return Err(format!("{ticks}-tick trace cannot be cut into {segments} segments").into());
    }
    let binding = ClusterBinding::new(stream.header(), &serial)?;
    let bounds: Vec<u64> = (0..=segments as u64)
        .map(|i| i * ticks / segments as u64)
        .collect();
    let serial_start = Instant::now();
    let mut blobs = vec![serial.checkpoint()];
    for pair in bounds.windows(2) {
        stream.replay_ticks(&binding, &mut serial, pair[1] - pair[0])?;
        blobs.push(serial.checkpoint());
    }
    let serial_pass_seconds = serial_start.elapsed().as_secs_f64();

    // --- parallel time segments: restore blob i, seek, replay, compare ---
    let segmented_start = Instant::now();
    // Worker errors cross the thread boundary as strings (`Box<dyn
    // Error>` is not `Send`).
    let ends: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .windows(2)
            .enumerate()
            .map(|(i, pair)| {
                let (start, end) = (pair[0], pair[1]);
                let blob = &blobs[i];
                let metrics = &metrics;
                scope.spawn(move || -> std::result::Result<Vec<u8>, String> {
                    let run = || -> Result<Vec<u8>> {
                        let mut cluster = build_cluster(machines, threads)?;
                        cluster.restore_checkpoint(blob)?;
                        let mut stream = EventsStream::open(events_path)?;
                        stream.set_metrics(metrics.clone());
                        let binding = ClusterBinding::new(stream.header(), &cluster)?;
                        stream.seek(start)?;
                        stream.replay_ticks(&binding, &mut cluster, end - start)?;
                        Ok(cluster.checkpoint())
                    };
                    run().map_err(|e| format!("segment {i}: {e}"))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("segment worker panicked"))
            .collect::<std::result::Result<Vec<_>, String>>()
    })?;
    let segmented_seconds = segmented_start.elapsed().as_secs_f64();
    let bit_identical = ends.iter().enumerate().all(|(i, end)| *end == blobs[i + 1]);

    // --- throughput passes: repeat the trace through one hot cluster ---
    // Pass 1 above already warmed the page cache, the batch plan, and
    // the allocator; watermark now, then require the remaining passes to
    // leave both the stream memory and the process peak RSS flat.
    let rss_warm_bytes = peak_rss_bytes().unwrap_or(0);
    let mut stream_memory_bytes = 0usize;
    let timed_start = Instant::now();
    for _ in 0..passes {
        let mut stream = EventsStream::open(events_path)?;
        stream.set_metrics(metrics.clone());
        let flat = stream.memory_bytes();
        stream.replay(&binding, &mut serial)?;
        if stream.memory_bytes() != flat {
            return Err("stream decode memory grew during replay".into());
        }
        stream_memory_bytes = flat;
    }
    let serial_seconds = timed_start.elapsed().as_secs_f64();
    let rss_end_bytes = peak_rss_bytes().unwrap_or(0);
    let _ = serial_pass_seconds;

    Ok(ReplayBench {
        machines,
        ticks,
        passes,
        segments,
        threads,
        events_bytes,
        mapped,
        serial_seconds,
        segmented_seconds,
        bit_identical,
        stream_memory_bytes,
        rss_warm_bytes,
        rss_end_bytes,
        metrics,
    })
}

/// Hard-gates the bench against the roadmap's acceptance criteria.
/// Returns an error (failing the harness) when a gate is missed.
pub fn gate(bench: &ReplayBench) -> Result {
    let mtps = bench.machine_ticks_per_sec();
    verdict(
        mtps >= 100_000.0,
        &format!("replay sustains {mtps:.0} machine-ticks/s (gate: ≥100000)"),
    );
    if mtps < 100_000.0 {
        return Err(
            format!("replay throughput {mtps:.0} machine-ticks/s is below the 100k gate").into(),
        );
    }
    let growth = bench.rss_growth_bytes();
    let budget = 16 * 1024 * 1024;
    verdict(
        growth <= budget,
        &format!(
            "peak RSS grew {growth} bytes across {} passes (budget {budget})",
            bench.passes
        ),
    );
    if growth > budget {
        return Err(format!("replay RSS grew {growth} bytes — memory is not flat").into());
    }
    verdict(
        bench.bit_identical,
        "parallel time segments end bit-identical to the serial replay",
    );
    if !bench.bit_identical {
        return Err("segmented replay diverged from the serial run".into());
    }
    Ok(())
}

/// Splices `"replay": {...}` into an existing `BENCH_solver.json`
/// (replacing the old section or inserting before the closing brace), or
/// creates a minimal file when none exists.
fn splice_bench_json(section: &str) -> std::io::Result<()> {
    let path = "BENCH_solver.json";
    let json = match std::fs::read_to_string(path) {
        Ok(text) => {
            let anchor = "  \"replay\": {";
            if let Some(start) = text.find(anchor) {
                // Sections are written with two-space indent, so the
                // first "\n  }" after the anchor closes the object.
                let close = text[start..]
                    .find("\n  }")
                    .map(|o| start + o + "\n  }".len())
                    .unwrap_or(text.len());
                format!("{}  {}{}", &text[..start], section, &text[close..])
            } else if let Some(end) = text.rfind("\n}") {
                format!("{},\n  {}{}", &text[..end], section, &text[end..])
            } else {
                format!("{{\n  {section}\n}}\n")
            }
        }
        Err(_) => format!("{{\n  {section}\n}}\n"),
    };
    std::fs::write(path, json)
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn numeric_flag(args: &[String], name: &str, default: usize) -> Result<usize> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{name} `{v}` is not a number").into()),
    }
}

/// The `experiments replay` subcommand.
pub fn replay(args: &[String]) -> Result {
    let machines = numeric_flag(args, "--machines", 1024)?;
    let ticks = numeric_flag(args, "--ticks", 2000)?;
    let passes = numeric_flag(args, "--passes", 3)?.max(1);
    let segments = numeric_flag(args, "--segments", 4)?.max(1);
    let threads = numeric_flag(args, "--threads", 1)?.max(1);
    if machines == 0 || ticks == 0 {
        return Err("--machines and --ticks must be positive".into());
    }

    let (events_path, _cleanup): (PathBuf, Option<TempFile>) = match flag(args, "--events") {
        Some(path) => (PathBuf::from(path), None),
        None => {
            let path = std::env::temp_dir().join(format!(
                "mercury-replay-{}-{machines}x{ticks}.events",
                std::process::id()
            ));
            println!(
                "synthesizing {machines}-machine x {ticks}-tick trace at {}",
                path.display()
            );
            synthesize_events(&path, machines, ticks)?;
            (path.clone(), Some(TempFile(path)))
        }
    };

    let bench = bench_replay(&events_path, machines, passes, segments, threads)?;
    measured(&format!(
        "{} machines x {} ticks x {} passes in {:.2} s: {:.0} cluster ticks/s, {:.2}M machine-ticks/s ({})",
        bench.machines,
        bench.ticks,
        bench.passes,
        bench.serial_seconds,
        bench.ticks_per_sec(),
        bench.machine_ticks_per_sec() / 1e6,
        if bench.mapped { "mmap" } else { "buffered" },
    ));
    measured(&format!(
        "{} parallel segments in {:.2} s (serial pass baseline above); stream decode memory {} bytes",
        bench.segments, bench.segmented_seconds, bench.stream_memory_bytes,
    ));

    // Export the replay telemetry the way a service would: register the
    // bundle and render the exposition text mercury-stats scrapes.
    let registry = telemetry::Registry::new();
    bench.metrics.register(&registry);
    print!("{}", registry.render_prometheus());

    gate(&bench)?;
    splice_bench_json(&bench.to_json())?;
    println!("updated BENCH_solver.json (replay section)");
    Ok(())
}

/// Deletes the synthesized trace on exit, pass or fail.
struct TempFile(PathBuf);
impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}
