//! Solver throughput benchmark: the CSR step kernel vs the original
//! scan-based stepper.
//!
//! `ReferenceSolver` / `ReferenceCluster` below reimplement the
//! pre-kernel algorithm exactly as the seed shipped it: per-sub-step
//! edge-list scans, an O(nodes × edges) advection rescan, per-tick
//! allocation of the accumulators, division by the heat capacity, and
//! name/HashMap-keyed inter-machine mixing. Timing both against the
//! production [`Solver`] / [`ClusterSolver`] gives the before/after
//! numbers recorded in `BENCH_solver.json`.

// The reference port deliberately mirrors the seed's indexed loops.
#![allow(clippy::needless_range_loop)]

use crate::common::{measured, paper, verdict};
use mercury::model::{AirKind, ClusterEndpoint, ClusterModel, MachineModel};
use mercury::physics;
use mercury::presets::{self, nodes};
use mercury::solver::{
    air_flows, required_substeps, ClusterSolver, SimdBackend, Solver, SolverConfig, TickScheduler,
};
use mercury::units::{Celsius, KilogramsPerSecond, Seconds, Utilization};
use std::collections::HashMap;
use std::time::Instant;

type Result<T = ()> = std::result::Result<T, Box<dyn std::error::Error>>;

/// The seed's single-machine stepper, preserved for benchmarking.
struct ReferenceSolver {
    names: Vec<String>,
    power: Vec<Option<mercury::model::PowerModel>>,
    air_mass: Vec<Option<f64>>,
    fixed: Vec<bool>,
    capacity: Vec<f64>,
    utilization: Vec<Utilization>,
    temp: Vec<f64>,
    heat_edges: Vec<(usize, usize, mercury::units::WattsPerKelvin)>,
    air_edges: Vec<(usize, usize, f64)>,
    edge_flow: Vec<KilogramsPerSecond>,
    topo: Vec<usize>,
    inlet_nodes: Vec<usize>,
    exhaust_nodes: Vec<usize>,
    substeps: usize,
    dt: Seconds,
}

impl ReferenceSolver {
    fn new(model: &MachineModel) -> Self {
        let cfg = SolverConfig::default();
        let n = model.nodes().len();
        let heat_edges: Vec<_> = model
            .heat_edges()
            .iter()
            .map(|e| (e.a.index(), e.b.index(), e.k))
            .collect();
        let air_mass: Vec<Option<f64>> = model
            .nodes()
            .iter()
            .map(|x| x.as_air().map(|a| a.mass_kg))
            .collect();
        let inlets = model.inlets();
        let (edge_flow, inflow) = air_flows(
            n,
            model.air_edges(),
            model.topo_order(),
            &inlets,
            model.fan().mass_flow(),
        );
        let caps: Vec<_> = model.nodes().iter().map(|x| x.capacity()).collect();
        let substeps = required_substeps(
            cfg.dt,
            cfg.stability_limit,
            &heat_edges,
            &caps,
            &inflow,
            &air_mass,
        );
        ReferenceSolver {
            names: model.nodes().iter().map(|x| x.name().to_string()).collect(),
            power: model
                .nodes()
                .iter()
                .map(|x| x.as_component().map(|c| c.power.clone()))
                .collect(),
            air_mass,
            fixed: model
                .nodes()
                .iter()
                .map(|x| x.is_air_kind(AirKind::Inlet))
                .collect(),
            capacity: caps.iter().map(|c| c.0).collect(),
            utilization: vec![Utilization::IDLE; n],
            temp: vec![model.inlet_temperature().0; n],
            heat_edges,
            air_edges: model
                .air_edges()
                .iter()
                .map(|e| (e.from.index(), e.to.index(), e.fraction))
                .collect(),
            edge_flow,
            topo: model.topo_order().iter().map(|id| id.index()).collect(),
            inlet_nodes: inlets.iter().map(|id| id.index()).collect(),
            exhaust_nodes: model
                .nodes()
                .iter()
                .enumerate()
                .filter(|(_, x)| x.is_air_kind(AirKind::Exhaust))
                .map(|(i, _)| i)
                .collect(),
            substeps,
            dt: cfg.dt,
        }
    }

    fn set_utilization(&mut self, name: &str, u: f64) {
        let i = self.names.iter().position(|x| x == name).unwrap();
        self.utilization[i] = u.into();
    }

    fn set_inlet(&mut self, t: Celsius) {
        for &i in &self.inlet_nodes {
            self.temp[i] = t.0;
        }
    }

    fn exhaust_temperature(&self) -> Celsius {
        let sum: f64 = self.exhaust_nodes.iter().map(|&i| self.temp[i]).sum();
        Celsius(sum / self.exhaust_nodes.len() as f64)
    }

    fn step(&mut self) {
        let n = self.names.len();
        let dts = Seconds(self.dt.0 / self.substeps as f64);
        // The seed allocated fresh accumulators every tick.
        let mut dq = vec![0.0_f64; n];
        let mut adv = vec![0.0_f64; n];
        for _ in 0..self.substeps {
            dq.iter_mut().for_each(|q| *q = 0.0);
            adv.iter_mut().for_each(|q| *q = 0.0);
            for i in 0..n {
                if let Some(power) = &self.power[i] {
                    dq[i] += physics::heat_generated(power, self.utilization[i], dts).0;
                }
            }
            for &(a, b, k) in &self.heat_edges {
                let q =
                    physics::heat_transfer(k, Celsius(self.temp[a]), Celsius(self.temp[b]), dts);
                dq[a] -= q.0;
                dq[b] += q.0;
            }
            // O(nodes × edges): every air node rescans the full edge list.
            for &node in &self.topo {
                if self.fixed[node] {
                    continue;
                }
                let Some(mass_kg) = self.air_mass[node] else {
                    continue;
                };
                let mut streams_mass = 0.0;
                let mut streams_heat = 0.0;
                for (ei, &(from, to, _)) in self.air_edges.iter().enumerate() {
                    if to == node {
                        streams_mass += self.edge_flow[ei].0;
                        streams_heat += self.edge_flow[ei].0 * self.temp[from];
                    }
                }
                if streams_mass > 0.0 {
                    let t_mix = streams_heat / streams_mass;
                    let alpha = physics::replacement_fraction(
                        KilogramsPerSecond(streams_mass),
                        mass_kg,
                        dts,
                    );
                    adv[node] = alpha * (t_mix - self.temp[node]);
                }
            }
            for i in 0..n {
                if !self.fixed[i] {
                    self.temp[i] += dq[i] / self.capacity[i] + adv[i];
                }
            }
        }
    }
}

/// The seed's cluster stepper: serial machines plus HashMap-keyed
/// endpoint mixing.
struct ReferenceCluster {
    machines: Vec<ReferenceSolver>,
    supplies: HashMap<String, Celsius>,
    junctions: HashMap<String, Celsius>,
    edges: Vec<mercury::model::ClusterEdge>,
    junction_names: Vec<String>,
}

impl ReferenceCluster {
    fn new(model: &ClusterModel) -> Self {
        let supplies: HashMap<String, Celsius> = model
            .supplies()
            .iter()
            .map(|s| (s.name.clone(), s.temperature))
            .collect();
        let initial = model
            .supplies()
            .first()
            .map(|s| s.temperature)
            .unwrap_or(Celsius(21.6));
        ReferenceCluster {
            machines: model.machines().iter().map(ReferenceSolver::new).collect(),
            junctions: model
                .junctions()
                .iter()
                .map(|j| (j.clone(), initial))
                .collect(),
            supplies,
            edges: model.edges().to_vec(),
            junction_names: model.junctions().to_vec(),
        }
    }

    fn endpoint_temperature(&self, e: &ClusterEndpoint, exhausts: &[Celsius]) -> Option<Celsius> {
        match e {
            ClusterEndpoint::Supply(name) => self.supplies.get(name).copied(),
            ClusterEndpoint::MachineExhaust(i) => Some(exhausts[*i]),
            ClusterEndpoint::Junction(name) => self.junctions.get(name).copied(),
            ClusterEndpoint::MachineInlet(_) => None,
        }
    }

    fn mix_into(&self, to: &ClusterEndpoint, exhausts: &[Celsius]) -> Option<Celsius> {
        let mut weight = 0.0;
        let mut heat = 0.0;
        for e in self.edges.iter().filter(|e| e.to == *to) {
            if let Some(t) = self.endpoint_temperature(&e.from, exhausts) {
                weight += e.fraction;
                heat += e.fraction * t.0;
            }
        }
        (weight > 0.0).then(|| Celsius(heat / weight))
    }

    fn step(&mut self) {
        let exhausts: Vec<Celsius> = self
            .machines
            .iter()
            .map(|m| m.exhaust_temperature())
            .collect();
        for name in &self.junction_names {
            if let Some(t) = self.mix_into(&ClusterEndpoint::Junction(name.clone()), &exhausts) {
                self.junctions.insert(name.clone(), t);
            }
        }
        for m in 0..self.machines.len() {
            if let Some(t) = self.mix_into(&ClusterEndpoint::MachineInlet(m), &exhausts) {
                self.machines[m].set_inlet(t);
            }
        }
        for m in &mut self.machines {
            m.step();
        }
    }
}

fn time<F: FnMut()>(mut f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

/// Peak resident set size of this process (Linux `VmHWM`), in bytes.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Times one replicated-cluster configuration at the given thread count,
/// with the batched path on or off. Returns (seconds, batched machines).
fn time_replicated_cluster(
    n: usize,
    ticks: usize,
    batching: bool,
    threads: usize,
) -> Result<(f64, usize)> {
    let model = presets::validation_cluster(n);
    let mut s = ClusterSolver::new(&model, SolverConfig::default())?;
    s.set_batching(batching);
    s.set_threads(threads);
    for i in 1..=n {
        s.set_utilization(&format!("machine{i}"), nodes::CPU, 0.7)?;
    }
    s.step_for(20); // warm-up (also builds the batch plan)
    let secs = time(|| s.step_for(ticks));
    Ok((secs, s.batched_machines()))
}

/// Best-of-`runs` wall time for `ticks` cluster ticks at `n` machines
/// under one scheduling / replay mode: `scheduler` picks the parallel
/// backend (persistent pool vs legacy spawn-per-tick), and `fused`
/// chooses one `step_for` span versus a per-tick `step()` loop (the
/// pre-fusion replay shape). Utilization is constant, so repeated runs
/// on the same steady-state solver are directly comparable.
fn time_replay(
    n: usize,
    ticks: usize,
    threads: usize,
    scheduler: TickScheduler,
    fused: bool,
    runs: usize,
) -> Result<f64> {
    let model = presets::validation_cluster(n);
    let mut s = ClusterSolver::new(&model, SolverConfig::default())?;
    s.set_threads(threads);
    s.set_scheduler(scheduler);
    for i in 1..=n {
        s.set_utilization(&format!("machine{i}"), nodes::CPU, 0.7)?;
    }
    for _ in 0..20 {
        s.step(); // warm-up (also builds the batch plan and the pool)
    }
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        best = best.min(if fused {
            time(|| s.step_for(ticks))
        } else {
            time(|| (0..ticks).for_each(|_| s.step()))
        });
    }
    Ok(best)
}

/// Best-of-`runs` wall time for a `ticks`-tick fused replay of the
/// 1024-machine batched cluster on one SIMD backend, with fast-math on
/// or off — the per-backend × per-lane-width evidence behind the
/// `simd` section of `BENCH_solver.json`.
fn time_simd_backend(
    n: usize,
    ticks: usize,
    backend: SimdBackend,
    fast_math: bool,
    runs: usize,
) -> Result<f64> {
    let model = presets::validation_cluster(n);
    let mut s = ClusterSolver::new(&model, SolverConfig::default())?;
    s.set_threads(1);
    s.set_simd_backend(backend)?;
    s.set_fast_math(fast_math);
    for i in 1..=n {
        s.set_utilization(&format!("machine{i}"), nodes::CPU, 0.7)?;
    }
    s.step_for(20); // warm-up (also builds the batch plan)
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        best = best.min(time(|| s.step_for(ticks)));
    }
    Ok(best)
}

/// Best-of-`runs` wall time for `ticks` batched cluster ticks at `n`
/// machines, with the runtime telemetry switch on or off. Min-of-runs is
/// the standard noise-robust estimator for an A/B overhead comparison.
/// Deliberately steps tick-by-tick: the ≤2% contract is defined on the
/// per-tick path, where instrumentation runs every tick — fused replay
/// (`step_for`) amortizes it to once per span and would hide a
/// regression here.
fn time_instrumentation(n: usize, ticks: usize, instrumented: bool, runs: usize) -> Result<f64> {
    let model = presets::validation_cluster(n);
    let mut s = ClusterSolver::new(&model, SolverConfig::default())?;
    s.set_instrumentation(instrumented);
    for i in 1..=n {
        s.set_utilization(&format!("machine{i}"), nodes::CPU, 0.7)?;
    }
    for _ in 0..20 {
        s.step(); // warm-up (also builds the batch plan)
    }
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        best = best.min(time(|| (0..ticks).for_each(|_| s.step())));
    }
    Ok(best)
}

/// How the span tracer is wired into a [`time_tracing`] run.
#[derive(Clone, Copy, PartialEq)]
enum TraceMode {
    /// No tracer attached — every span site is a no-op (the default).
    Detached,
    /// Tracer attached but switched off: the cost of the attachment
    /// check alone. This must be free — it is what every untraced
    /// production run pays once the binary carries `instrument`.
    AttachedOff,
    /// Tracer attached and recording: the full span-recording cost.
    AttachedOn,
}

/// Best-of-`runs` wall time for `ticks` per-tick batched cluster steps
/// at `n` machines under one tracer wiring. Per-tick stepping on
/// purpose: tick-phase spans record every tick, so fused replay would
/// amortize exactly the cost being measured.
fn time_tracing(n: usize, ticks: usize, mode: TraceMode, runs: usize) -> Result<f64> {
    let model = presets::validation_cluster(n);
    let mut s = ClusterSolver::new(&model, SolverConfig::default())?;
    match mode {
        TraceMode::Detached => {}
        TraceMode::AttachedOff | TraceMode::AttachedOn => {
            let tracer = telemetry::Tracer::new(telemetry::trace::DEFAULT_SPAN_CAPACITY);
            tracer.set_enabled(mode == TraceMode::AttachedOn);
            s.set_tracer(tracer);
        }
    }
    for i in 1..=n {
        s.set_utilization(&format!("machine{i}"), nodes::CPU, 0.7)?;
    }
    for _ in 0..20 {
        s.step(); // warm-up (also builds the batch plan)
    }
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        best = best.min(time(|| (0..ticks).for_each(|_| s.step())));
    }
    Ok(best)
}

/// The solver-service shape at `n` machines, reused across sampler A/B
/// rounds: the solver sits behind a mutex the ticker loop locks every
/// step, and (when a cadence is given) a background
/// [`telemetry::Sampler`] snapshots the registry plus every machine's
/// CPU temperature under its own brief locks at wall-clock cadence —
/// so the measured delta is the true production cost of history
/// sampling, lock contention included.
struct SamplerBench {
    solver: std::sync::Arc<std::sync::Mutex<ClusterSolver>>,
    registry: std::sync::Arc<telemetry::Registry>,
    cpu_idx: Vec<usize>,
    series: Vec<String>,
}

impl SamplerBench {
    fn new(n: usize) -> Result<Self> {
        let model = presets::validation_cluster(n);
        let mut s = ClusterSolver::new(&model, SolverConfig::default())?;
        let registry = telemetry::Registry::shared();
        s.metrics().register(&registry);
        for i in 1..=n {
            s.set_utilization(&format!("machine{i}"), nodes::CPU, 0.7)?;
        }
        for _ in 0..20 {
            s.step(); // warm-up (also builds the batch plan)
        }
        let cpu_idx: Vec<usize> = (0..n)
            .map(|i| s.machine_at(i).node_index(nodes::CPU).expect("cpu node"))
            .collect();
        let series: Vec<String> = (1..=n).map(|i| format!("temp/machine{i}/cpu")).collect();
        Ok(Self {
            solver: std::sync::Arc::new(std::sync::Mutex::new(s)),
            registry,
            cpu_idx,
            series,
        })
    }

    /// One timed run of `ticks` lock-step cluster steps, with an
    /// optional live sampler at `cadence`.
    fn run(&self, ticks: usize, cadence: Option<std::time::Duration>) -> f64 {
        let sampler = cadence.map(|period| {
            let tsdb = telemetry::tsdb::Tsdb::shared(Default::default());
            let solver = std::sync::Arc::clone(&self.solver);
            let cpu_idx = self.cpu_idx.clone();
            let series = self.series.clone();
            telemetry::Sampler::spawn(
                period,
                tsdb,
                std::sync::Arc::clone(&self.registry),
                Box::new(move |out| {
                    let s = solver.lock().expect("solver lock");
                    for (i, &idx) in cpu_idx.iter().enumerate() {
                        out.push((series[i].clone(), s.machine_at(i).temperature_at(idx).0));
                    }
                }),
            )
        });
        let secs = time(|| {
            for _ in 0..ticks {
                self.solver.lock().expect("solver lock").step();
            }
        });
        if let Some(sampler) = sampler {
            sampler.stop();
        }
        secs
    }
}

/// Best-of-`rounds` wall time for each sampler cadence, measured
/// *interleaved* — every round times all cadences back to back on the
/// same harness — so slow machine-wide drift (thermal throttling, a
/// noisy CI neighbor) lands on every configuration instead of biasing
/// whichever one ran last. Returns one best time per cadence.
fn time_sampling_interleaved(
    n: usize,
    ticks: usize,
    cadences: &[Option<std::time::Duration>],
    rounds: usize,
) -> Result<Vec<f64>> {
    let bench = SamplerBench::new(n)?;
    let mut best = vec![f64::INFINITY; cadences.len()];
    for _ in 0..rounds {
        for (i, &cadence) in cadences.iter().enumerate() {
            best[i] = best[i].min(bench.run(ticks, cadence));
        }
    }
    Ok(best)
}

/// `bench_solver`: single-machine and cluster throughput — the CSR
/// kernel vs the seed algorithm, and the batched SoA cluster path vs
/// per-machine stepping at 64/256/1024 replicated machines — written to
/// `BENCH_solver.json` together with the core count, actual thread
/// counts, peak RSS, and the telemetry overhead A/B (instrumented vs
/// not, which must stay within the 2% contract).
pub fn bench_solver() -> Result {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // --- single machine: Table 1 graphs, 20k ticks -----------------------
    let model = presets::validation_machine();
    let ticks = 20_000usize;

    let mut reference = ReferenceSolver::new(&model);
    reference.set_utilization(nodes::CPU, 0.7);
    reference.set_utilization(nodes::DISK_PLATTERS, 0.4);
    for _ in 0..200 {
        reference.step(); // warm-up
    }
    let ref_s = time(|| {
        for _ in 0..ticks {
            reference.step();
        }
    });

    let mut kernel = Solver::new(&model, SolverConfig::default())?;
    kernel.set_utilization(nodes::CPU, 0.7)?;
    kernel.set_utilization(nodes::DISK_PLATTERS, 0.4)?;
    kernel.step_for(200); // warm-up
    let kern_s = time(|| kernel.step_for(ticks));

    let machine_ref_tps = ticks as f64 / ref_s;
    let machine_kern_tps = ticks as f64 / kern_s;
    let machine_speedup = machine_kern_tps / machine_ref_tps;

    // --- 64-machine cluster: step_for(3600), one emulated hour -----------
    let cluster_model = presets::validation_cluster(64);
    let cluster_ticks = 3_600usize;

    let mut ref_cluster = ReferenceCluster::new(&cluster_model);
    for m in &mut ref_cluster.machines {
        m.set_utilization(nodes::CPU, 0.7);
    }
    let cluster_ref_s = time(|| {
        for _ in 0..cluster_ticks {
            ref_cluster.step();
        }
    });

    // Per-machine path (the PR-1 kernel): batching off, one thread.
    let (cluster_serial_s, _) = time_replicated_cluster(64, cluster_ticks, false, 1)?;
    // Batched path, one thread.
    let (cluster_batched_s, _) = time_replicated_cluster(64, cluster_ticks, true, 1)?;

    // The parallel measurement is only meaningful with >1 core: on a
    // single-core box the scoped threads just time-slice and the result
    // would (misleadingly) read slower than serial. Skip it there, and
    // record the thread count actually used otherwise.
    let parallel = if cores > 1 {
        let mut s = ClusterSolver::new(&cluster_model, SolverConfig::default())?;
        s.set_threads(0); // auto
        for i in 1..=64 {
            s.set_utilization(&format!("machine{i}"), nodes::CPU, 0.7)?;
        }
        let threads = s.effective_threads();
        s.step_for(20);
        Some((time(|| s.step_for(cluster_ticks)), threads))
    } else {
        None
    };

    let cluster_ref_tps = cluster_ticks as f64 / cluster_ref_s;
    let cluster_serial_tps = cluster_ticks as f64 / cluster_serial_s;
    let cluster_batched_tps = cluster_ticks as f64 / cluster_batched_s;
    let cluster_speedup = cluster_batched_tps / cluster_ref_tps;
    let parallel_json = match parallel {
        Some((secs, threads)) => format!(
            "\"kernel_parallel_seconds\": {secs:.3},\n    \"kernel_parallel_ticks_per_sec\": {:.1},\n    \"parallel_threads\": {threads}",
            cluster_ticks as f64 / secs
        ),
        None => "\"kernel_parallel_seconds\": \"skipped_single_core\",\n    \"parallel_threads\": 1".to_string(),
    };

    // --- replicated-cluster scaling: batched vs per-machine kernel -------
    let scale = |n: usize, ticks: usize| -> Result<(usize, f64, f64, usize)> {
        let (per_machine_s, _) = time_replicated_cluster(n, ticks, false, 1)?;
        let (batched_s, batched) = time_replicated_cluster(n, ticks, true, 1)?;
        Ok((ticks, per_machine_s, batched_s, batched))
    };
    let (ticks_256, per_machine_256_s, batched_256_s, batched_256) = scale(256, 1200)?;
    let (ticks_1024, per_machine_1024_s, batched_1024_s, batched_1024) = scale(1024, 300)?;
    let batch_speedup_256 = per_machine_256_s / batched_256_s;
    let batch_speedup_1024 = per_machine_1024_s / batched_1024_s;

    let rss = peak_rss_bytes().unwrap_or(0);
    let scaling_json = |name: &str,
                        n: usize,
                        ticks: usize,
                        pm_s: f64,
                        b_s: f64,
                        batched: usize,
                        speedup: f64| {
        format!(
            "\"{name}\": {{\n    \"model\": \"validation_cluster({n})\",\n    \"ticks\": {ticks},\n    \"threads\": 1,\n    \"per_machine_seconds\": {pm_s:.3},\n    \"batched_seconds\": {b_s:.3},\n    \"per_machine_ticks_per_sec\": {:.1},\n    \"batched_ticks_per_sec\": {:.1},\n    \"batched_machines\": {batched},\n    \"batch_speedup\": {speedup:.2}\n  }}",
            ticks as f64 / pm_s,
            ticks as f64 / b_s,
        )
    };
    let s256 = scaling_json(
        "cluster_256",
        256,
        ticks_256,
        per_machine_256_s,
        batched_256_s,
        batched_256,
        batch_speedup_256,
    );
    let s1024 = scaling_json(
        "cluster_1024",
        1024,
        ticks_1024,
        per_machine_1024_s,
        batched_1024_s,
        batched_1024,
        batch_speedup_1024,
    );

    // --- persistent pool vs spawn-per-tick, per-tick stepping ------------
    // Two threads on either backend: the delta is pure per-tick
    // orchestration (condvar wake vs thread spawn/join), which is real
    // even when a small host time-slices the workers.
    let pool_threads = 2usize;
    let pool_vs_spawn = |n: usize, ticks: usize| -> Result<(f64, f64)> {
        let spawn_s = time_replay(
            n,
            ticks,
            pool_threads,
            TickScheduler::SpawnPerTick,
            false,
            3,
        )?;
        let pool_s = time_replay(n, ticks, pool_threads, TickScheduler::Pool, false, 3)?;
        Ok((spawn_s, pool_s))
    };
    let (spawn_256_s, pool_256_s) = pool_vs_spawn(256, 1200)?;
    let (spawn_1024_s, pool_1024_s) = pool_vs_spawn(1024, 300)?;
    let pool_speedup_256 = spawn_256_s / pool_256_s;
    let pool_speedup_1024 = spawn_1024_s / pool_1024_s;
    let pool_json = |name: &str, n: usize, ticks: usize, spawn_s: f64, pool_s: f64, sp: f64| {
        format!(
            "\"{name}\": {{\n    \"model\": \"validation_cluster({n})\",\n    \"ticks\": {ticks},\n    \"threads\": {pool_threads},\n    \"spawn_per_tick_seconds\": {spawn_s:.3},\n    \"pool_seconds\": {pool_s:.3},\n    \"spawn_ticks_per_sec\": {:.1},\n    \"pool_ticks_per_sec\": {:.1},\n    \"pool_speedup\": {sp:.2}\n  }}",
            ticks as f64 / spawn_s,
            ticks as f64 / pool_s,
        )
    };
    let pool_256_json = pool_json(
        "pool_vs_spawn_256",
        256,
        1200,
        spawn_256_s,
        pool_256_s,
        pool_speedup_256,
    );
    let pool_1024_json = pool_json(
        "pool_vs_spawn_1024",
        1024,
        300,
        spawn_1024_s,
        pool_1024_s,
        pool_speedup_1024,
    );

    // --- fused replay vs per-tick loop: steady-state 10k-tick trace ------
    // Constant utilization for the whole span — the paper's trace-replay
    // shape — so the fused path keeps the chunk matrices hot and pays
    // plan/gather/scatter once. The 1024-machine number is the PR gate:
    // ≥1.3× over per-tick stepping (the PR 2 replay shape).
    let replay_ticks = 10_000usize;
    let fused_replay = |n: usize| -> Result<(f64, f64)> {
        let loop_s = time_replay(n, replay_ticks, 1, TickScheduler::Pool, false, 3)?;
        let fused_s = time_replay(n, replay_ticks, 1, TickScheduler::Pool, true, 3)?;
        Ok((loop_s, fused_s))
    };
    let (loop_256_s, fused_256_s) = fused_replay(256)?;
    let (loop_1024_s, fused_1024_s) = fused_replay(1024)?;
    let fused_speedup_256 = loop_256_s / fused_256_s;
    let fused_speedup_1024 = loop_1024_s / fused_1024_s;
    let fused_json = |name: &str, n: usize, loop_s: f64, fused_s: f64, sp: f64| {
        format!(
            "\"{name}\": {{\n    \"model\": \"validation_cluster({n})\",\n    \"ticks\": {replay_ticks},\n    \"threads\": 1,\n    \"per_tick_seconds\": {loop_s:.3},\n    \"fused_seconds\": {fused_s:.3},\n    \"per_tick_ticks_per_sec\": {:.1},\n    \"fused_ticks_per_sec\": {:.1},\n    \"fused_speedup\": {sp:.2}\n  }}",
            replay_ticks as f64 / loop_s,
            replay_ticks as f64 / fused_s,
        )
    };
    let fused_256_json = fused_json(
        "replay_fused_256",
        256,
        loop_256_s,
        fused_256_s,
        fused_speedup_256,
    );
    let fused_1024_json = fused_json(
        "replay_fused_1024",
        1024,
        loop_1024_s,
        fused_1024_s,
        fused_speedup_1024,
    );

    // --- SIMD lane sweeps: per backend × lane width, fast-math A/B -------
    // Fused 600-tick replays of the 1024-machine room, best of 3 per
    // configuration: every backend the host supports in exact mode,
    // then fast-math on the auto-selected backend. The scalar row is
    // the reference path (`MERCURY_SIMD=scalar`); the selected vector
    // backend being slower than it is a hard failure.
    let simd_ticks = 600usize;
    let simd_runs = 3usize;
    let selected = SimdBackend::select();
    let mut backend_rows = Vec::new();
    let mut scalar_tps = 0.0f64;
    let mut selected_tps = 0.0f64;
    for backend in SimdBackend::ALL.into_iter().filter(|b| b.supported()) {
        let secs = time_simd_backend(1024, simd_ticks, backend, false, simd_runs)?;
        let tps = simd_ticks as f64 / secs;
        if backend == SimdBackend::Scalar {
            scalar_tps = tps;
        }
        if backend == selected {
            selected_tps = tps;
        }
        backend_rows.push(format!(
            "      \"{}\": {{ \"lane_width\": {}, \"seconds\": {secs:.3}, \"ticks_per_sec\": {tps:.1} }}",
            backend.name(),
            backend.lane_width()
        ));
    }
    let fast_s = time_simd_backend(1024, simd_ticks, selected, true, simd_runs)?;
    let fast_tps = simd_ticks as f64 / fast_s;
    let vector_vs_scalar = selected_tps / scalar_tps;
    let fast_vs_exact = fast_tps / selected_tps;
    let simd_json = format!(
        "\"simd\": {{\n    \"model\": \"validation_cluster(1024)\",\n    \"ticks\": {simd_ticks},\n    \"runs\": {simd_runs},\n    \"threads\": 1,\n    \"selected_backend\": \"{}\",\n    \"selected_lane_width\": {},\n    \"backends\": {{\n{}\n    }},\n    \"fast_math\": {{ \"backend\": \"{}\", \"seconds\": {fast_s:.3}, \"ticks_per_sec\": {fast_tps:.1}, \"speedup_vs_exact\": {fast_vs_exact:.2} }},\n    \"vector_vs_scalar_speedup\": {vector_vs_scalar:.2}\n  }}",
        selected.name(),
        selected.lane_width(),
        backend_rows.join(",\n"),
        selected.name(),
    );

    // --- telemetry overhead: instrumented vs switched-off, best of 3 -----
    let telem_ticks = 1200usize;
    let telem_runs = 3usize;
    let instrumented_s = time_instrumentation(256, telem_ticks, true, telem_runs)?;
    let uninstrumented_s = time_instrumentation(256, telem_ticks, false, telem_runs)?;
    let overhead_pct = (instrumented_s / uninstrumented_s - 1.0) * 100.0;
    let telemetry_json = format!(
        "\"telemetry_overhead\": {{\n    \"model\": \"validation_cluster(256)\",\n    \"ticks\": {telem_ticks},\n    \"runs\": {telem_runs},\n    \"instrumented_seconds\": {instrumented_s:.4},\n    \"uninstrumented_seconds\": {uninstrumented_s:.4},\n    \"overhead_pct\": {overhead_pct:.2}\n  }}"
    );

    // --- span tracing overhead: detached / attached-off / attached-on ----
    // The tracing contract has two halves: a binary that carries the
    // span sites but runs untraced must pay nothing (hard gate), and a
    // fully recording run must stay within 2% (soft gate — recording
    // is opt-in and post-incident, not always-on).
    let trace_ticks = 300usize;
    let trace_runs = 3usize;
    let trace_detached_s = time_tracing(1024, trace_ticks, TraceMode::Detached, trace_runs)?;
    let trace_off_s = time_tracing(1024, trace_ticks, TraceMode::AttachedOff, trace_runs)?;
    let trace_on_s = time_tracing(1024, trace_ticks, TraceMode::AttachedOn, trace_runs)?;
    let trace_off_pct = (trace_off_s / trace_detached_s - 1.0) * 100.0;
    let trace_on_pct = (trace_on_s / trace_detached_s - 1.0) * 100.0;
    let trace_json = format!(
        "\"trace_overhead\": {{\n    \"model\": \"validation_cluster(1024)\",\n    \"ticks\": {trace_ticks},\n    \"runs\": {trace_runs},\n    \"detached_seconds\": {trace_detached_s:.4},\n    \"attached_off_seconds\": {trace_off_s:.4},\n    \"attached_on_seconds\": {trace_on_s:.4},\n    \"attached_off_pct\": {trace_off_pct:.2},\n    \"attached_on_pct\": {trace_on_pct:.2}\n  }}"
    );

    // --- history sampler overhead: off / 1 Hz / 10 Hz --------------------
    // The service shape at 1024 machines. The 1 Hz row is the gate: the
    // paper's deployment samples at most once a second, and background
    // history must stay within the same ≤2% budget as the rest of the
    // observability stack. The 10 Hz row is recorded for context only.
    let sampler_ticks = 30_000usize;
    let sampler_runs = 3usize;
    let sampler_best = time_sampling_interleaved(
        1024,
        sampler_ticks,
        &[
            None,
            Some(std::time::Duration::from_secs(1)),
            Some(std::time::Duration::from_millis(100)),
        ],
        sampler_runs,
    )?;
    let (sampler_off_s, sampler_1hz_s, sampler_10hz_s) =
        (sampler_best[0], sampler_best[1], sampler_best[2]);
    let sampler_1hz_pct = (sampler_1hz_s / sampler_off_s - 1.0) * 100.0;
    let sampler_10hz_pct = (sampler_10hz_s / sampler_off_s - 1.0) * 100.0;
    let sampler_json = format!(
        "\"sampler_overhead\": {{\n    \"model\": \"validation_cluster(1024)\",\n    \"ticks\": {sampler_ticks},\n    \"runs\": {sampler_runs},\n    \"off_seconds\": {sampler_off_s:.4},\n    \"hz1_seconds\": {sampler_1hz_s:.4},\n    \"hz10_seconds\": {sampler_10hz_s:.4},\n    \"hz1_overhead_pct\": {sampler_1hz_pct:.2},\n    \"hz10_overhead_pct\": {sampler_10hz_pct:.2}\n  }}"
    );

    // --- out-of-core .events replay: the fleet-scale trace pipeline ------
    // Same harness as `experiments replay` (which can refresh just this
    // section): synthesize a 1024-machine blocky trace, verify the
    // checkpointed parallel segments bitwise, then time repeated
    // out-of-core passes. Its three gates (≥100k machine-ticks/s, flat
    // RSS, bit-identical segments) are hard failures here too.
    let replay_bench = {
        let path = std::env::temp_dir().join(format!(
            "mercury-bench-replay-{}.events",
            std::process::id()
        ));
        crate::replay::synthesize_events(&path, 1024, 2000)?;
        let bench = crate::replay::bench_replay(&path, 1024, 3, 4, 1);
        let _ = std::fs::remove_file(&path);
        bench?
    };
    let replay_json = replay_bench.to_json();

    let json = format!(
        "{{\n  \"hardware\": {{ \"cores\": {cores}, \"peak_rss_bytes\": {rss} }},\n  \"single_machine\": {{\n    \"model\": \"validation_machine\",\n    \"ticks\": {ticks},\n    \"reference_ticks_per_sec\": {machine_ref_tps:.1},\n    \"kernel_ticks_per_sec\": {machine_kern_tps:.1},\n    \"speedup\": {machine_speedup:.2}\n  }},\n  \"cluster_64\": {{\n    \"model\": \"validation_cluster(64)\",\n    \"ticks\": {cluster_ticks},\n    \"reference_seconds\": {cluster_ref_s:.3},\n    \"kernel_serial_seconds\": {cluster_serial_s:.3},\n    \"kernel_batched_seconds\": {cluster_batched_s:.3},\n    {parallel_json},\n    \"reference_ticks_per_sec\": {cluster_ref_tps:.1},\n    \"kernel_serial_ticks_per_sec\": {cluster_serial_tps:.1},\n    \"kernel_batched_ticks_per_sec\": {cluster_batched_tps:.1},\n    \"speedup_vs_reference\": {cluster_speedup:.2}\n  }},\n  {s256},\n  {s1024},\n  {pool_256_json},\n  {pool_1024_json},\n  {fused_256_json},\n  {fused_1024_json},\n  {simd_json},\n  {telemetry_json},\n  {trace_json},\n  {sampler_json},\n  {replay_json}\n}}\n"
    );
    std::fs::write("BENCH_solver.json", &json)?;
    println!("wrote BENCH_solver.json");

    paper("solver ≈ 100 µs per iteration on 2006 hardware (§2.3)");
    measured(&format!(
        "single machine: reference {machine_ref_tps:.0} ticks/s, kernel {machine_kern_tps:.0} ticks/s ({machine_speedup:.2}×)"
    ));
    measured(&format!(
        "64-machine cluster, 3600 ticks: reference {cluster_ref_s:.2} s, per-machine {cluster_serial_s:.2} s, batched {cluster_batched_s:.2} s ({cluster_speedup:.2}× vs reference)"
    ));
    match parallel {
        Some((secs, threads)) => measured(&format!(
            "64-machine cluster parallel: {secs:.2} s on {threads} threads"
        )),
        None => measured("parallel measurement skipped: single-core machine"),
    }
    measured(&format!(
        "256-machine cluster: per-machine {per_machine_256_s:.2} s, batched {batched_256_s:.2} s ({batch_speedup_256:.2}×, {batched_256} machines batched)"
    ));
    measured(&format!(
        "1024-machine cluster: per-machine {per_machine_1024_s:.2} s, batched {batched_1024_s:.2} s ({batch_speedup_1024:.2}×, peak RSS {:.0} MiB)",
        rss as f64 / (1024.0 * 1024.0)
    ));
    verdict(
        cluster_speedup >= 2.0,
        "64-machine cluster steps ≥2× faster than the seed algorithm",
    );
    verdict(
        batch_speedup_256 >= 3.0,
        "256-machine replicated cluster: batched kernel ≥3× the per-machine kernel",
    );
    measured(&format!(
        "pool vs spawn-per-tick, {pool_threads} threads: 256 machines {spawn_256_s:.2} s → {pool_256_s:.2} s ({pool_speedup_256:.2}×), 1024 machines {spawn_1024_s:.2} s → {pool_1024_s:.2} s ({pool_speedup_1024:.2}×)"
    ));
    verdict(
        pool_speedup_256 >= 1.0 && pool_speedup_1024 >= 1.0,
        "persistent pool is never slower than spawn-per-tick",
    );
    measured(&format!(
        "fused 10k-tick replay: 256 machines {loop_256_s:.2} s → {fused_256_s:.2} s ({fused_speedup_256:.2}×), 1024 machines {loop_1024_s:.2} s → {fused_1024_s:.2} s ({fused_speedup_1024:.2}×)"
    ));
    verdict(
        fused_speedup_1024 >= 1.3,
        "1024-machine steady-state 10k-tick replay ≥1.3× over per-tick stepping",
    );
    measured(&format!(
        "SIMD lane sweeps, 1024-machine fused replay: scalar {scalar_tps:.0} ticks/s, {} (w{}) {selected_tps:.0} ticks/s ({vector_vs_scalar:.2}×), fast-math {fast_tps:.0} ticks/s ({fast_vs_exact:.2}× vs exact)",
        selected.name(),
        selected.lane_width(),
    ));
    verdict(
        vector_vs_scalar >= 1.0,
        "selected vector backend is not slower than the scalar sweep",
    );
    if vector_vs_scalar < 1.0 {
        return Err(format!(
            "selected SIMD backend {} ({selected_tps:.1} ticks/s) is slower than \
             the scalar sweep ({scalar_tps:.1} ticks/s)",
            selected.name()
        )
        .into());
    }
    verdict(
        vector_vs_scalar >= 2.0,
        "bit-exact vector sweep ≥2× the scalar batched 1024-machine replay",
    );
    verdict(
        fast_vs_exact >= 0.98,
        "fast-math lane mode at least matches the bit-exact vector path",
    );
    measured(&format!(
        "telemetry overhead, 256-machine batched tick: instrumented {instrumented_s:.3} s vs off {uninstrumented_s:.3} s ({overhead_pct:+.2}%)"
    ));
    verdict(
        overhead_pct <= 2.0,
        "always-on telemetry costs ≤2% of the 256-machine batched tick",
    );
    if overhead_pct > 2.0 {
        return Err(format!(
            "telemetry overhead {overhead_pct:.2}% exceeds the 2% contract \
             (instrumented {instrumented_s:.4} s vs uninstrumented {uninstrumented_s:.4} s)"
        )
        .into());
    }
    measured(&format!(
        "span tracing, 1024-machine per-tick: detached {trace_detached_s:.3} s, \
         attached-off {trace_off_s:.3} s ({trace_off_pct:+.2}%), \
         attached-on {trace_on_s:.3} s ({trace_on_pct:+.2}%)"
    ));
    verdict(
        trace_off_pct <= 2.0,
        "an attached-but-off tracer costs ≤2% (the untraced production path)",
    );
    verdict(
        trace_on_pct <= 2.0,
        "full span recording stays within the 2% tracing budget",
    );
    if trace_off_pct > 2.0 {
        return Err(format!(
            "dormant tracer overhead {trace_off_pct:.2}% exceeds the 2% contract \
             (attached-off {trace_off_s:.4} s vs detached {trace_detached_s:.4} s)"
        )
        .into());
    }
    measured(&format!(
        "history sampler, 1024-machine service shape: off {sampler_off_s:.3} s, \
         1 Hz {sampler_1hz_s:.3} s ({sampler_1hz_pct:+.2}%), \
         10 Hz {sampler_10hz_s:.3} s ({sampler_10hz_pct:+.2}%)"
    ));
    verdict(
        sampler_1hz_pct <= 2.0,
        "1 Hz history sampling costs ≤2% of the 1024-machine service",
    );
    if sampler_1hz_pct > 2.0 {
        return Err(format!(
            "1 Hz sampler overhead {sampler_1hz_pct:.2}% exceeds the 2% contract \
             (sampled {sampler_1hz_s:.4} s vs off {sampler_off_s:.4} s)"
        )
        .into());
    }
    measured(&format!(
        "out-of-core replay: {} passes of {} ticks x {} machines in {:.2} s \
         ({:.2}M machine-ticks/s, {} segments, RSS growth {} bytes)",
        replay_bench.passes,
        replay_bench.ticks,
        replay_bench.machines,
        replay_bench.serial_seconds,
        replay_bench.machine_ticks_per_sec() / 1e6,
        replay_bench.segments,
        replay_bench.rss_growth_bytes(),
    ));
    crate::replay::gate(&replay_bench)?;
    Ok(())
}
