//! Reproduction harness for "Mercury and Freon" (ASPLOS 2006).
//!
//! One subcommand per paper artifact; each writes CSV series under
//! `results/` and prints `PAPER:` / `MEASURED:` summary lines. Run with
//! `--release` — the Fluent stand-in and the long calibration runs are
//! deliberately expensive.
//!
//! ```text
//! cargo run --release -p experiments -- all
//! cargo run --release -p experiments -- fig11
//! ```

mod ablation;
mod bench_solver;
mod common;
mod extensions;
mod fluent;
mod freon_exp;
mod misc;
mod replay;
mod scenarios;
mod validation;

use std::process::ExitCode;

const USAGE: &str = "\
usage: experiments <subcommand>

  table1            print the Table 1 model as loaded by Mercury
  fig1              dump the Figure 1 graphs in Graphviz dot
  fig4              run the Figure 4 fiddle script against a live solver
  fig5              CPU calibration run (plant vs Mercury)
  fig6              disk calibration run
  fig7              CPU-air validation on the combined benchmark
  fig8              disk validation on the combined benchmark
  table_fluent      14-combo steady-state comparison vs the CFD stand-in
  fig11             Freon base policy under two inlet emergencies
  fig12             Freon-EC under the same trace and emergencies
  table_drops       Freon vs the traditional red-line baseline
  micro             solver-iteration and sensor-read latency micro numbers
  bench_solver      step-kernel vs seed-algorithm throughput -> BENCH_solver.json
  replay            out-of-core .events fleet replay: throughput, flat-RSS,
                    and checkpointed parallel time segments vs serial
                    (--machines/--ticks/--passes/--segments/--threads/--events;
                     updates the replay section of BENCH_solver.json)
  ablation_controller   PD vs P-only vs bang-bang admission control
  ablation_projection   Freon-EC projection horizon 0/1/2/4 intervals
  ablation_substeps     solver stability-limit sweep (accuracy vs cost)
  sec43_throttling  remote (Freon) vs local (DVFS) vs combined throttling
  ablation_fans     fixed vs variable-speed fans under the emergencies
  scenarios         emergency grid x declarative policies league table
                    (--fast for the CI smoke; --policy <file.toml> to add specs;
                     --scenario <name> for one cell; --trace for causal spans
                     + flight-recorder incident bundles in results/incidents/)
  all               everything above, in order
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match args.first() {
        Some(c) => c.as_str(),
        None => {
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = run_with(command, &args[1..]);
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("experiments {command}: {err}");
            ExitCode::FAILURE
        }
    }
}

fn run(command: &str) -> Result<(), Box<dyn std::error::Error>> {
    run_with(command, &[])
}

fn run_with(command: &str, args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    match command {
        "scenarios" => scenarios::scenarios(args),
        "table1" => misc::table1(),
        "fig1" => misc::fig1(),
        "fig4" => misc::fig4(),
        "fig5" => validation::fig5(),
        "fig6" => validation::fig6(),
        "fig7" => validation::fig7(),
        "fig8" => validation::fig8(),
        "table_fluent" => fluent::table_fluent(),
        "fig11" => freon_exp::fig11(),
        "fig12" => freon_exp::fig12(),
        "table_drops" => freon_exp::table_drops(),
        "micro" => misc::micro(),
        "bench_solver" => bench_solver::bench_solver(),
        "replay" => replay::replay(args),
        "ablation_controller" => ablation::controller(),
        "ablation_projection" => ablation::projection(),
        "ablation_substeps" => ablation::substeps(),
        "sec43_throttling" => extensions::sec43_throttling(),
        "ablation_fans" => extensions::ablation_fans(),
        "all" => {
            for cmd in [
                "table1",
                "fig1",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "table_fluent",
                "fig11",
                "fig12",
                "table_drops",
                "micro",
                "bench_solver",
                "ablation_controller",
                "ablation_projection",
                "ablation_substeps",
                "sec43_throttling",
                "ablation_fans",
                "scenarios",
            ] {
                println!("==================== {cmd} ====================");
                run(cmd)?;
                println!();
            }
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`\n{USAGE}").into()),
    }
}
