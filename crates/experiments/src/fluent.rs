//! §3.2: steady-state comparison against the CFD stand-in across 14
//! power combinations.
//!
//! Procedure, mirroring the paper ("our calibration of Mercury involved
//! entering these values as input, with a rough approximation of the air
//! flow that was also provided by Fluent"):
//!
//! 1. solve the 2-D case at three calibration points (a base point, a
//!    CPU-power excursion, a disk-power excursion) and extract, per
//!    component, (a) the effective material-to-air boundary coefficient
//!    `k = ΔP/Δ(T_comp − T_air)` and (b) the air channel's behaviour as
//!    an affine function of the component's power — its slope gives the
//!    channel's mass flow and its intercept the *preheat* contributed by
//!    upstream components (the CPU sits downstream of the power supply);
//! 2. enter those constants into a small Mercury model of the same case —
//!    one air channel per component, preheat modelled as a constant duct
//!    heater;
//! 3. for each of 14 (CPU, disk) power combinations, compare Mercury's
//!    steady-state component temperatures against a fresh CFD solve.
//!
//! The paper reports agreement within 0.25 °C (disk) and 0.32 °C (CPU).

use crate::common::{measured, paper, verdict, write_results};
use mercury::model::{MachineModel, PowerModel};
use mercury::solver::{Solver, SolverConfig};
use mercury::units::{Watts, AIR_SPECIFIC_HEAT};
use reference_models::fluent2d::{CaseConfig, Component, Fluent2d, SteadyState};
use std::fmt::Write as _;

type Result<T = ()> = std::result::Result<T, Box<dyn std::error::Error>>;

/// The 14 power combinations: seven CPU levels × two disk levels, with
/// the power supply fixed at its measured 40 W.
pub fn power_combos() -> Vec<(f64, f64)> {
    let mut combos = Vec::new();
    for cpu in [7.0, 11.0, 15.0, 19.0, 23.0, 27.0, 31.0] {
        for disk in [9.0, 14.0] {
            combos.push((cpu, disk));
        }
    }
    combos
}

const PSU_W: f64 = 40.0;

fn solve_case(config: &CaseConfig, cpu_w: f64, disk_w: f64) -> Result<SteadyState> {
    let mut case = Fluent2d::server_case(config.clone());
    case.set_power(Component::Cpu, cpu_w);
    case.set_power(Component::Disk, disk_w);
    case.set_power(Component::Psu, PSU_W);
    Ok(case
        .solve(1e-6, 400_000)
        .map_err(|e| format!("CFD solve failed: {e}"))?)
}

/// Per-component constants extracted from the calibration solves.
struct ChannelFit {
    /// Boundary coefficient, W/K.
    k: f64,
    /// Air-channel mass flow, kg/s (from the rise-vs-power slope).
    mass_flow: f64,
    /// Constant upstream preheat of the channel, K.
    preheat: f64,
}

/// Fits `T_air_near = inlet + preheat + P/(ṁ·c)` and
/// `T_comp − T_air = P/k` from two solves that differ only in this
/// component's power.
fn fit_channel(
    component: Component,
    low: (&SteadyState, f64),
    high: (&SteadyState, f64),
    inlet_c: f64,
) -> Result<ChannelFit> {
    let (s_low, p_low) = low;
    let (s_high, p_high) = high;
    let dp = p_high - p_low;
    if dp <= 0.0 {
        return Err("calibration powers must differ".into());
    }
    let rise_low = s_low.air_near(component) - inlet_c;
    let rise_high = s_high.air_near(component) - inlet_c;
    let slope = (rise_high - rise_low) / dp; // K per W
    if slope <= 0.0 {
        return Err(format!("{component:?}: air does not respond to power").into());
    }
    let mass_flow = 1.0 / (slope * AIR_SPECIFIC_HEAT.0);
    let preheat = (rise_low - slope * p_low).max(0.0);
    let delta_low = s_low.component_temp(component) - s_low.air_near(component);
    let delta_high = s_high.component_temp(component) - s_high.air_near(component);
    let dk = delta_high - delta_low;
    if dk <= 0.0 {
        return Err(format!("{component:?}: block does not heat above its air").into());
    }
    Ok(ChannelFit {
        k: dp / dk,
        mass_flow,
        preheat,
    })
}

/// Builds the Mercury model of the 2-D case from the channel fits.
///
/// The Mercury fan is sized so that every fitted channel fits: the fitted
/// flows are *effective* flows (turbulent mixing transports more heat
/// than the bulk stream through any one channel), so their sum may exceed
/// the duct's bulk flow.
fn mercury_case(fits: &[(&str, &ChannelFit)], inlet_c: f64) -> Result<MachineModel> {
    let fan_mass_flow: f64 = fits.iter().map(|(_, f)| f.mass_flow).sum::<f64>() / 0.9;
    let mut b = MachineModel::builder("case2d");
    b.inlet("inlet");
    b.exhaust("exhaust");
    for (name, fit) in fits {
        let fraction = (fit.mass_flow / fan_mass_flow).clamp(0.005, 0.95);
        b.component(name.to_string())
            .mass_kg(0.3)
            .specific_heat(896.0)
            .constant_power(0.0);
        let air = format!("{name}_air");
        b.air(&air);
        b.heat_edge(name, &air, fit.k)?;
        b.air_edge("inlet", &air, fraction)?;
        b.air_edge(&air, "exhaust", 1.0)?;
        // Upstream preheat: a constant duct heater warming the channel by
        // `preheat` Kelvin at its fitted flow.
        let q = fit.preheat * fit.mass_flow * AIR_SPECIFIC_HEAT.0;
        if q > 1e-3 {
            let duct = format!("{name}_duct");
            b.component(&duct)
                .mass_kg(0.1)
                .specific_heat(896.0)
                .constant_power(q);
            b.heat_edge(&duct, &air, 20.0)?;
        }
    }
    b.inlet_temperature_c(inlet_c);
    b.fan_cfm(fan_mass_flow / mercury::units::AIR_DENSITY / mercury::units::CFM_TO_M3S);
    Ok(b.build()?)
}

/// Runs the 14-combination table.
pub fn table_fluent() -> Result {
    let config = CaseConfig::standard();
    let inlet_c = config.inlet_c;

    // Three calibration solves: base, CPU excursion, disk excursion.
    let base = solve_case(&config, 12.0, 11.5)?;
    let cpu_high = solve_case(&config, 26.0, 11.5)?;
    let disk_high = solve_case(&config, 12.0, 14.0)?;
    let cpu_fit = fit_channel(Component::Cpu, (&base, 12.0), (&cpu_high, 26.0), inlet_c)?;
    let disk_fit = fit_channel(Component::Disk, (&base, 11.5), (&disk_high, 14.0), inlet_c)?;
    // The PSU never varies; a single-point fit pins its channel.
    let psu_rise = base.air_near(Component::Psu) - inlet_c;
    let psu_fit = ChannelFit {
        k: base
            .effective_k(Component::Psu)
            .ok_or("no PSU k from the reference solve")?,
        mass_flow: PSU_W / (AIR_SPECIFIC_HEAT.0 * psu_rise),
        preheat: 0.0,
    };
    measured(&format!(
        "calibration: {} sweeps/solve over {} cells; k — cpu {:.1}, disk {:.1}, psu {:.1} W/K; preheat — cpu {:.2} K, disk {:.2} K",
        base.iterations,
        config.nx * config.ny,
        cpu_fit.k,
        disk_fit.k,
        psu_fit.k,
        cpu_fit.preheat,
        disk_fit.preheat,
    ));

    let model = mercury_case(
        &[("cpu", &cpu_fit), ("disk", &disk_fit), ("psu", &psu_fit)],
        inlet_c,
    )?;

    let mut csv = String::from(
        "cpu_w,disk_w,fluent_cpu,mercury_cpu,delta_cpu,fluent_disk,mercury_disk,delta_disk\n",
    );
    let mut max_cpu_delta = 0.0_f64;
    let mut max_disk_delta = 0.0_f64;
    for (cpu_w, disk_w) in power_combos() {
        let truth = solve_case(&config, cpu_w, disk_w)?;

        let mut solver = Solver::new(&model, SolverConfig::default())?;
        solver.set_power_model("cpu", PowerModel::Constant(Watts(cpu_w)))?;
        solver.set_power_model("disk", PowerModel::Constant(Watts(disk_w)))?;
        solver.set_power_model("psu", PowerModel::Constant(Watts(PSU_W)))?;
        solver.run_to_steady_state(1e-7, 200_000);

        let mercury_cpu = solver.temperature("cpu")?.0;
        let mercury_disk = solver.temperature("disk")?.0;
        let fluent_cpu = truth.component_temp(Component::Cpu);
        let fluent_disk = truth.component_temp(Component::Disk);
        let d_cpu = mercury_cpu - fluent_cpu;
        let d_disk = mercury_disk - fluent_disk;
        max_cpu_delta = max_cpu_delta.max(d_cpu.abs());
        max_disk_delta = max_disk_delta.max(d_disk.abs());
        let _ = writeln!(
            csv,
            "{cpu_w},{disk_w},{fluent_cpu:.3},{mercury_cpu:.3},{d_cpu:.3},{fluent_disk:.3},{mercury_disk:.3},{d_disk:.3}"
        );
    }
    write_results("table_fluent.csv", &csv)?;
    paper("across 14 CPU/disk power combinations Mercury matches Fluent steady state within 0.32 °C (CPU) and 0.25 °C (disk)");
    measured(&format!(
        "max |Δ| over 14 combos: CPU {max_cpu_delta:.2} °C, disk {max_disk_delta:.2} °C"
    ));
    verdict(
        max_cpu_delta < 0.5,
        "CPU steady-state agreement is in the paper's sub-half-degree class",
    );
    verdict(
        max_disk_delta < 0.5,
        "disk steady-state agreement is in the paper's sub-half-degree class",
    );
    Ok(())
}
