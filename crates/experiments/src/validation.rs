//! Figures 5–8: calibrating Mercury against the plant and validating it
//! on an unseen benchmark.
//!
//! The pipeline mirrors §3.1 exactly:
//!
//! 1. run the CPU microbenchmark on the "real machine" (the plant) and
//!    calibrate Mercury's CPU-side constants against the thermometer on
//!    the heat sink (Figure 5);
//! 2. run the disk microbenchmark and calibrate the disk-side constants
//!    against the in-disk sensor (Figure 6);
//! 3. without touching any input again, run the challenging combined
//!    benchmark and compare (Figures 7 and 8) — the paper's claim is
//!    agreement "within 1 °C at all times", which is *better than the
//!    sensors themselves* (±1.5 °C thermometer, ±3 °C disk sensor).

use crate::common::{max_abs_diff, measured, paper, rmse, smooth, verdict, write_results};
use mercury::model::MachineModel;
use mercury::presets::{self, nodes};
use mercury::solver::SolverConfig;
use mercury::trace::{run_offline, TemperatureLog, UtilizationTrace};
use reference_models::microbench::{combined_benchmark, cpu_staircase, disk_staircase};
use reference_models::{CalibrationProblem, Param, Plant};
use std::fmt::Write as _;

type Result<T = ()> = std::result::Result<T, Box<dyn std::error::Error>>;

/// Seconds per staircase run. The paper's Figures 5–6 span ~14 000 s; one
/// full staircase cycle (idle/25/idle/50/idle/75/idle/100) at 875 s per
/// plateau covers 7 000 s and carries the same information.
const STAIRCASE_S: u64 = 7_000;
const PLATEAU_S: u64 = 875;
/// The combined benchmark length (Figures 7–8 span ~5 000 s).
const COMBINED_S: u64 = 5_000;
/// Sensor-noise seed; fixed for repeatability.
const PLANT_SEED: u64 = 20061021; // ASPLOS'06 started October 21 2006

fn cpu_params() -> Vec<Param> {
    vec![
        Param::HeatK {
            a: nodes::CPU.to_string(),
            b: nodes::CPU_AIR.to_string(),
            min: 0.2,
            max: 3.0,
        },
        Param::AirSplit {
            from: nodes::PS_AIR_DOWN.to_string(),
            to_a: nodes::CPU_AIR.to_string(),
            to_b: nodes::VOID_AIR.to_string(),
            min: 0.05,
            max: 0.5,
        },
    ]
}

fn disk_params() -> Vec<Param> {
    vec![
        Param::HeatK {
            a: nodes::DISK_SHELL.to_string(),
            b: nodes::DISK_AIR.to_string(),
            min: 0.5,
            max: 5.0,
        },
        Param::HeatK {
            a: nodes::DISK_PLATTERS.to_string(),
            b: nodes::DISK_SHELL.to_string(),
            min: 0.5,
            max: 5.0,
        },
        Param::AirSplit {
            from: nodes::INLET.to_string(),
            to_a: nodes::DISK_AIR.to_string(),
            to_b: nodes::VOID_AIR.to_string(),
            min: 0.1,
            max: 0.49,
        },
    ]
}

/// Output of the two calibration runs, reused by fig7/fig8.
pub struct Calibrated {
    /// The calibrated Mercury model.
    pub model: MachineModel,
    /// (trace, plant sensor log, calibration rmse before, after) for the
    /// CPU staircase.
    pub cpu_run: (UtilizationTrace, TemperatureLog, f64, f64),
    /// Same for the disk staircase.
    pub disk_run: (UtilizationTrace, TemperatureLog, f64, f64),
}

/// Runs the full two-stage calibration of §3.1. The paper reports the
/// manual version of this took "less than an hour"; here it is a couple
/// of coordinate-descent rounds.
pub fn calibrate() -> Result<Calibrated> {
    let base = presets::validation_machine();

    // --- Stage 1: CPU staircase against the heat-sink thermometer.
    let cpu_trace = cpu_staircase(STAIRCASE_S, PLATEAU_S);
    let mut plant = Plant::pentium3_testbed(PLANT_SEED);
    let cpu_log = plant.record_sensors(&cpu_trace)?;
    let cpu_measured = cpu_log.series("cpu_air")?;
    let mut problem =
        CalibrationProblem::new(&base, &cpu_trace).target(nodes::CPU_AIR, cpu_measured);
    for p in cpu_params() {
        problem = problem.param(p);
    }
    let stage1 = problem.calibrate(6);

    // --- Stage 2: disk staircase against the in-disk sensor, starting
    // from the stage-1 model.
    let disk_trace = disk_staircase(STAIRCASE_S, PLATEAU_S);
    let mut plant = Plant::pentium3_testbed(PLANT_SEED + 1);
    let disk_log = plant.record_sensors(&disk_trace)?;
    let disk_measured = disk_log.series("disk")?;
    let mut problem = CalibrationProblem::new(&stage1.model, &disk_trace)
        .target(nodes::DISK_SHELL, disk_measured);
    for p in disk_params() {
        problem = problem.param(p);
    }
    let stage2 = problem.calibrate(6);

    Ok(Calibrated {
        model: stage2.model.clone(),
        cpu_run: (cpu_trace, cpu_log, stage1.initial_rmse, stage1.final_rmse),
        disk_run: (disk_trace, disk_log, stage2.initial_rmse, stage2.final_rmse),
    })
}

fn staircase_csv(
    trace: &UtilizationTrace,
    component: &str,
    plant_series: &[f64],
    emulated: &[f64],
) -> Result<String> {
    let util = trace.component_series(component)?;
    let mut csv = String::from("time,utilization_pct,real,emulated\n");
    for (t, ((u, p), e)) in util.iter().zip(plant_series).zip(emulated).enumerate() {
        let _ = writeln!(csv, "{t},{:.1},{p:.3},{e:.3}", u.percent());
    }
    Ok(csv)
}

fn report_match(label: &str, plant_series: &[f64], emulated: &[f64], claim_c: f64) {
    // Compare trends: 61-second centered smoothing removes the sensor
    // quantization/jitter, matching how the paper's plotted curves read.
    let sp = smooth(plant_series, 61);
    let se = smooth(emulated, 61);
    let skip = 120; // initial transient from the common 21.6 °C start
    let max_d = max_abs_diff(&sp[skip..], &se[skip..]);
    let rms = rmse(&sp[skip..], &se[skip..]);
    measured(&format!(
        "{label}: max |Δ| {max_d:.2} °C, RMSE {rms:.2} °C (61 s smoothed, first {skip} s skipped)"
    ));
    verdict(
        max_d <= claim_c + 0.5,
        &format!("{label} trend-matches within ~{claim_c} °C"),
    );
}

/// Figure 5: calibrating Mercury for CPU usage and temperature.
pub fn fig5() -> Result {
    let cal = calibrate()?;
    let (trace, plant_log, rmse_before, rmse_after) = &cal.cpu_run;
    let emulated =
        run_offline(&cal.model, trace, SolverConfig::default(), None)?.series(nodes::CPU_AIR)?;
    let plant_series = plant_log.series("cpu_air")?;
    write_results(
        "fig5_cpu_calibration.csv",
        &staircase_csv(trace, nodes::CPU, &plant_series, &emulated)?,
    )?;
    paper("after calibration Mercury tracks the measured CPU-air temperature through a utilization staircase (calibration took under an hour by hand)");
    measured(&format!(
        "coordinate descent shrank the CPU-run RMSE from {rmse_before:.2} to {rmse_after:.2} °C"
    ));
    report_match("CPU air (calibration run)", &plant_series, &emulated, 1.0);
    Ok(())
}

/// Figure 6: calibrating Mercury for disk usage and temperature.
pub fn fig6() -> Result {
    let cal = calibrate()?;
    let (trace, plant_log, rmse_before, rmse_after) = &cal.disk_run;
    let emulated =
        run_offline(&cal.model, trace, SolverConfig::default(), None)?.series(nodes::DISK_SHELL)?;
    let plant_series = plant_log.series("disk")?;
    write_results(
        "fig6_disk_calibration.csv",
        &staircase_csv(trace, nodes::DISK_PLATTERS, &plant_series, &emulated)?,
    )?;
    paper(
        "after calibration Mercury tracks the in-disk sensor through a disk utilization staircase",
    );
    measured(&format!(
        "coordinate descent shrank the disk-run RMSE from {rmse_before:.2} to {rmse_after:.2} °C"
    ));
    report_match("disk (calibration run)", &plant_series, &emulated, 1.0);
    Ok(())
}

fn combined_runs() -> Result<(UtilizationTrace, TemperatureLog, TemperatureLog)> {
    let cal = calibrate()?;
    let trace = combined_benchmark(COMBINED_S, 7);
    let mut plant = Plant::pentium3_testbed(PLANT_SEED + 2);
    let plant_log = plant.record_sensors(&trace)?;
    let mercury_log = run_offline(&cal.model, &trace, SolverConfig::default(), None)?;
    Ok((trace, plant_log, mercury_log))
}

/// Figure 7: real-system CPU-air validation on the combined benchmark —
/// **no inputs adjusted** after the calibration phase.
pub fn fig7() -> Result {
    let (trace, plant_log, mercury_log) = combined_runs()?;
    let plant_series = plant_log.series("cpu_air")?;
    let emulated = mercury_log.series(nodes::CPU_AIR)?;
    write_results(
        "fig7_cpu_validation.csv",
        &staircase_csv(&trace, nodes::CPU, &plant_series, &emulated)?,
    )?;
    paper("on a challenging benchmark exercising CPU and disk simultaneously, Mercury emulates CPU-air temperature within 1 °C at all times — better than the real thermometer's 1.5 °C accuracy");
    report_match("CPU air (validation run)", &plant_series, &emulated, 1.0);
    Ok(())
}

/// Figure 8: real-system disk validation on the same run.
pub fn fig8() -> Result {
    let (trace, plant_log, mercury_log) = combined_runs()?;
    let plant_series = plant_log.series("disk")?;
    let emulated = mercury_log.series(nodes::DISK_SHELL)?;
    write_results(
        "fig8_disk_validation.csv",
        &staircase_csv(&trace, nodes::DISK_PLATTERS, &plant_series, &emulated)?,
    )?;
    paper("disk temperatures on the combined benchmark also match within 1 °C — better than the in-disk sensor's 3 °C accuracy");
    report_match("disk (validation run)", &plant_series, &emulated, 1.0);
    Ok(())
}
