//! Table 1, Figure 1, Figure 4, and the §2.3 micro measurements.

use crate::common::{measured, paper, verdict, write_results};
use mercury::fiddle::FiddleScript;
use mercury::net::{Sensor, ServiceConfig, SolverService};
use mercury::presets::{self, nodes};
use mercury::solver::{Solver, SolverConfig};
use mercury::units::Seconds;
use std::fmt::Write as _;
use std::time::Instant;

type Result = std::result::Result<(), Box<dyn std::error::Error>>;

/// Prints the Table 1 model exactly as Mercury loads it.
pub fn table1() -> Result {
    let model = presets::validation_machine();
    println!(
        "machine `{}` — {} nodes, {} heat edges, {} air edges",
        model.name(),
        model.nodes().len(),
        model.heat_edges().len(),
        model.air_edges().len()
    );
    println!(
        "fan: {:.1} cfm, inlet: {}",
        model.fan().to_cfm(),
        model.inlet_temperature()
    );
    println!("\ncomponents:");
    for node in model.nodes() {
        if let Some(c) = node.as_component() {
            println!(
                "  {:14} mass {:>6.3} kg  c {:>6.0} J/(kg·K)  power {:?}  monitored={}",
                c.name, c.mass.0, c.specific_heat.0, c.power, c.monitored
            );
        }
    }
    println!("\nheat edges (k in W/K):");
    for e in model.heat_edges() {
        println!(
            "  {:14} -- {:14} k={}",
            model.node(e.a).name(),
            model.node(e.b).name(),
            e.k.0
        );
    }
    println!("\nair edges (fractions):");
    for e in model.air_edges() {
        println!(
            "  {:14} -> {:14} {}",
            model.node(e.from).name(),
            model.node(e.to).name(),
            e.fraction
        );
    }
    paper("Table 1 lists the validation server's constants");
    measured("all constants encoded and asserted by unit tests (presets module)");
    Ok(())
}

/// Dumps the three Figure 1 graphs as Graphviz dot files.
pub fn fig1() -> Result {
    let machine = presets::validation_machine();
    let cluster = presets::validation_cluster(4);
    write_results(
        "fig1a_heatflow.dot",
        &mercury_graphdl::dot::heat_flow_to_dot(&machine),
    )?;
    write_results(
        "fig1b_airflow.dot",
        &mercury_graphdl::dot::air_flow_to_dot(&machine),
    )?;
    write_results(
        "fig1c_cluster.dot",
        &mercury_graphdl::dot::cluster_to_dot(&cluster),
    )?;
    paper("Figure 1 shows the intra-machine heat-flow, intra-machine air-flow, and inter-machine air-flow graphs");
    measured("three dot files written (render with `dot -Tpng`)");
    Ok(())
}

/// Replays the Figure 4 fiddle script against a solver and records the
/// inlet/CPU response.
pub fn fig4() -> Result {
    let model = presets::validation_machine_named("machine1");
    let mut solver = Solver::new(&model, SolverConfig::default())?;
    solver.set_utilization(nodes::CPU, 0.6)?;
    let script = FiddleScript::parse(
        "#!/bin/bash\nsleep 100\nfiddle machine1 temperature inlet 30\nsleep 200\nfiddle machine1 temperature inlet 21.6\n",
    )?;
    let mut runner = script.runner();
    let mut csv = String::from("time,inlet,cpu_air,cpu\n");
    let mut inlet_during = 0.0_f64;
    let mut inlet_after = 0.0_f64;
    for t in 0..600u64 {
        runner.apply_due_to_solver(Seconds(t as f64), &mut solver)?;
        solver.step();
        let inlet = solver.temperature(nodes::INLET)?.0;
        let cpu_air = solver.temperature(nodes::CPU_AIR)?.0;
        let cpu = solver.temperature(nodes::CPU)?.0;
        let _ = writeln!(csv, "{t},{inlet:.3},{cpu_air:.3},{cpu:.3}");
        if t == 250 {
            inlet_during = inlet;
        }
        if t == 550 {
            inlet_after = inlet;
        }
    }
    write_results("fig4_fiddle.csv", &csv)?;
    paper("the script raises machine1's inlet to 30 °C at t=100 s and restores 21.6 °C at t=300 s");
    measured(&format!(
        "inlet at t=250 s: {inlet_during:.1} °C; at t=550 s: {inlet_after:.1} °C"
    ));
    verdict(
        (inlet_during - 30.0).abs() < 1e-6 && (inlet_after - 21.6).abs() < 1e-6,
        "fiddle events land at the scripted times",
    );
    Ok(())
}

/// The §2.3 micro numbers: solver iteration cost (paper ≈ 100 µs) and
/// `readsensor` latency (paper ≈ 300 µs, vs 500 µs for the real SCSI
/// in-disk sensor).
pub fn micro() -> Result {
    // Solver iteration cost over the Table 1 graphs.
    let model = presets::validation_machine();
    let mut solver = Solver::new(&model, SolverConfig::default())?;
    solver.set_utilization(nodes::CPU, 0.7)?;
    solver.set_utilization(nodes::DISK_PLATTERS, 0.4)?;
    solver.step_for(100); // warm up
    let iters = 20_000;
    let start = Instant::now();
    solver.step_for(iters);
    let per_iter = start.elapsed().as_secs_f64() / iters as f64;

    // readsensor over UDP loopback.
    let service = SolverService::spawn_machine(&model, ServiceConfig::fast())?;
    let sensor = Sensor::open(service.local_addr(), "", nodes::DISK_SHELL)?;
    let reads = 2_000;
    let start = Instant::now();
    for _ in 0..reads {
        sensor.read()?;
    }
    let per_read = start.elapsed().as_secs_f64() / reads as f64;
    sensor.close();
    service.shutdown();

    paper("solver ≈ 100 µs per iteration; readsensor ≈ 300 µs (real SCSI sensor: 500 µs)");
    measured(&format!(
        "solver {:.1} µs/iteration; readsensor {:.1} µs over UDP loopback",
        per_iter * 1e6,
        per_read * 1e6
    ));
    verdict(
        per_iter * 1e6 < 500.0,
        "solver iteration is in the paper's order of magnitude",
    );
    verdict(
        per_read * 1e6 < 1_000.0,
        "sensor reads beat the real in-disk sensor's 500 µs class",
    );
    Ok(())
}
