//! The emergency scenario harness: a grid of thermal emergencies ×
//! policies, every policy expressed as a declarative [`PolicySpec`] run
//! through the interpreter (the four built-ins plus TOML-only specs
//! with no Rust struct behind them).
//!
//! Each cell runs the §5 cluster (4 machines, diurnal trace) under one
//! emergency and one policy and scores it on what the paper cares
//! about: requests dropped, time spent above `T_h`, response time, and
//! servers lost to red-line shutdowns. The league table lands in
//! `results/scenarios.csv` and on stdout, ranked within each scenario.
//!
//! ```text
//! experiments scenarios                 # the full grid
//! experiments scenarios --fast          # one emergency, short trace (CI)
//! experiments scenarios --policy my.toml  # add a spec from disk
//! experiments scenarios --fast --trace --scenario cooling_failure_fast
//!                                       # causal tracing + flight recorder:
//!                                       # incident bundles -> results/incidents/
//! ```

use crate::common::{measured, paper, results_dir, verdict, write_results};
use crate::freon_exp;
use cluster_sim::{ClusterSim, ServerConfig};
use freon::policy::SpecPolicy;
use freon::{Experiment, ExperimentConfig, ExperimentLog, HistoryConfig, PolicySpec};
use mercury::fiddle::FiddleScript;
use mercury::model::NodeSpec;
use telemetry::tsdb::Tsdb;
use telemetry::{FlightRecorder, RecorderConfig, Tracer};
use workload_gen::{DiurnalProfile, RequestMix, WorkloadGenerator, WorkloadTrace};

type Result<T = ()> = std::result::Result<T, Box<dyn std::error::Error>>;

/// Machines in the scenario cluster (the paper's §5 setup).
const SERVERS: usize = 4;

/// One thermal emergency, as a fiddle script over the 4-machine room.
#[derive(Clone, Copy)]
struct Scenario {
    name: &'static str,
    what: &'static str,
    script: &'static str,
}

/// The emergency grid. Inlets start at Table 1's 21.6 °C.
const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "hot_spot",
        what: "one machine's inlet jumps to 38.6 °C at 480 s (fig. 11's worse emergency, alone)",
        script: "sleep 480\nfiddle machine1 temperature inlet 38.6\n",
    },
    Scenario {
        name: "rack_surge",
        what:
            "transient rack-wide surge: every inlet at 39.5 °C for the 700 s spanning the load peak",
        script: "sleep 900\n\
                 fiddle machine1 temperature inlet 39.5\n\
                 fiddle machine2 temperature inlet 39.5\n\
                 fiddle machine3 temperature inlet 39.5\n\
                 fiddle machine4 temperature inlet 39.5\n\
                 sleep 700\n\
                 fiddle machine1 temperature inlet 21.6\n\
                 fiddle machine2 temperature inlet 21.6\n\
                 fiddle machine3 temperature inlet 21.6\n\
                 fiddle machine4 temperature inlet 21.6\n",
    },
    Scenario {
        name: "cooling_failure",
        what: "CRAC failure at 300 s: all inlets to 36 °C while load is still climbing",
        script: "sleep 300\n\
                 fiddle machine1 temperature inlet 36.0\n\
                 fiddle machine2 temperature inlet 36.0\n\
                 fiddle machine3 temperature inlet 36.0\n\
                 fiddle machine4 temperature inlet 36.0\n",
    },
    Scenario {
        name: "runaway",
        what: "slow thermal runaway: machine2's inlet creeps +3 °C every 300 s up to 37.6 °C",
        script: "sleep 300\nfiddle machine2 temperature inlet 25.6\n\
                 sleep 300\nfiddle machine2 temperature inlet 28.6\n\
                 sleep 300\nfiddle machine2 temperature inlet 31.6\n\
                 sleep 300\nfiddle machine2 temperature inlet 34.6\n\
                 sleep 300\nfiddle machine2 temperature inlet 37.6\n",
    },
];

/// The `--fast` smoke scenario: the hot spot compressed so thresholds
/// are actually crossed within a short trace (CI runs this).
const FAST_SCENARIO: Scenario = Scenario {
    name: "hot_spot_fast",
    what: "compressed hot spot: machine1's inlet jumps to 40 °C at 60 s",
    script: "sleep 60\nfiddle machine1 temperature inlet 40.0\n",
};

/// A compressed cooling failure for the trace-e2e CI step: every inlet
/// jumps at 60 s, hot enough that red lines are crossed well inside a
/// short trace, so the flight recorder has incidents to bundle.
const FAST_COOLING: Scenario = Scenario {
    name: "cooling_failure_fast",
    what: "compressed CRAC failure: every inlet jumps to 40 °C at 60 s",
    script: "sleep 60\n\
             fiddle machine1 temperature inlet 40.0\n\
             fiddle machine2 temperature inlet 40.0\n\
             fiddle machine3 temperature inlet 40.0\n\
             fiddle machine4 temperature inlet 40.0\n",
};

/// TOML-only policies shipped with the freon crate (no Rust structs).
const SPEC_ONLY: &[&str] = &[
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../freon/policies/load_shed.toml"
    ),
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../freon/policies/fan_boost.toml"
    ),
];

/// One grid cell's score.
struct Cell {
    scenario: &'static str,
    policy: String,
    offered: u64,
    dropped: u64,
    drop_pct: f64,
    seconds_above: u64,
    response_ms: f64,
    shutdowns: usize,
}

fn trace(duration: u64) -> WorkloadTrace {
    let mix = RequestMix::paper();
    let peak = mix.rps_for_cpu_utilization(0.7, SERVERS, 1000.0);
    let profile = DiurnalProfile::new(duration as f64, peak * 0.15, peak)
        .with_peak_at(0.70)
        .with_plateau(0.30);
    WorkloadGenerator::new(profile, mix, freon_exp::SEED).generate(duration)
}

/// Tracing gear for one cell: span tracer, flight recorder with probes
/// matching the machine's component order, and the bundle directory.
fn trace_setup(model: &mercury::model::ClusterModel) -> Result<(Tracer, FlightRecorder)> {
    let probes: Vec<String> = model.machines()[0]
        .nodes()
        .iter()
        .filter_map(|node| match node {
            NodeSpec::Component(c) => Some(c.name.clone()),
            NodeSpec::Air(_) => None,
        })
        .collect();
    let recorder = FlightRecorder::new(RecorderConfig {
        probes,
        // Red-line incidents from the policy are the main trigger; the
        // band sits just above the paper's CPU red line so the recorder
        // also fires on unmanaged runaway.
        band_high_c: 70.0,
        // A fiddled inlet jumps instantaneously; don't let that mask
        // the incident itself.
        max_rate_c_per_s: 25.0,
        ..RecorderConfig::default()
    });
    Ok((
        Tracer::new(telemetry::trace::DEFAULT_SPAN_CAPACITY),
        recorder,
    ))
}

fn run_cell(
    scenario: &Scenario,
    spec: &PolicySpec,
    trace: &WorkloadTrace,
    duration: u64,
    with_trace: bool,
) -> Result<Cell> {
    let mut policy = SpecPolicy::new(spec.clone(), SERVERS)?;
    let model = mercury::presets::freon_cluster(SERVERS);
    let sim = ClusterSim::homogeneous(SERVERS, ServerConfig::default());
    let script = FiddleScript::parse(scenario.script)?;
    let (tracer, recorder, incident_dir) = if with_trace {
        let (tracer, recorder) = trace_setup(&model)?;
        (tracer, recorder, Some(results_dir()?.join("incidents")))
    } else {
        (Tracer::default(), FlightRecorder::disabled(), None)
    };
    // Traced cells also keep embedded history: the trend detectors can
    // then arm the flight recorder on a developing ramp, and the
    // per-machine temperature curves land as a downsampled report.
    let history = with_trace.then(|| Tsdb::shared(Default::default()));
    let config = ExperimentConfig {
        duration_s: duration,
        tracer,
        recorder,
        incident_dir,
        history: history.clone().map(HistoryConfig::new),
        ..Default::default()
    };
    let log = Experiment::new(&model, sim, trace, Some(&script), config)?.run(&mut policy)?;
    if let Some(tsdb) = &history {
        write_series_report(scenario.name, &spec.name, tsdb, duration)?;
    }
    // Time above T_h is judged against the cpu high-water mark the spec
    // monitors (67 °C for every shipped policy), summed over servers.
    let t_h = spec
        .thresholds
        .iter()
        .find(|t| t.component == "cpu")
        .map_or(67.0, |t| t.high);
    Ok(Cell {
        scenario: scenario.name,
        policy: spec.name.clone(),
        offered: log.total_offered(),
        dropped: log.total_dropped(),
        drop_pct: log.drop_rate() * 100.0,
        seconds_above: seconds_above_all(&log, t_h),
        response_ms: log.mean_response_time_s() * 1000.0,
        shutdowns: policy.incidents().len(),
    })
}

fn seconds_above_all(log: &ExperimentLog, t_h: f64) -> u64 {
    (0..SERVERS).map(|i| log.seconds_above(i, t_h)).sum()
}

/// Writes one traced cell's per-machine CPU temperature history,
/// downsampled to ~100 buckets, to
/// `results/series/<scenario>__<policy>.csv`.
fn write_series_report(scenario: &str, policy: &str, tsdb: &Tsdb, duration: u64) -> Result {
    let dir = results_dir()?.join("series");
    std::fs::create_dir_all(&dir)?;
    let step = (duration / 100).max(1);
    let mut csv = String::from("series,t_s,min_c,mean_c,max_c,samples\n");
    let mut names = tsdb.match_names("temp/*/cpu");
    names.sort();
    for name in names {
        for b in tsdb.query_downsampled(&name, 0, duration, step) {
            csv.push_str(&format!(
                "{},{},{:.3},{:.3},{:.3},{}\n",
                name, b.t, b.min, b.mean, b.max, b.count
            ));
        }
    }
    std::fs::write(dir.join(format!("{scenario}__{policy}.csv")), csv)?;
    Ok(())
}

/// Runs the grid. `--fast` shrinks it to one emergency and a short
/// trace (the CI smoke); repeatable `--policy <file.toml>` adds specs
/// from disk on top of the shipped ones; `--scenario <name>` narrows
/// the grid to one emergency (fast variants included); `--trace` turns
/// on span tracing and the thermal flight recorder, landing incident
/// bundles under `results/incidents/`.
pub fn scenarios(args: &[String]) -> Result {
    let mut fast = false;
    let mut with_trace = false;
    let mut only: Option<String> = None;
    let mut extra_paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--trace" => with_trace = true,
            "--scenario" => only = Some(it.next().ok_or("--scenario needs a name")?.clone()),
            "--policy" => extra_paths.push(
                it.next()
                    .ok_or("--policy needs a path to a TOML file")?
                    .clone(),
            ),
            other => return Err(format!("unknown scenarios flag `{other}`").into()),
        }
    }

    let mut specs: Vec<PolicySpec> = ["traditional", "freon", "freon-ec", "local-dvfs"]
        .iter()
        .map(|name| PolicySpec::builtin(name).expect("builtin specs parse"))
        .collect();
    for path in SPEC_ONLY
        .iter()
        .copied()
        .map(str::to_string)
        .chain(extra_paths)
    {
        let spec = PolicySpec::from_toml_file(std::path::Path::new(&path))?;
        spec.validate()
            .map_err(|e| format!("policy file {path}: {e}"))?;
        specs.push(spec);
    }

    let duration = if fast { 1200 } else { freon_exp::DURATION_S };
    let fast_grid = [FAST_SCENARIO];
    let named_grid;
    let grid: &[Scenario] = match only {
        Some(name) => {
            let all = SCENARIOS
                .iter()
                .chain([&FAST_SCENARIO, &FAST_COOLING])
                .find(|s| s.name == name)
                .ok_or_else(|| format!("no scenario named `{name}`"))?;
            named_grid = [*all];
            &named_grid
        }
        None if fast => &fast_grid,
        None => SCENARIOS,
    };
    let trace = trace(duration);

    let mut cells: Vec<Cell> = Vec::new();
    for scenario in grid {
        for spec in &specs {
            cells.push(run_cell(scenario, spec, &trace, duration, with_trace)?);
        }
    }

    let mut csv = String::from(
        "scenario,policy,offered,dropped,drop_rate_pct,seconds_above_th,mean_response_ms,shutdown_incidents\n",
    );
    for c in &cells {
        csv.push_str(&format!(
            "{},{},{},{},{:.2},{},{:.1},{}\n",
            c.scenario,
            c.policy,
            c.offered,
            c.dropped,
            c.drop_pct,
            c.seconds_above,
            c.response_ms,
            c.shutdowns
        ));
    }
    write_results("scenarios.csv", &csv)?;

    paper(
        "Freon's thesis: managing emergencies through load distribution beats \
         turning servers off — fewer (ideally zero) drops at comparable heat exposure",
    );
    for scenario in grid {
        println!("\nscenario {} — {}", scenario.name, scenario.what);
        println!(
            "  {:<12} {:>9} {:>8} {:>6} {:>7} {:>8} {:>9}",
            "policy", "offered", "dropped", "drop%", "s>T_h", "resp_ms", "shutdowns"
        );
        let mut ranked: Vec<&Cell> = cells
            .iter()
            .filter(|c| c.scenario == scenario.name)
            .collect();
        ranked.sort_by(|a, b| {
            a.drop_pct
                .total_cmp(&b.drop_pct)
                .then(a.seconds_above.cmp(&b.seconds_above))
                .then(a.response_ms.total_cmp(&b.response_ms))
        });
        for c in ranked {
            println!(
                "  {:<12} {:>9} {:>8} {:>6.2} {:>7} {:>8.1} {:>9}",
                c.policy,
                c.offered,
                c.dropped,
                c.drop_pct,
                c.seconds_above,
                c.response_ms,
                c.shutdowns
            );
        }
    }
    println!();

    // Cross-grid verdicts. The paper's thesis is about *localized*
    // emergencies (a hot spot, not a failed CRAC): there Freon must
    // serve the whole trace. The rack-wide scenarios are deliberate
    // counter-cases — with no cool server to shift load onto, remote
    // throttling can only shed or cascade.
    let localized =
        |c: &&Cell| !c.scenario.starts_with("cooling_failure") && c.scenario != "rack_surge";
    let freon_localized_drops: u64 = cells
        .iter()
        .filter(|c| c.policy == "freon")
        .filter(localized)
        .map(|c| c.dropped)
        .sum();
    let traditional_shutdowns: usize = cells
        .iter()
        .filter(|c| c.policy == "traditional")
        .map(|c| c.shutdowns)
        .sum();
    measured(&format!(
        "grid: {} scenarios x {} policies -> results/scenarios.csv",
        grid.len(),
        specs.len()
    ));
    verdict(
        freon_localized_drops == 0,
        "freon serves the entire trace in every localized emergency",
    );
    verdict(
        traditional_shutdowns > 0,
        "the traditional baseline loses servers to red-lining somewhere in the grid",
    );
    verdict(
        cells
            .iter()
            .any(|c| c.policy == "load-shed" && c.shutdowns == 0)
            && cells.iter().any(|c| c.policy == "fan-boost"),
        "TOML-only policies (no Rust struct) ran through the same interpreter",
    );
    if with_trace {
        measured(&format!(
            "history: {} per-cell temperature report(s) under {}",
            grid.len() * specs.len(),
            results_dir()?.join("series").display()
        ));
        check_bundles(grid)?;
    }
    Ok(())
}

/// Parses an incident bundle file name,
/// `incident_t{T}_m{M}_{kind}.json`, into `(T, kind)`.
fn parse_bundle_name(name: &str) -> Option<(u64, String)> {
    let rest = name.strip_prefix("incident_t")?.strip_suffix(".json")?;
    let (t, rest) = rest.split_once("_m")?;
    let (_machine, kind) = rest.split_once('_')?;
    Some((t.parse().ok()?, kind.to_string()))
}

/// Post-run check for `--trace`: at least one incident bundle landed in
/// `results/incidents/`, its spans extract, and the causal chain closes
/// (a `mediator.dispatch` span whose parent is a `tempd.observe` span).
/// When the whole grid is a cooling failure, additionally verify the
/// trend detectors got there first: the earliest `trend_*` bundle must
/// predate the earliest reactive `red_line` bundle.
fn check_bundles(grid: &[Scenario]) -> Result {
    let dir = results_dir()?.join("incidents");
    let mut bundles: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .map(|it| {
            it.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "json"))
                .collect()
        })
        .unwrap_or_default();
    bundles.sort();
    measured(&format!(
        "flight recorder: {} incident bundle(s) under {}",
        bundles.len(),
        dir.display()
    ));
    verdict(!bundles.is_empty(), "tracing produced incident bundles");
    let mut chain_closed = false;
    for path in &bundles {
        let text = std::fs::read_to_string(path)?;
        let spans = telemetry::recorder::extract_bundle_spans(&text)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let observe_ids: std::collections::HashSet<u64> = spans
            .iter()
            .filter(|s| s.name == "tempd.observe")
            .map(|s| s.id)
            .collect();
        if spans
            .iter()
            .any(|s| s.name == "mediator.dispatch" && observe_ids.contains(&s.parent))
        {
            chain_closed = true;
            break;
        }
    }
    verdict(
        chain_closed,
        "a bundle's actuation span links back to the tempd observation that caused it",
    );
    if grid.iter().all(|s| s.name.starts_with("cooling_failure")) {
        let mut first_trend: Option<u64> = None;
        let mut first_red: Option<u64> = None;
        for path in &bundles {
            let name = path.file_name().unwrap_or_default().to_string_lossy();
            if let Some((t, kind)) = parse_bundle_name(&name) {
                if kind.starts_with("trend_") {
                    first_trend = Some(first_trend.map_or(t, |x| x.min(t)));
                } else if kind == "red_line" {
                    first_red = Some(first_red.map_or(t, |x| x.min(t)));
                }
            }
        }
        measured(&format!(
            "trend lead: first trend bundle at {:?} s, first red-line bundle at {:?} s",
            first_trend, first_red
        ));
        verdict(
            matches!((first_trend, first_red), (Some(a), Some(b)) if a < b),
            "the trend detectors captured the developing emergency before the red line",
        );
    }
    Ok(())
}
