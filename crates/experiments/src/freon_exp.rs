//! Figures 11–12 and the §5.1 drop comparison: Freon, Freon-EC, and the
//! traditional baseline under two simultaneous inlet emergencies.

use crate::common::{measured, paper, verdict, write_results};
use cluster_sim::{ClusterSim, ServerConfig};
use freon::{
    EcConfig, Experiment, ExperimentConfig, ExperimentLog, FreonConfig, FreonEcPolicy, FreonPolicy,
    ThermalPolicy, TraditionalPolicy,
};
use mercury::fiddle::FiddleScript;
use mercury::model::ClusterModel;
use workload_gen::{DiurnalProfile, RequestMix, WorkloadGenerator, WorkloadTrace};

type Result<T = ()> = std::result::Result<T, Box<dyn std::error::Error>>;

/// Run length of the §5 experiments (the paper's figures span 2 000 s).
pub const DURATION_S: u64 = 2000;
/// Trace seed.
pub const SEED: u64 = 42;

/// The paper's synthetic trace: diurnal valley→peak→valley with the peak
/// sized at 70% utilization across 4 servers and 30% CGI requests.
pub fn paper_trace() -> WorkloadTrace {
    let mix = RequestMix::paper();
    let peak = mix.rps_for_cpu_utilization(0.7, 4, 1000.0);
    let profile = DiurnalProfile::new(DURATION_S as f64, peak * 0.15, peak)
        .with_peak_at(0.70)
        .with_plateau(0.30);
    WorkloadGenerator::new(profile, mix, SEED).generate(DURATION_S)
}

/// The §5 emergencies: "At 480 seconds, fiddle raised the inlet
/// temperature of machine 1 to 38.6 °C and machine 3 to 35.6 °C. (The
/// emergencies are set to last the entire experiment.)"
pub fn emergencies() -> FiddleScript {
    FiddleScript::parse(
        "#!/bin/bash\n\
         sleep 480\n\
         fiddle machine1 temperature inlet 38.6\n\
         fiddle machine3 temperature inlet 35.6\n",
    )
    .expect("the emergency script is well-formed")
}

/// Shared setup: the 4-machine Freon cluster model and a matching
/// simulation.
pub fn setup() -> (ClusterModel, ClusterSim) {
    let model = mercury::presets::freon_cluster(4);
    let sim = ClusterSim::homogeneous(4, ServerConfig::default());
    (model, sim)
}

/// Runs the §5 scenario under any policy.
pub fn run_policy(policy: &mut dyn ThermalPolicy) -> Result<ExperimentLog> {
    run_policy_with(policy, ServerConfig::default())
}

/// As [`run_policy`], with a custom per-server configuration (used by the
/// ablations, e.g. to lengthen boot times).
pub fn run_policy_with(
    policy: &mut dyn ThermalPolicy,
    server_config: ServerConfig,
) -> Result<ExperimentLog> {
    let model = mercury::presets::freon_cluster(4);
    let sim = ClusterSim::homogeneous(4, server_config);
    let trace = paper_trace();
    let script = emergencies();
    let config = ExperimentConfig {
        duration_s: DURATION_S,
        ..Default::default()
    };
    let log = Experiment::new(&model, sim, &trace, Some(&script), config)?.run(policy)?;
    Ok(log)
}

fn log_to_csv(log: &ExperimentLog) -> Result<String> {
    let mut out = Vec::new();
    log.write_csv(&mut out)?;
    Ok(String::from_utf8(out)?)
}

/// Figure 11: the base Freon policy.
pub fn fig11() -> Result {
    let cfg = FreonConfig::paper();
    let mut policy = FreonPolicy::new(cfg.clone(), 4);
    let log = run_policy(&mut policy)?;
    write_results("fig11_freon.csv", &log_to_csv(&log)?)?;

    let th = cfg
        .thresholds_for("cpu")
        .expect("cpu thresholds exist")
        .high;
    let tr = cfg
        .thresholds_for("cpu")
        .expect("cpu thresholds exist")
        .red_line;
    let crossings: Vec<Option<u64>> = (0..4).map(|i| log.first_crossing(i, th)).collect();
    let peaks: Vec<f64> = (0..4).map(|i| log.max_cpu_temp(i)).collect();

    paper("CPUs heat normally; after the 480 s emergencies machine1 crosses T_h=67 °C (paper: ~1200 s) and machine3 later (~1380 s); Freon holds both just under T_h with load-distribution adjustments and serves the entire workload without drops");
    measured(&format!(
        "T_h crossings: m1 {:?}, m2 {:?}, m3 {:?}, m4 {:?} (s)",
        crossings[0], crossings[1], crossings[2], crossings[3]
    ));
    measured(&format!(
        "peak CPU temps: m1 {:.1}, m2 {:.1}, m3 {:.1}, m4 {:.1} °C (red line {tr})",
        peaks[0], peaks[1], peaks[2], peaks[3]
    ));
    measured(&format!(
        "adjustments: {}, red-line shutdowns: {}, dropped: {}/{} ({:.2}%)",
        policy.adjustments(),
        policy.red_line_shutdowns(),
        log.total_dropped(),
        log.total_offered(),
        log.drop_rate() * 100.0
    ));
    verdict(
        crossings[0].is_some() && crossings[2].is_some(),
        "both emergency machines cross T_h",
    );
    verdict(
        crossings[0].unwrap_or(u64::MAX) < crossings[2].unwrap_or(u64::MAX),
        "machine1 (hotter inlet) crosses before machine3",
    );
    verdict(
        crossings[1].is_none() && crossings[3].is_none(),
        "unaffected machines stay below T_h",
    );
    verdict(
        peaks.iter().all(|&p| p < tr),
        "no CPU ever reaches the red line under Freon",
    );
    verdict(policy.red_line_shutdowns() == 0, "no server was turned off");
    verdict(
        log.total_dropped() == 0,
        "the entire workload was served (0 drops)",
    );
    Ok(())
}

/// Figure 12: Freon-EC — energy conservation plus thermal management.
pub fn fig12() -> Result {
    let cfg = FreonConfig::paper();
    let ec = EcConfig::paper_four_servers();
    let mut policy = FreonEcPolicy::new(cfg, ec);
    let log = run_policy(&mut policy)?;
    write_results("fig12_freon_ec.csv", &log_to_csv(&log)?)?;

    let min_active = log
        .rows()
        .iter()
        .map(|r| r.active_servers)
        .min()
        .unwrap_or(0);
    let max_active = log
        .rows()
        .iter()
        .map(|r| r.active_servers)
        .max()
        .unwrap_or(0);
    let active_at_valley = log
        .rows()
        .iter()
        .take(300)
        .map(|r| r.active_servers)
        .min()
        .unwrap_or(0);

    paper("during light load Freon-EC shrinks the active configuration to a single server (at ~60 s); off machines cool ~10 °C; as load rises the configuration grows back to 4 without dropping requests; the peak emergencies are handled by the base policy");
    measured(&format!(
        "active servers: min {min_active}, max {max_active}; min over the first 300 s: {active_at_valley}; mean {:.2}",
        log.mean_active_servers()
    ));
    measured(&format!(
        "power-offs {} / power-ons {}; adjustments {}; dropped {}/{} ({:.2}%)",
        policy.power_offs(),
        policy.power_ons(),
        policy.adjustments(),
        log.total_dropped(),
        log.total_offered(),
        log.drop_rate() * 100.0
    ));
    // Cooling while off: compare machine4's temperature right before the
    // valley shutdown with its minimum while off.
    let m4_at_60 = log
        .rows()
        .get(60)
        .map(|r| r.cpu_temp[3])
        .unwrap_or(f64::NAN);
    let m4_min: f64 = log
        .rows()
        .iter()
        .take(600)
        .map(|r| r.cpu_temp[3])
        .fold(f64::INFINITY, f64::min);
    measured(&format!(
        "machine4 CPU: {m4_at_60:.1} °C at the shutdown, cooled to {m4_min:.1} °C while off (Δ {:.1})",
        m4_at_60 - m4_min
    ));
    verdict(
        active_at_valley <= 1,
        "the valley shrinks the configuration to one server",
    );
    verdict(
        max_active == 4,
        "the peak grows the configuration back to four",
    );
    verdict(
        log.drop_rate() < 0.005,
        "energy conservation cost (almost) no requests",
    );
    Ok(())
}

/// §5.1's comparison: Freon vs the traditional red-line approach.
pub fn table_drops() -> Result {
    let mut freon = FreonPolicy::new(FreonConfig::paper(), 4);
    let freon_log = run_policy(&mut freon)?;

    let mut traditional = TraditionalPolicy::new(FreonConfig::paper(), 4);
    let traditional_log = run_policy(&mut traditional)?;
    write_results(
        "table_drops_traditional.csv",
        &log_to_csv(&traditional_log)?,
    )?;

    let mut csv = String::from("policy,offered,dropped,drop_rate_pct,mean_response_ms\n");
    for log in [&freon_log, &traditional_log] {
        csv.push_str(&format!(
            "{},{},{},{:.2},{:.1}\n",
            log.policy,
            log.total_offered(),
            log.total_dropped(),
            log.drop_rate() * 100.0,
            log.mean_response_time_s() * 1000.0
        ));
    }
    write_results("table_drops.csv", &csv)?;

    paper("the traditional system turned machine1 off at 1440 s and machine3 just before 1500 s and dropped 14% of the requests; Freon dropped none");
    measured(&format!(
        "traditional shutdowns at {:?}; drop rates — freon {:.2}%, traditional {:.2}%",
        traditional.shutdown_times(),
        freon_log.drop_rate() * 100.0,
        traditional_log.drop_rate() * 100.0
    ));
    measured(&format!(
        "mean response times — freon {:.0} ms, traditional {:.0} ms",
        freon_log.mean_response_time_s() * 1000.0,
        traditional_log.mean_response_time_s() * 1000.0
    ));
    verdict(freon_log.total_dropped() == 0, "Freon serves everything");
    let t_rate = traditional_log.drop_rate();
    verdict(
        (0.05..0.30).contains(&t_rate),
        "the traditional baseline loses a substantial fraction of the trace (paper: 14%)",
    );
    verdict(
        traditional
            .shutdown_times()
            .iter()
            .filter(|t| t.is_some())
            .count()
            == 2,
        "exactly the two emergency machines red-line under the traditional policy",
    );
    Ok(())
}
