//! Ablations of design choices called out in DESIGN.md.

use crate::common::{measured, paper, verdict, write_results};
use crate::freon_exp::run_policy;
use cluster_sim::ClusterSim;
use freon::{Admd, EcConfig, FreonConfig, FreonEcPolicy, ServerSnapshot, Tempd, ThermalPolicy};
use mercury::presets::{self, nodes};
use mercury::solver::{Solver, SolverConfig};

use std::fmt::Write as _;

type Result<T = ()> = std::result::Result<T, Box<dyn std::error::Error>>;

/// A bang-bang variant of Freon: above `T_h` the hot server's share is
/// simply halved each period, no controller. Used to show what the PD
/// controller buys.
#[derive(Debug)]
struct BangBangPolicy {
    config: FreonConfig,
    tempds: Vec<Tempd>,
    admd: Admd,
    restricted: Vec<bool>,
}

impl BangBangPolicy {
    fn new(config: FreonConfig, n: usize) -> Self {
        let tempds = (0..n).map(|_| Tempd::new(&config)).collect();
        BangBangPolicy {
            config,
            tempds,
            admd: Admd::new(n),
            restricted: vec![false; n],
        }
    }
}

impl ThermalPolicy for BangBangPolicy {
    fn name(&self) -> &'static str {
        "bang-bang"
    }

    fn control(&mut self, now_s: u64, snapshots: &[ServerSnapshot], sim: &mut ClusterSim) {
        if now_s > 0 && now_s.is_multiple_of(self.config.sample_period_s) {
            self.admd.sample_connections(sim);
        }
        if now_s == 0 || !now_s.is_multiple_of(self.config.monitor_period_s) {
            return;
        }
        for (i, snapshot) in snapshots.iter().enumerate() {
            if !snapshot.powered {
                continue;
            }
            let report = self.tempds[i].observe(&snapshot.temps, &self.config);
            if report.output.is_some() {
                // Fixed halving regardless of how hot the server runs.
                self.admd.rescale_weight(sim, i, 1.0);
                if self.config.connection_caps {
                    self.admd.apply_connection_cap(sim, i);
                }
                self.restricted[i] = true;
            } else if report.all_below_low && self.restricted[i] {
                self.admd.release(sim, i);
                self.restricted[i] = false;
            }
        }
        self.admd.end_interval();
    }
}

/// A Freon variant with custom gains, for the P-only comparison.
#[derive(Debug)]
struct GainPolicy {
    inner: freon::FreonPolicy,
}

impl ThermalPolicy for GainPolicy {
    fn name(&self) -> &'static str {
        "p-only"
    }
    fn control(&mut self, now_s: u64, snapshots: &[ServerSnapshot], sim: &mut ClusterSim) {
        self.inner.control(now_s, snapshots, sim);
    }
}

/// PD vs P-only vs bang-bang admission control under the §5 scenario.
pub fn controller() -> Result {
    // Connection caps are disabled for all three variants so the
    // controllers' weight decisions are the only lever under test.
    let pd_cfg = FreonConfig {
        connection_caps: false,
        ..FreonConfig::paper()
    };
    let p_only_cfg = FreonConfig {
        kd: 0.0,
        ..pd_cfg.clone()
    };

    let mut pd = freon::FreonPolicy::new(pd_cfg.clone(), 4);
    let pd_log = run_policy(&mut pd)?;
    let mut p_only = GainPolicy {
        inner: freon::FreonPolicy::new(p_only_cfg, 4),
    };
    let p_log = run_policy(&mut p_only)?;
    let mut bang = BangBangPolicy::new(pd_cfg.clone(), 4);
    let bang_log = run_policy(&mut bang)?;

    let th = pd_cfg
        .thresholds_for("cpu")
        .expect("cpu thresholds exist")
        .high;
    let mut csv =
        String::from("controller,drop_rate_pct,overshoot_c,seconds_above_th,mean_hot_weight\n");
    for (name, log) in [
        ("pd", &pd_log),
        ("p-only", &p_log),
        ("bang-bang", &bang_log),
    ] {
        let overshoot = (0..4)
            .map(|i| log.max_cpu_temp(i) - th)
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0);
        let above: u64 = (0..4).map(|i| log.seconds_above(i, th)).sum();
        // How hard machine1 was throttled after its emergency: the mean
        // of its LVS weight from the emergency onset onward. Lower means
        // the controller sacrificed more of a working server's capacity.
        let m1_weights: Vec<f64> = log
            .rows()
            .iter()
            .filter(|r| r.time_s >= 480)
            .map(|r| r.weight[0])
            .collect();
        let mean_weight = m1_weights.iter().sum::<f64>() / m1_weights.len().max(1) as f64;
        let _ = writeln!(
            csv,
            "{name},{:.3},{overshoot:.2},{above},{mean_weight:.3}",
            log.drop_rate() * 100.0
        );
    }
    write_results("ablation_controller.csv", &csv)?;
    paper("(design choice) the paper uses a PD controller with kp=0.1, kd=0.2; the derivative term reacts to fast-rising temperatures before they overshoot");
    measured("see ablation_controller.csv: drop rate, peak overshoot over T_h, and time spent above T_h per controller");
    verdict(
        pd_log.total_dropped() == 0,
        "the PD controller serves the full trace",
    );
    Ok(())
}

/// Freon-EC utilization-projection horizon sweep (0/1/2/4 intervals).
pub fn projection() -> Result {
    let mut csv =
        String::from("projection_intervals,drop_rate_pct,mean_active_servers,power_ons\n");
    let mut drop_rates = Vec::new();
    for horizon in [0u32, 1, 2, 4] {
        let ec = EcConfig {
            projection_intervals: horizon,
            ..EcConfig::paper_four_servers()
        };
        let mut policy = FreonEcPolicy::new(FreonConfig::paper(), ec);
        // Slow-booting servers (2.5 min) make the projection earn its
        // keep: without look-ahead, rising load outruns the boots.
        let server_config = cluster_sim::ServerConfig {
            boot_seconds: 150,
            ..Default::default()
        };
        let log = crate::freon_exp::run_policy_with(&mut policy, server_config)?;
        drop_rates.push(log.drop_rate());
        let _ = writeln!(
            csv,
            "{horizon},{:.3},{:.2},{}",
            log.drop_rate() * 100.0,
            log.mean_active_servers(),
            policy.power_ons()
        );
    }
    write_results("ablation_projection.csv", &csv)?;
    paper("(design choice) Freon-EC projects utilization two intervals ahead because booting a server 'takes quite some time'; without projection, rising load outruns the boot latency");
    measured(&format!(
        "drop rates at horizon 0/1/2/4: {:.2}% / {:.2}% / {:.2}% / {:.2}%",
        drop_rates[0] * 100.0,
        drop_rates[1] * 100.0,
        drop_rates[2] * 100.0,
        drop_rates[3] * 100.0
    ));
    verdict(
        drop_rates[2] <= drop_rates[0] + 1e-9,
        "the paper's 2-interval projection drops no more than the no-projection variant",
    );
    Ok(())
}

/// Solver stability-limit sweep: accuracy (vs a fine-grained run) against
/// sub-step cost, on the Table 1 machine.
pub fn substeps() -> Result {
    // Ground truth: very small stability limit (many sub-steps).
    let model = presets::validation_machine();
    let truth = run_step_response(&model, 0.02)?;
    let mut csv = String::from("stability_limit,substeps_per_tick,max_error_c\n");
    let mut rows = Vec::new();
    for limit in [0.05, 0.1, 0.25, 0.5, 1.0] {
        let series = run_step_response(&model, limit)?;
        let err = crate::common::max_abs_diff(&series.1, &truth.1);
        rows.push((limit, series.0, err));
        let _ = writeln!(csv, "{limit},{},{err:.4}", series.0);
    }
    write_results("ablation_substeps.csv", &csv)?;
    paper("(design choice) the solver sub-divides each 1 s tick to keep explicit Euler stable; the limit trades accuracy for per-tick cost");
    for (limit, steps, err) in &rows {
        measured(&format!(
            "limit {limit}: {steps} sub-steps/tick, max error {err:.4} °C"
        ));
    }
    verdict(
        rows.iter().all(|(_, _, err)| *err < 0.5),
        "every tested limit stays within 0.5 °C of the fine-grained run",
    );
    Ok(())
}

/// A CPU step response: utilization 0→1 at t=0 for 1 200 s, recording the
/// CPU temperature each second. Returns (substeps/tick, series).
fn run_step_response(
    model: &mercury::model::MachineModel,
    stability_limit: f64,
) -> Result<(usize, Vec<f64>)> {
    let cfg = SolverConfig {
        stability_limit,
        ..SolverConfig::default()
    };
    let mut solver = Solver::new(model, cfg)?;
    solver.set_utilization(nodes::CPU, 1.0)?;
    let substeps = solver.substeps_per_tick();
    let mut series = Vec::with_capacity(1200);
    for _ in 0..1200 {
        solver.step();
        series.push(solver.temperature(nodes::CPU)?.0);
    }
    Ok((substeps, series))
}
