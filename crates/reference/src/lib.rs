//! # reference-models — what Mercury is validated against
//!
//! The paper validates Mercury two ways (§3): against **real
//! measurements** of a Pentium III server (Figures 5–8) and against
//! **Fluent**, a commercial CFD package, in steady state (§3.2). We have
//! neither the physical server nor the commercial license, so this crate
//! builds the closest synthetic equivalents, each deliberately *not*
//! sharing Mercury's model class so the comparison stays meaningful:
//!
//! * [`plant::Plant`] — a finer-grained transient thermal model of the
//!   testbed server: more internal nodes than Mercury models (CPU die
//!   separate from heat sink, disk spindle), temperature- and
//!   flow-dependent heat-transfer coefficients, and quantized, noisy
//!   sensors with the accuracies the paper quotes (±1.5 °C digital
//!   thermometer, ±3 °C in-disk sensor). It plays the "real machine":
//!   Mercury is calibrated against its readings and then judged on an
//!   unseen benchmark.
//! * [`fluent2d::Fluent2d`] — a 2-D steady-state finite-difference
//!   conduction+advection solver over a gridded server case with CPU,
//!   disk, and power-supply blocks. It plays Fluent: hundreds of mesh
//!   cells, minutes-not-microseconds solve times, and the source of the
//!   material-to-air boundary coefficients Mercury's §3.2 calibration
//!   uses.
//! * [`microbench`] — the calibration and validation workloads: the CPU
//!   and disk utilization staircases of Figures 5–6 and the "challenging"
//!   combined benchmark of Figures 7–8.
//! * [`calibrate`] — the paper's calibration phase, automated: coordinate
//!   descent over Mercury's heat-transfer coefficients until the emulated
//!   series matches the plant's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calibrate;
pub mod fluent2d;
pub mod microbench;
pub mod plant;

pub use calibrate::{CalibrationOutcome, CalibrationProblem, Param};
pub use fluent2d::{CaseConfig, Fluent2d, SteadyState};
pub use plant::Plant;
