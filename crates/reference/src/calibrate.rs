//! The calibration phase (§3.1), automated.
//!
//! The paper tunes Mercury's heat- and air-flow constants "until the
//! emulated readings match the calibration experiment", noting it took
//! "less than an hour" by hand. This module does the same by coordinate
//! descent: each tunable heat-transfer coefficient is nudged through a
//! set of multiplicative factors, keeping whichever value minimizes the
//! RMS error between Mercury's emulated series and the measured one.
//! "Since temperature changes are second-order effects on the constants
//! in our system, the constants that result from this process may be
//! relied upon for reasonable changes in temperature (ΔT < 40 °C)" — the
//! validation experiments (Figures 7–8) check exactly that, on a workload
//! the calibration never saw.

use mercury::model::{MachineModel, NodeSpec};
use mercury::solver::SolverConfig;
use mercury::trace::{run_offline, UtilizationTrace};

/// A tunable model constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Param {
    /// The heat-transfer coefficient of one heat edge, bounded to
    /// `[min, max]` W/K.
    HeatK {
        /// One endpoint of the edge.
        a: String,
        /// The other endpoint.
        b: String,
        /// Lower bound, W/K.
        min: f64,
        /// Upper bound, W/K.
        max: f64,
    },
    /// A two-way air split leaving one region: the fraction on the
    /// `from → to_a` edge is the tuned value and the `from → to_b` edge
    /// receives the remainder, so the pair's combined fraction is
    /// preserved (air-flow fractions out of a node may not exceed 1).
    AirSplit {
        /// The upstream region.
        from: String,
        /// Edge whose fraction is tuned directly.
        to_a: String,
        /// Edge that absorbs the complement.
        to_b: String,
        /// Lower bound on the `to_a` fraction.
        min: f64,
        /// Upper bound on the `to_a` fraction.
        max: f64,
    },
}

/// What a calibration run produced.
#[derive(Debug, Clone)]
pub struct CalibrationOutcome {
    /// The calibrated model.
    pub model: MachineModel,
    /// Final parameter values, aligned with the problem's parameter list.
    pub values: Vec<f64>,
    /// RMS error of the uncalibrated model, °C.
    pub initial_rmse: f64,
    /// RMS error after calibration, °C.
    pub final_rmse: f64,
    /// Coordinate-descent rounds performed.
    pub rounds: usize,
}

/// One measured target series: a Mercury node name and the second-by-
/// second measurements it should match.
#[derive(Debug, Clone)]
pub struct Target {
    node: String,
    measured: Vec<f64>,
}

/// A calibration problem: a base model, the workload that was measured,
/// the measurements, and which constants may move.
#[derive(Debug, Clone)]
pub struct CalibrationProblem<'a> {
    base: &'a MachineModel,
    trace: &'a UtilizationTrace,
    params: Vec<Param>,
    targets: Vec<Target>,
    /// Seconds ignored at the start of the comparison (sensor warm-up).
    warmup_s: usize,
}

impl<'a> CalibrationProblem<'a> {
    /// Creates a problem over a base model and the calibration workload.
    pub fn new(base: &'a MachineModel, trace: &'a UtilizationTrace) -> Self {
        CalibrationProblem {
            base,
            trace,
            params: Vec::new(),
            targets: Vec::new(),
            warmup_s: 60,
        }
    }

    /// Adds a tunable parameter.
    pub fn param(mut self, param: Param) -> Self {
        self.params.push(param);
        self
    }

    /// Adds a measured series for a Mercury node (one value per second of
    /// the trace).
    pub fn target(mut self, node: impl Into<String>, measured: Vec<f64>) -> Self {
        self.targets.push(Target {
            node: node.into(),
            measured,
        });
        self
    }

    /// Changes the ignored warm-up prefix.
    pub fn warmup_s(mut self, seconds: usize) -> Self {
        self.warmup_s = seconds;
        self
    }

    fn current_value(&self, model: &MachineModel, param: &Param) -> f64 {
        match param {
            Param::HeatK { a, b, .. } => {
                let ia = model.node_id(a).expect("param endpoint exists");
                let ib = model.node_id(b).expect("param endpoint exists");
                model
                    .heat_edges()
                    .iter()
                    .find(|e| (e.a == ia && e.b == ib) || (e.a == ib && e.b == ia))
                    .map(|e| e.k.0)
                    .expect("param edge exists")
            }
            Param::AirSplit { from, to_a, .. } => {
                let ifrom = model.node_id(from).expect("param endpoint exists");
                let ito = model.node_id(to_a).expect("param endpoint exists");
                model
                    .air_edges()
                    .iter()
                    .find(|e| e.from == ifrom && e.to == ito)
                    .map(|e| e.fraction)
                    .expect("param air edge exists")
            }
        }
    }

    fn apply(&self, values: &[f64]) -> MachineModel {
        let overrides: Vec<(&Param, f64)> =
            self.params.iter().zip(values.iter().copied()).collect();
        rebuild_with_overrides(self.base, &overrides)
    }

    /// RMS error (°C) of a candidate model against every target.
    pub fn rmse(&self, model: &MachineModel) -> f64 {
        let log = match run_offline(model, self.trace, SolverConfig::default(), None) {
            Ok(log) => log,
            Err(_) => return f64::INFINITY,
        };
        let mut sum = 0.0;
        let mut count = 0usize;
        for target in &self.targets {
            let emulated = match log.series(&target.node) {
                Ok(series) => series,
                Err(_) => return f64::INFINITY,
            };
            for (e, m) in emulated.iter().zip(&target.measured).skip(self.warmup_s) {
                sum += (e - m) * (e - m);
                count += 1;
            }
        }
        if count == 0 {
            f64::INFINITY
        } else {
            (sum / count as f64).sqrt()
        }
    }

    /// Runs coordinate descent for at most `max_rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if a parameter references an edge that does not exist in
    /// the base model — that is a programming error in the experiment
    /// setup, not a data condition.
    pub fn calibrate(&self, max_rounds: usize) -> CalibrationOutcome {
        let mut values: Vec<f64> = self
            .params
            .iter()
            .map(|p| self.current_value(self.base, p))
            .collect();
        let initial_rmse = self.rmse(self.base);
        let mut best_rmse = initial_rmse;
        let factors = [0.6, 0.8, 0.9, 0.95, 1.05, 1.1, 1.25, 1.6];
        let mut rounds = 0usize;
        for _ in 0..max_rounds {
            rounds += 1;
            let mut improved = false;
            for i in 0..self.params.len() {
                let (lo, hi) = match &self.params[i] {
                    Param::HeatK { min, max, .. } => (*min, *max),
                    Param::AirSplit { min, max, .. } => (*min, *max),
                };
                let base_value = values[i];
                let mut best_value = base_value;
                for factor in factors {
                    let candidate = (base_value * factor).clamp(lo, hi);
                    if (candidate - best_value).abs() < 1e-12 {
                        continue;
                    }
                    let mut trial = values.clone();
                    trial[i] = candidate;
                    let rmse = self.rmse(&self.apply(&trial));
                    if rmse + 1e-4 < best_rmse {
                        best_rmse = rmse;
                        best_value = candidate;
                        improved = true;
                    }
                }
                values[i] = best_value;
            }
            if !improved {
                break;
            }
        }
        CalibrationOutcome {
            model: self.apply(&values),
            values,
            initial_rmse,
            final_rmse: best_rmse,
            rounds,
        }
    }
}

/// Rebuilds a machine model with some heat-edge coefficients and/or air
/// splits replaced.
pub fn rebuild_with_overrides(base: &MachineModel, overrides: &[(&Param, f64)]) -> MachineModel {
    let mut builder = MachineModel::builder(base.name());
    for node in base.nodes() {
        match node {
            NodeSpec::Component(c) => {
                let mut handle = builder.component(c.name.clone());
                handle
                    .mass_kg(c.mass.0)
                    .specific_heat(c.specific_heat.0)
                    .power_model(c.power.clone())
                    .monitored(c.monitored);
            }
            NodeSpec::Air(a) => {
                builder.air_with_mass(a.name.clone(), a.mass_kg, a.kind);
            }
        }
    }
    for edge in base.heat_edges() {
        let a = base.node(edge.a).name().to_string();
        let b = base.node(edge.b).name().to_string();
        let k = overrides
            .iter()
            .find(|(p, _)| match p {
                Param::HeatK { a: pa, b: pb, .. } => {
                    (pa == &a && pb == &b) || (pa == &b && pb == &a)
                }
                Param::AirSplit { .. } => false,
            })
            .map(|(_, v)| *v)
            .unwrap_or(edge.k.0);
        builder
            .heat_edge(&a, &b, k)
            .expect("edge endpoints exist in the rebuilt model");
    }
    for edge in base.air_edges() {
        let from = base.node(edge.from).name().to_string();
        let to = base.node(edge.to).name().to_string();
        let mut fraction = edge.fraction;
        for (p, v) in overrides {
            if let Param::AirSplit {
                from: pf,
                to_a,
                to_b,
                ..
            } = p
            {
                if pf == &from && to_a == &to {
                    fraction = *v;
                } else if pf == &from && to_b == &to {
                    // The complement edge keeps the pair's total.
                    let ifrom = base.node_id(pf).expect("split endpoint exists");
                    let ia = base.node_id(to_a).expect("split endpoint exists");
                    let pair_total: f64 = base
                        .air_edges()
                        .iter()
                        .filter(|e| {
                            e.from == ifrom
                                && (base.node(e.to).name() == to_a.as_str()
                                    || base.node(e.to).name() == to_b.as_str())
                        })
                        .map(|e| e.fraction)
                        .sum();
                    let _ = ia;
                    fraction = (pair_total - *v).max(1e-6);
                }
            }
        }
        builder
            .air_edge(&from, &to, fraction)
            .expect("air endpoints exist");
    }
    builder.fan_cfm(base.fan().to_cfm());
    builder.inlet_temperature_c(base.inlet_temperature().0);
    builder.build().expect("a valid model rebuilds validly")
}

/// Backwards-compatible alias for heat-only overrides.
pub fn rebuild_with_heat_overrides(
    base: &MachineModel,
    overrides: &[(&Param, f64)],
) -> MachineModel {
    rebuild_with_overrides(base, overrides)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercury::presets::{self, nodes};

    #[test]
    fn rebuild_round_trips_without_overrides() {
        let base = presets::validation_machine();
        let copy = rebuild_with_heat_overrides(&base, &[]);
        assert_eq!(base, copy);
    }

    #[test]
    fn rebuild_applies_overrides_symmetrically() {
        let base = presets::validation_machine();
        let param = Param::HeatK {
            a: nodes::CPU_AIR.to_string(), // reversed endpoint order
            b: nodes::CPU.to_string(),
            min: 0.1,
            max: 5.0,
        };
        let copy = rebuild_with_heat_overrides(&base, &[(&param, 1.23)]);
        let ia = copy.node_id(nodes::CPU).unwrap();
        let k = copy
            .heat_edges()
            .iter()
            .find(|e| e.a == ia || e.b == ia)
            .map(|e| e.k.0)
            .unwrap();
        assert!((k - 1.23).abs() < 1e-12);
    }

    #[test]
    fn calibration_recovers_a_perturbed_constant() {
        // Ground truth: the stock Table 1 machine. Candidate: same machine
        // with the CPU k badly wrong. Calibration on a CPU staircase must
        // pull it back toward the truth.
        let truth = presets::validation_machine();
        let trace = crate::microbench::cpu_staircase(1200, 150);
        let truth_log = run_offline(&truth, &trace, SolverConfig::default(), None).unwrap();
        let measured = truth_log.series(nodes::CPU_AIR).unwrap();

        let cpu_param = Param::HeatK {
            a: nodes::CPU.to_string(),
            b: nodes::CPU_AIR.to_string(),
            min: 0.2,
            max: 3.0,
        };
        let perturbed = rebuild_with_heat_overrides(&truth, &[(&cpu_param, 1.6)]);

        let problem = CalibrationProblem::new(&perturbed, &trace)
            .param(cpu_param.clone())
            .target(nodes::CPU_AIR, measured);
        let outcome = problem.calibrate(6);
        assert!(
            outcome.final_rmse < outcome.initial_rmse * 0.7,
            "rmse {} -> {}",
            outcome.initial_rmse,
            outcome.final_rmse
        );
        assert!(
            (outcome.values[0] - 0.75).abs() < 0.3,
            "recovered k = {}",
            outcome.values[0]
        );
        assert!(outcome.rounds >= 1);
    }

    #[test]
    fn air_split_override_preserves_the_pair_total() {
        let base = presets::validation_machine();
        let split = Param::AirSplit {
            from: nodes::PS_AIR_DOWN.to_string(),
            to_a: nodes::CPU_AIR.to_string(),
            to_b: nodes::VOID_AIR.to_string(),
            min: 0.05,
            max: 0.5,
        };
        let copy = rebuild_with_overrides(&base, &[(&split, 0.25)]);
        let ifrom = copy.node_id(nodes::PS_AIR_DOWN).unwrap();
        let frac = |to: &str| {
            let ito = copy.node_id(to).unwrap();
            copy.air_edges()
                .iter()
                .find(|e| e.from == ifrom && e.to == ito)
                .map(|e| e.fraction)
                .unwrap()
        };
        assert!((frac(nodes::CPU_AIR) - 0.25).abs() < 1e-12);
        assert!((frac(nodes::VOID_AIR) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn air_split_calibration_moves_the_fraction() {
        // Ground truth: machine with ps_down->cpu_air = 0.22. Candidate
        // starts at the stock 0.15; calibrating on a CPU staircase should
        // move it toward the truth (the steady-state CPU-air temperature
        // depends on this split, not on k).
        let base = presets::validation_machine();
        let split = Param::AirSplit {
            from: nodes::PS_AIR_DOWN.to_string(),
            to_a: nodes::CPU_AIR.to_string(),
            to_b: nodes::VOID_AIR.to_string(),
            min: 0.05,
            max: 0.5,
        };
        let truth = rebuild_with_overrides(&base, &[(&split, 0.22)]);
        let trace = crate::microbench::cpu_staircase(900, 150);
        let truth_log = run_offline(&truth, &trace, SolverConfig::default(), None).unwrap();
        let problem = CalibrationProblem::new(&base, &trace)
            .param(split)
            .target(nodes::CPU_AIR, truth_log.series(nodes::CPU_AIR).unwrap());
        let outcome = problem.calibrate(6);
        assert!(outcome.final_rmse < outcome.initial_rmse);
        assert!(
            outcome.values[0] > 0.16,
            "fraction stayed at {}",
            outcome.values[0]
        );
    }

    #[test]
    fn rmse_of_truth_against_itself_is_zero() {
        let truth = presets::validation_machine();
        let trace = crate::microbench::cpu_staircase(300, 60);
        let log = run_offline(&truth, &trace, SolverConfig::default(), None).unwrap();
        let problem = CalibrationProblem::new(&truth, &trace)
            .target(nodes::CPU_AIR, log.series(nodes::CPU_AIR).unwrap());
        assert!(problem.rmse(&truth) < 1e-9);
    }

    #[test]
    fn rmse_is_infinite_for_unknown_targets() {
        let truth = presets::validation_machine();
        let trace = crate::microbench::cpu_staircase(60, 30);
        let problem = CalibrationProblem::new(&truth, &trace).target("ghost", vec![0.0; 60]);
        assert!(problem.rmse(&truth).is_infinite());
    }

    #[test]
    fn empty_target_overlap_is_infinite() {
        let truth = presets::validation_machine();
        let trace = crate::microbench::cpu_staircase(60, 30);
        let problem = CalibrationProblem::new(&truth, &trace)
            .target(nodes::CPU_AIR, vec![])
            .warmup_s(0);
        assert!(problem.rmse(&truth).is_infinite());
    }
}
