//! The "real machine": a finer-grained transient model of the Pentium III
//! testbed server, with realistic (noisy, quantized) sensors.
//!
//! Differences from Mercury's model class, chosen so that validating
//! Mercury against the plant is a real test rather than a tautology:
//!
//! * more internal structure — the CPU die is separate from its heat
//!   sink, the disk has a spindle-motor node, so the plant has thermal
//!   paths Mercury's coarse graph does not;
//! * **temperature- and flow-dependent** heat-transfer coefficients on
//!   every solid-to-air boundary (`k = k₀·(1+β(T̄−25))·(V̇/V̇₀)^0.8`),
//!   where Mercury deliberately assumes constant `k` (§2.1 discusses this
//!   simplification);
//! * finer integration (50 ms) and sensor models with the accuracies the
//!   paper quotes: the external digital thermometer is ±1.5 °C (0.5 °C
//!   quantization, Gaussian jitter, a fixed bias), the in-disk sensor
//!   ±3 °C (1 °C quantization, more jitter).

use mercury::trace::{TemperatureLog, UtilizationTrace};
use mercury::units::{Celsius, Seconds};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

const N: usize = 13;

// Node indices.
const DIE: usize = 0;
const SINK: usize = 1;
const MOBO: usize = 2;
const PSU: usize = 3;
const PLATTERS: usize = 4;
const SPINDLE: usize = 5;
const SHELL: usize = 6;
const INLET: usize = 7;
const DISK_AIR: usize = 8;
const PS_AIR: usize = 9;
const VOID: usize = 10;
const CPU_AIR: usize = 11;
const EXHAUST: usize = 12;

const NAMES: [&str; N] = [
    "die", "sink", "mobo", "psu", "platters", "spindle", "shell", "inlet", "disk_air", "ps_air",
    "void", "cpu_air", "exhaust",
];

/// Internal integration step, seconds.
const DT_SUB: f64 = 0.05;
/// Temperature sensitivity of the boundary coefficients, 1/K.
const K_TEMP_BETA: f64 = 0.002;
/// Flow exponent of forced convection.
const K_FLOW_EXP: f64 = 0.8;
/// Nominal fan flow the k₀ values were "measured" at, cfm.
const FAN0_CFM: f64 = 38.6;

#[derive(Debug, Clone, Copy)]
struct Edge {
    a: usize,
    b: usize,
    k0: f64,
    /// Solid-to-air boundaries get the variable-k treatment.
    boundary: bool,
}

#[derive(Debug, Clone, Copy)]
struct AirEdge {
    from: usize,
    to: usize,
    fraction: f64,
}

/// The high-fidelity plant.
#[derive(Debug, Clone)]
pub struct Plant {
    temp: [f64; N],
    capacity: [f64; N],
    air_mass: [f64; N],
    edges: Vec<Edge>,
    air_edges: Vec<AirEdge>,
    inlet_c: f64,
    fan_cfm: f64,
    cpu_util: f64,
    disk_util: f64,
    time_s: f64,
    rng: ChaCha8Rng,
}

impl Plant {
    /// Builds the Pentium III testbed server. The seed drives only the
    /// sensor noise — the underlying physics is deterministic.
    pub fn pentium3_testbed(seed: u64) -> Self {
        let mut capacity = [0.0; N];
        capacity[DIE] = 0.020 * 700.0;
        capacity[SINK] = 0.131 * 896.0;
        capacity[MOBO] = 0.718 * 1245.0;
        capacity[PSU] = 1.643 * 896.0;
        capacity[PLATTERS] = 0.236 * 896.0;
        capacity[SPINDLE] = 0.100 * 450.0;
        capacity[SHELL] = 0.505 * 896.0;

        let mut air_mass = [0.0; N];
        air_mass[INLET] = 0.006;
        air_mass[DISK_AIR] = 0.005;
        air_mass[PS_AIR] = 0.007;
        air_mass[VOID] = 0.022;
        air_mass[CPU_AIR] = 0.004;
        air_mass[EXHAUST] = 0.006;
        for i in [INLET, DISK_AIR, PS_AIR, VOID, CPU_AIR, EXHAUST] {
            capacity[i] = air_mass[i] * 1005.0;
        }

        let edges = vec![
            Edge {
                a: DIE,
                b: SINK,
                k0: 15.0,
                boundary: false,
            },
            Edge {
                a: SINK,
                b: CPU_AIR,
                k0: 0.85,
                boundary: true,
            },
            Edge {
                a: MOBO,
                b: VOID,
                k0: 11.0,
                boundary: true,
            },
            Edge {
                a: MOBO,
                b: DIE,
                k0: 0.12,
                boundary: false,
            },
            Edge {
                a: PLATTERS,
                b: SPINDLE,
                k0: 3.0,
                boundary: false,
            },
            Edge {
                a: SPINDLE,
                b: SHELL,
                k0: 2.5,
                boundary: false,
            },
            Edge {
                a: PLATTERS,
                b: SHELL,
                k0: 1.7,
                boundary: false,
            },
            Edge {
                a: SHELL,
                b: DISK_AIR,
                k0: 2.1,
                boundary: true,
            },
            Edge {
                a: PSU,
                b: PS_AIR,
                k0: 4.4,
                boundary: true,
            },
        ];
        let air_edges = vec![
            AirEdge {
                from: INLET,
                to: DISK_AIR,
                fraction: 0.38,
            },
            AirEdge {
                from: INLET,
                to: PS_AIR,
                fraction: 0.52,
            },
            AirEdge {
                from: INLET,
                to: VOID,
                fraction: 0.10,
            },
            AirEdge {
                from: DISK_AIR,
                to: VOID,
                fraction: 1.0,
            },
            AirEdge {
                from: PS_AIR,
                to: VOID,
                fraction: 0.83,
            },
            AirEdge {
                from: PS_AIR,
                to: CPU_AIR,
                fraction: 0.17,
            },
            AirEdge {
                from: VOID,
                to: CPU_AIR,
                fraction: 0.06,
            },
            AirEdge {
                from: VOID,
                to: EXHAUST,
                fraction: 0.94,
            },
            AirEdge {
                from: CPU_AIR,
                to: EXHAUST,
                fraction: 1.0,
            },
        ];

        Plant {
            temp: [21.6; N],
            capacity,
            air_mass,
            edges,
            air_edges,
            inlet_c: 21.6,
            fan_cfm: FAN0_CFM,
            cpu_util: 0.0,
            disk_util: 0.0,
            time_s: 0.0,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Sets the CPU utilization in `[0, 1]`.
    pub fn set_cpu_utilization(&mut self, u: f64) {
        self.cpu_util = u.clamp(0.0, 1.0);
    }

    /// Sets the disk utilization in `[0, 1]`.
    pub fn set_disk_utilization(&mut self, u: f64) {
        self.disk_util = u.clamp(0.0, 1.0);
    }

    /// Sets the machine-room air temperature at the inlet.
    pub fn set_inlet(&mut self, celsius: f64) {
        self.inlet_c = celsius;
    }

    /// Sets the fan speed (affects every boundary coefficient).
    pub fn set_fan_cfm(&mut self, cfm: f64) {
        self.fan_cfm = cfm.max(1.0);
    }

    /// Elapsed plant time, seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// The exact (noise-free) temperature of an internal node. Intended
    /// for tests and debugging — a real machine would not offer this.
    ///
    /// # Panics
    ///
    /// Panics on unknown node names; the node list is fixed.
    pub fn true_temperature(&self, node: &str) -> f64 {
        let idx = NAMES
            .iter()
            .position(|n| *n == node)
            .unwrap_or_else(|| panic!("unknown plant node `{node}`"));
        self.temp[idx]
    }

    /// Node names, for discovery.
    pub fn node_names() -> &'static [&'static str] {
        &NAMES
    }

    fn mass_flow(&self) -> f64 {
        self.fan_cfm * mercury::units::CFM_TO_M3S * mercury::units::AIR_DENSITY
    }

    /// Advances the plant by one second.
    pub fn step(&mut self) {
        let steps = (1.0 / DT_SUB) as usize;
        let flow_ratio = (self.fan_cfm / FAN0_CFM).powf(K_FLOW_EXP);
        let fan_flow = self.mass_flow();

        // Per-edge flow (kg/s) through the fixed air graph.
        let mut node_out = [0.0_f64; N];
        node_out[INLET] = fan_flow;
        // The graph is listed in topological order; accumulate.
        let mut edge_flow = vec![0.0_f64; self.air_edges.len()];
        for (i, e) in self.air_edges.iter().enumerate() {
            edge_flow[i] = node_out[e.from] * e.fraction;
            node_out[e.to] += edge_flow[i];
        }

        for _ in 0..steps {
            self.temp[INLET] = self.inlet_c;
            let mut dq = [0.0_f64; N];
            // Heat sources.
            dq[DIE] += (7.0 + 24.0 * self.cpu_util) * DT_SUB;
            dq[PLATTERS] += (9.0 + 5.0 * self.disk_util) * DT_SUB;
            dq[PSU] += 40.0 * DT_SUB;
            dq[MOBO] += 4.0 * DT_SUB;
            // Conduction / convection with variable boundary k.
            for e in &self.edges {
                let t_avg = 0.5 * (self.temp[e.a] + self.temp[e.b]);
                let mut k = e.k0;
                if e.boundary {
                    k *= (1.0 + K_TEMP_BETA * (t_avg - 25.0)) * flow_ratio;
                }
                let q = k * (self.temp[e.a] - self.temp[e.b]) * DT_SUB;
                dq[e.a] -= q;
                dq[e.b] += q;
            }
            // Advection deltas against the same snapshot.
            let mut adv = [0.0_f64; N];
            for node in [DISK_AIR, PS_AIR, VOID, CPU_AIR, EXHAUST] {
                let mut inflow = 0.0;
                let mut heat = 0.0;
                for (i, e) in self.air_edges.iter().enumerate() {
                    if e.to == node {
                        inflow += edge_flow[i];
                        heat += edge_flow[i] * self.temp[e.from];
                    }
                }
                if inflow > 0.0 {
                    let t_mix = heat / inflow;
                    let alpha = ((inflow * DT_SUB) / self.air_mass[node]).min(1.0);
                    adv[node] = alpha * (t_mix - self.temp[node]);
                }
            }
            for i in 0..N {
                if i == INLET {
                    continue;
                }
                self.temp[i] += dq[i] / self.capacity[i] + adv[i];
            }
        }
        self.time_s += 1.0;
    }

    /// Reads the external digital thermometer placed on top of the CPU
    /// heat sink (it measures the air heated by the CPU, as in §3.1):
    /// 0.5 °C quantization, small bias, Gaussian jitter — overall within
    /// the paper's ±1.5 °C.
    pub fn read_cpu_air_sensor(&mut self) -> f64 {
        let noisy = self.temp[CPU_AIR] + 0.2 + self.rng.gen_range(-0.45..0.45);
        (noisy / 0.5).round() * 0.5
    }

    /// Reads the disk's internal sensor (mounted on the shell): 1 °C
    /// quantization and wider jitter — the paper's ±3 °C class.
    pub fn read_disk_sensor(&mut self) -> f64 {
        let noisy = self.temp[SHELL] - 0.3 + self.rng.gen_range(-0.9..0.9);
        noisy.round()
    }

    /// Drives the plant with a utilization trace (components `cpu` and
    /// `disk_platters`) and records both sensors every second into a log
    /// with columns `cpu_air` and `disk`.
    ///
    /// # Errors
    ///
    /// Propagates log construction errors (they indicate a bug, not bad
    /// input).
    pub fn record_sensors(
        &mut self,
        trace: &UtilizationTrace,
    ) -> Result<TemperatureLog, mercury::Error> {
        let mut log = TemperatureLog::new(vec!["cpu_air".to_string(), "disk".to_string()]);
        let ticks = trace.duration().0 as usize;
        for t in 0..ticks {
            if let Some(row) = trace.at(Seconds(t as f64)) {
                let row = row.to_vec();
                for (component, util) in trace.components().iter().zip(row) {
                    match component.as_str() {
                        "cpu" => self.set_cpu_utilization(util.fraction()),
                        "disk_platters" => self.set_disk_utilization(util.fraction()),
                        _ => {}
                    }
                }
            }
            self.step();
            let cpu_air = self.read_cpu_air_sensor();
            let disk = self.read_disk_sensor();
            log.push(Seconds(self.time_s), &[Celsius(cpu_air), Celsius(disk)])?;
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_plant_settles_warm_but_reasonable() {
        let mut plant = Plant::pentium3_testbed(1);
        for _ in 0..4000 {
            plant.step();
        }
        let cpu_air = plant.true_temperature("cpu_air");
        assert!((23.0..35.0).contains(&cpu_air), "idle cpu air {cpu_air}");
        let shell = plant.true_temperature("shell");
        assert!((25.0..40.0).contains(&shell), "idle shell {shell}");
        // The die runs hotter than the sink, the sink hotter than its air.
        assert!(plant.true_temperature("die") > plant.true_temperature("sink"));
        assert!(plant.true_temperature("sink") > cpu_air);
    }

    #[test]
    fn load_heats_the_right_components() {
        let mut a = Plant::pentium3_testbed(1);
        let mut b = Plant::pentium3_testbed(1);
        b.set_cpu_utilization(1.0);
        for _ in 0..3000 {
            a.step();
            b.step();
        }
        assert!(
            b.true_temperature("cpu_air") > a.true_temperature("cpu_air") + 0.5,
            "cpu load invisible in cpu air"
        );
        // Disk barely affected by CPU load.
        let d = (b.true_temperature("shell") - a.true_temperature("shell")).abs();
        assert!(d < 1.0, "cpu load leaked into the disk by {d}");
    }

    #[test]
    fn inlet_change_propagates() {
        let mut plant = Plant::pentium3_testbed(2);
        for _ in 0..2000 {
            plant.step();
        }
        let before = plant.true_temperature("cpu_air");
        plant.set_inlet(30.0);
        for _ in 0..2000 {
            plant.step();
        }
        let after = plant.true_temperature("cpu_air");
        assert!(
            (after - before - 8.4).abs() < 1.0,
            "shift was {}",
            after - before
        );
    }

    #[test]
    fn sensors_are_quantized_and_near_truth() {
        let mut plant = Plant::pentium3_testbed(3);
        for _ in 0..1000 {
            plant.step();
        }
        for _ in 0..20 {
            let reading = plant.read_cpu_air_sensor();
            assert_eq!(reading, (reading / 0.5).round() * 0.5);
            assert!((reading - plant.true_temperature("cpu_air")).abs() < 1.5);
            let disk = plant.read_disk_sensor();
            assert_eq!(disk, disk.round());
            assert!((disk - plant.true_temperature("shell")).abs() < 3.0);
        }
    }

    #[test]
    fn sensor_noise_is_seeded() {
        let mut a = Plant::pentium3_testbed(7);
        let mut b = Plant::pentium3_testbed(7);
        for _ in 0..100 {
            a.step();
            b.step();
        }
        assert_eq!(a.read_cpu_air_sensor(), b.read_cpu_air_sensor());
        assert_eq!(a.read_disk_sensor(), b.read_disk_sensor());
    }

    #[test]
    fn faster_fan_cools_the_boundaries() {
        let mut slow = Plant::pentium3_testbed(1);
        let mut fast = Plant::pentium3_testbed(1);
        fast.set_fan_cfm(77.2);
        slow.set_cpu_utilization(1.0);
        fast.set_cpu_utilization(1.0);
        for _ in 0..3000 {
            slow.step();
            fast.step();
        }
        assert!(fast.true_temperature("die") < slow.true_temperature("die") - 1.0);
    }

    #[test]
    fn record_sensors_produces_a_full_log() {
        let trace = crate::microbench::cpu_staircase(300, 60);
        let mut plant = Plant::pentium3_testbed(5);
        let log = plant.record_sensors(&trace).unwrap();
        assert_eq!(log.len(), 300);
        assert_eq!(log.columns(), ["cpu_air".to_string(), "disk".to_string()]);
    }

    #[test]
    #[should_panic(expected = "unknown plant node")]
    fn unknown_node_panics() {
        let plant = Plant::pentium3_testbed(1);
        let _ = plant.true_temperature("gpu");
    }
}
