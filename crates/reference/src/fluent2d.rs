//! A 2-D steady-state finite-difference thermal solver — the stand-in
//! for the commercial Fluent package of §3.2.
//!
//! The paper "modeled a 2D description of a server case, with a CPU, a
//! disk, and a power supply", let Fluent compute the heat-transfer
//! properties of the material-to-air boundaries, fed those to Mercury,
//! and compared steady-state temperatures across 14 combinations of CPU
//! and disk power. This module provides the same capabilities:
//!
//! * a gridded server case with solid blocks (aluminium-class
//!   conductivity) for the three components and an air region with an
//!   effective turbulent conductivity,
//! * upwind advection along the case (inlet on the left, exhaust on the
//!   right),
//! * Gauss–Seidel/SOR iteration to a steady state, and
//! * extraction of each component's mean temperature, the air temperature
//!   near it, and the effective boundary coefficient
//!   `k = P / (T_component − T_air)` that calibrates Mercury.
//!
//! Hundreds to thousands of mesh cells and tens of thousands of sweeps
//! per solve also reproduce the *motivation*: this is orders of magnitude
//! slower than Mercury's per-tick graph traversal (see `bench/reference`).

use mercury::units::{AIR_DENSITY, AIR_SPECIFIC_HEAT};

/// The three modelled components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// The CPU block (mid-case, downstream).
    Cpu,
    /// The disk block (front, top).
    Disk,
    /// The power supply block (front, bottom).
    Psu,
}

/// All components, for iteration.
pub const COMPONENTS: [Component; 3] = [Component::Cpu, Component::Disk, Component::Psu];

/// A rectangular block of cells, in cell coordinates, half-open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Rect {
    x0: usize,
    x1: usize,
    y0: usize,
    y1: usize,
}

impl Rect {
    fn contains(&self, x: usize, y: usize) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    fn cells(&self) -> usize {
        (self.x1 - self.x0) * (self.y1 - self.y0)
    }
}

/// Geometry and material parameters of the 2-D case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseConfig {
    /// Grid cells along the flow direction.
    pub nx: usize,
    /// Grid cells across the case.
    pub ny: usize,
    /// Cell edge length, metres.
    pub cell_m: f64,
    /// Case depth (out-of-plane), metres.
    pub depth_m: f64,
    /// Inlet air temperature, °C.
    pub inlet_c: f64,
    /// Bulk air speed along the case, m/s.
    pub velocity_m_s: f64,
    /// Effective (turbulent) air conductivity, W/(m·K). Molecular air
    /// conductivity is 0.026; forced mixing in a server case transports
    /// heat 2–3 orders of magnitude faster, hence an effective value.
    pub air_k: f64,
    /// Solid (aluminium-class) conductivity, W/(m·K).
    pub solid_k: f64,
}

impl CaseConfig {
    /// The standard case: 90 × 30 cells at 5 mm — 2 700 mesh cells.
    pub fn standard() -> Self {
        CaseConfig {
            nx: 90,
            ny: 30,
            cell_m: 0.005,
            depth_m: 0.15,
            inlet_c: 21.6,
            velocity_m_s: 0.8,
            air_k: 8.0,
            solid_k: 200.0,
        }
    }

    /// A coarse case for fast tests: 45 × 15 cells at 10 mm.
    pub fn coarse() -> Self {
        CaseConfig {
            nx: 45,
            ny: 15,
            cell_m: 0.010,
            ..CaseConfig::standard()
        }
    }
}

/// The solver: a case plus per-component power settings.
#[derive(Debug, Clone)]
pub struct Fluent2d {
    config: CaseConfig,
    blocks: [(Component, Rect); 3],
    power_w: [f64; 3],
}

/// A converged solution.
#[derive(Debug, Clone)]
pub struct SteadyState {
    nx: usize,
    ny: usize,
    temp: Vec<f64>,
    /// Sweeps performed before convergence.
    pub iterations: usize,
    component_temp: [f64; 3],
    air_near: [f64; 3],
    power_w: [f64; 3],
}

fn component_index(c: Component) -> usize {
    match c {
        Component::Cpu => 0,
        Component::Disk => 1,
        Component::Psu => 2,
    }
}

impl Fluent2d {
    /// Builds the paper's server case: disk front-top, power supply
    /// front-bottom, CPU mid-case. Block positions scale with the grid.
    pub fn server_case(config: CaseConfig) -> Self {
        let (nx, ny) = (config.nx, config.ny);
        let fx = |f: f64| ((f * nx as f64) as usize).min(nx - 1);
        let fy = |f: f64| ((f * ny as f64) as usize).min(ny - 1);
        let blocks = [
            (
                Component::Cpu,
                Rect {
                    x0: fx(0.55),
                    x1: fx(0.70),
                    y0: fy(0.35),
                    y1: fy(0.65),
                },
            ),
            (
                Component::Disk,
                Rect {
                    x0: fx(0.10),
                    x1: fx(0.32),
                    y0: fy(0.62),
                    y1: fy(0.88),
                },
            ),
            (
                Component::Psu,
                Rect {
                    x0: fx(0.10),
                    x1: fx(0.38),
                    y0: fy(0.08),
                    y1: fy(0.38),
                },
            ),
        ];
        Fluent2d {
            config,
            blocks,
            power_w: [0.0; 3],
        }
    }

    /// Sets a component's dissipated power, W.
    pub fn set_power(&mut self, component: Component, watts: f64) {
        self.power_w[component_index(component)] = watts.max(0.0);
    }

    /// The current power of a component, W.
    pub fn power(&self, component: Component) -> f64 {
        self.power_w[component_index(component)]
    }

    /// The case configuration.
    pub fn config(&self) -> &CaseConfig {
        &self.config
    }

    fn solid_at(&self, x: usize, y: usize) -> Option<usize> {
        self.blocks.iter().position(|(_, rect)| rect.contains(x, y))
    }

    /// Iterates to a steady state.
    ///
    /// # Errors
    ///
    /// Returns an error string when the solver fails to converge within
    /// `max_sweeps` (signalling a bad configuration, e.g. zero airflow
    /// with nonzero power).
    pub fn solve(&self, tolerance: f64, max_sweeps: usize) -> Result<SteadyState, String> {
        let CaseConfig {
            nx,
            ny,
            cell_m,
            depth_m,
            inlet_c,
            velocity_m_s,
            air_k,
            solid_k,
        } = self.config;
        let idx = |x: usize, y: usize| y * nx + x;

        // Precompute per-cell material and source.
        let mut solid: Vec<Option<usize>> = vec![None; nx * ny];
        let mut source = vec![0.0_f64; nx * ny];
        for y in 0..ny {
            for x in 0..nx {
                if let Some(b) = self.solid_at(x, y) {
                    solid[idx(x, y)] = Some(b);
                    let cells = self.blocks[b].1.cells() as f64;
                    source[idx(x, y)] = self.power_w[b] / cells;
                }
            }
        }

        // Face conductance between two cells: harmonic mean of the two
        // conductivities × depth (face area h·d over distance h).
        let conductance = |a: Option<usize>, b: Option<usize>| -> f64 {
            let ka = if a.is_some() { solid_k } else { air_k };
            let kb = if b.is_some() { solid_k } else { air_k };
            (2.0 * ka * kb / (ka + kb)) * depth_m
        };
        // Advective coupling for an air cell fed from the west: mass flow
        // through one cell face × c_p.
        let advect = AIR_DENSITY * velocity_m_s * cell_m * depth_m * AIR_SPECIFIC_HEAT.0;

        let mut temp = vec![inlet_c; nx * ny];
        let omega = 1.6; // SOR relaxation
        let mut iterations = 0;
        loop {
            iterations += 1;
            let mut max_delta = 0.0_f64;
            for y in 0..ny {
                for x in 0..nx {
                    if x == 0 && solid[idx(x, y)].is_none() {
                        // Inlet boundary: fixed temperature.
                        temp[idx(x, y)] = inlet_c;
                        continue;
                    }
                    let me = solid[idx(x, y)];
                    let mut num = source[idx(x, y)];
                    let mut den = 0.0;
                    let mut couple = |nb_x: usize, nb_y: usize| {
                        let g = conductance(me, solid[idx(nb_x, nb_y)]);
                        num += g * temp[idx(nb_x, nb_y)];
                        den += g;
                    };
                    if x > 0 {
                        couple(x - 1, y);
                    }
                    if x + 1 < nx {
                        couple(x + 1, y);
                    }
                    if y > 0 {
                        couple(x, y - 1);
                    }
                    if y + 1 < ny {
                        couple(x, y + 1);
                    }
                    // Upwind advection between air cells.
                    if me.is_none() && x > 0 && solid[idx(x - 1, y)].is_none() {
                        num += advect * temp[idx(x - 1, y)];
                        den += advect;
                    }
                    if den <= 0.0 {
                        continue;
                    }
                    let fresh = num / den;
                    let old = temp[idx(x, y)];
                    let relaxed = old + omega * (fresh - old);
                    max_delta = max_delta.max((relaxed - old).abs());
                    temp[idx(x, y)] = relaxed;
                }
            }
            if max_delta < tolerance {
                break;
            }
            if iterations >= max_sweeps {
                return Err(format!(
                    "no convergence after {max_sweeps} sweeps (last delta {max_delta:.2e})"
                ));
            }
        }

        // Extract block averages and near-block air temperatures.
        let mut component_temp = [0.0; 3];
        let mut air_near = [0.0; 3];
        for (slot, (_, rect)) in self.blocks.iter().enumerate() {
            let mut sum = 0.0;
            for y in rect.y0..rect.y1 {
                for x in rect.x0..rect.x1 {
                    sum += temp[idx(x, y)];
                }
            }
            component_temp[slot] = sum / rect.cells() as f64;

            // Air cells adjacent to any block face.
            let mut air_sum = 0.0;
            let mut air_count = 0usize;
            let mut visit = |x: isize, y: isize| {
                if x < 0 || y < 0 || x as usize >= nx || y as usize >= ny {
                    return;
                }
                let (x, y) = (x as usize, y as usize);
                if solid[idx(x, y)].is_none() {
                    air_sum += temp[idx(x, y)];
                    air_count += 1;
                }
            };
            for y in rect.y0..rect.y1 {
                visit(rect.x0 as isize - 1, y as isize);
                visit(rect.x1 as isize, y as isize);
            }
            for x in rect.x0..rect.x1 {
                visit(x as isize, rect.y0 as isize - 1);
                visit(x as isize, rect.y1 as isize);
            }
            air_near[slot] = if air_count > 0 {
                air_sum / air_count as f64
            } else {
                inlet_c
            };
        }

        Ok(SteadyState {
            nx,
            ny,
            temp,
            iterations,
            component_temp,
            air_near,
            power_w: self.power_w,
        })
    }
}

impl SteadyState {
    /// Mean temperature of a component block, °C.
    pub fn component_temp(&self, component: Component) -> f64 {
        self.component_temp[component_index(component)]
    }

    /// Mean air temperature immediately around a component, °C.
    pub fn air_near(&self, component: Component) -> f64 {
        self.air_near[component_index(component)]
    }

    /// The effective material-to-air boundary coefficient the paper takes
    /// from Fluent: `k = P / (T_component − T_air)` in W/K. Returns `None`
    /// when the temperature difference is too small to divide by.
    pub fn effective_k(&self, component: Component) -> Option<f64> {
        let i = component_index(component);
        let delta = self.component_temp[i] - self.air_near[i];
        if delta.abs() < 1e-6 || self.power_w[i] <= 0.0 {
            None
        } else {
            Some(self.power_w[i] / delta)
        }
    }

    /// The temperature of one mesh cell, °C.
    ///
    /// # Panics
    ///
    /// Panics when the coordinates are outside the grid.
    pub fn cell(&self, x: usize, y: usize) -> f64 {
        assert!(
            x < self.nx && y < self.ny,
            "cell ({x},{y}) outside {}x{}",
            self.nx,
            self.ny
        );
        self.temp[y * self.nx + x]
    }

    /// The hottest cell in the grid, °C.
    pub fn max_temp(&self) -> f64 {
        self.temp.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_with(cpu: f64, disk: f64, psu: f64) -> SteadyState {
        let mut case = Fluent2d::server_case(CaseConfig::coarse());
        case.set_power(Component::Cpu, cpu);
        case.set_power(Component::Disk, disk);
        case.set_power(Component::Psu, psu);
        case.solve(1e-5, 200_000).expect("coarse case converges")
    }

    #[test]
    fn unpowered_case_is_isothermal_at_inlet() {
        let state = solve_with(0.0, 0.0, 0.0);
        assert!((state.max_temp() - 21.6).abs() < 0.01);
        assert!((state.component_temp(Component::Cpu) - 21.6).abs() < 0.01);
    }

    #[test]
    fn components_heat_above_the_air_around_them() {
        let state = solve_with(31.0, 14.0, 40.0);
        for c in COMPONENTS {
            let t = state.component_temp(c);
            let air = state.air_near(c);
            assert!(t > air, "{c:?}: block {t} not above air {air}");
            assert!(t < 120.0, "{c:?} runaway at {t}");
            assert!(air > 21.0, "{c:?} air below inlet: {air}");
        }
        assert!(state.iterations > 10);
    }

    #[test]
    fn more_power_means_hotter_component() {
        let low = solve_with(7.0, 9.0, 40.0);
        let high = solve_with(31.0, 9.0, 40.0);
        assert!(high.component_temp(Component::Cpu) > low.component_temp(Component::Cpu) + 1.0);
        // The disk barely notices the CPU change (it sits upstream).
        let disk_shift =
            (high.component_temp(Component::Disk) - low.component_temp(Component::Disk)).abs();
        assert!(disk_shift < 1.0, "disk moved by {disk_shift}");
    }

    #[test]
    fn effective_k_is_stable_across_power_levels() {
        // k = P/ΔT should be (approximately) a property of the geometry,
        // not the power level — that is what makes it usable as a Mercury
        // calibration constant.
        let a = solve_with(15.0, 9.0, 40.0);
        let b = solve_with(31.0, 9.0, 40.0);
        let ka = a.effective_k(Component::Cpu).unwrap();
        let kb = b.effective_k(Component::Cpu).unwrap();
        assert!(ka > 0.0 && kb > 0.0);
        assert!((ka - kb).abs() / ka < 0.2, "k drifted: {ka} vs {kb}");
    }

    #[test]
    fn effective_k_handles_degenerate_cases() {
        let state = solve_with(0.0, 0.0, 0.0);
        assert_eq!(state.effective_k(Component::Cpu), None);
    }

    #[test]
    fn air_warms_downstream() {
        let state = solve_with(31.0, 14.0, 40.0);
        // Air column near the exhaust is warmer than near the inlet.
        let ny = CaseConfig::coarse().ny;
        let nx = CaseConfig::coarse().nx;
        let mid = ny / 2;
        assert!(state.cell(nx - 1, mid) > state.cell(1, mid) + 0.5);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_grid_cell_panics() {
        let state = solve_with(0.0, 0.0, 0.0);
        let _ = state.cell(1000, 0);
    }
}
