//! The calibration and validation workloads of §3.1.
//!
//! * Figures 5–6 drive one component at a time through "various levels of
//!   utilization interspersed with idle periods" — [`cpu_staircase`] and
//!   [`disk_staircase`].
//! * Figures 7–8 use "a more challenging benchmark \[that\] exercises the
//!   CPU and disk at the same time, generating widely different
//!   utilizations over time \[...\] utilizations change constantly and
//!   quickly" — [`combined_benchmark`].

use mercury::trace::UtilizationTrace;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn components() -> Vec<String> {
    vec!["cpu".to_string(), "disk_platters".to_string()]
}

/// A utilization staircase for one component: idle, then plateaus at
/// 25/50/75/100 %, each `plateau_s` long with equal idle gaps, repeating
/// until `duration_s`. The other component stays idle.
fn staircase(duration_s: u64, plateau_s: u64, component: usize) -> UtilizationTrace {
    let plateau = plateau_s.max(1);
    let levels = [0.25, 0.5, 0.75, 1.0];
    UtilizationTrace::from_fn(
        "plant",
        1.0,
        components(),
        duration_s as usize,
        move |t, c| {
            if c != component {
                return 0.0;
            }
            // Cycle: (idle, level) pairs.
            let cycle = 2 * plateau;
            let phase = (t as u64) % (cycle * levels.len() as u64);
            let step = (phase / cycle) as usize;
            let within = phase % cycle;
            if within < plateau {
                0.0
            } else {
                levels[step]
            }
        },
    )
    .expect("staircase parameters are valid")
}

/// The CPU calibration workload (Figure 5).
pub fn cpu_staircase(duration_s: u64, plateau_s: u64) -> UtilizationTrace {
    staircase(duration_s, plateau_s, 0)
}

/// The disk calibration workload (Figure 6).
pub fn disk_staircase(duration_s: u64, plateau_s: u64) -> UtilizationTrace {
    staircase(duration_s, plateau_s, 1)
}

/// The combined validation benchmark (Figures 7–8): both components
/// driven through randomly chosen levels that change every 30–120 s,
/// deterministically from `seed`.
pub fn combined_benchmark(duration_s: u64, seed: u64) -> UtilizationTrace {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut schedule: Vec<(u64, f64, f64)> = Vec::new();
    let mut t = 0u64;
    while t < duration_s {
        let hold = rng.gen_range(30..=120);
        let cpu: f64 = if rng.gen_bool(0.25) {
            0.0
        } else {
            rng.gen_range(0.0..=1.0)
        };
        let disk: f64 = if rng.gen_bool(0.25) {
            0.0
        } else {
            rng.gen_range(0.0..=1.0)
        };
        schedule.push((t, cpu, disk));
        t += hold;
    }
    UtilizationTrace::from_fn(
        "plant",
        1.0,
        components(),
        duration_s as usize,
        move |t, c| {
            let entry = schedule
                .iter()
                .rev()
                .find(|(start, _, _)| *start as f64 <= t)
                .copied()
                .unwrap_or((0, 0.0, 0.0));
            if c == 0 {
                entry.1
            } else {
                entry.2
            }
        },
    )
    .expect("benchmark parameters are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercury::units::Seconds;

    #[test]
    fn cpu_staircase_hits_every_level_and_idles_between() {
        let trace = cpu_staircase(800, 100);
        let series = trace.component_series("cpu").unwrap();
        // Levels appear in order with idle gaps: 0..100 idle, 100..200 at
        // 25%, 200..300 idle, ...
        assert_eq!(series[50].fraction(), 0.0);
        assert_eq!(series[150].fraction(), 0.25);
        assert_eq!(series[250].fraction(), 0.0);
        assert_eq!(series[350].fraction(), 0.5);
        assert_eq!(series[550].fraction(), 0.75);
        assert_eq!(series[750].fraction(), 1.0);
        // Disk stays idle throughout.
        let disk = trace.component_series("disk_platters").unwrap();
        assert!(disk.iter().all(|u| u.fraction() == 0.0));
    }

    #[test]
    fn disk_staircase_mirrors_cpu_shape() {
        let trace = disk_staircase(400, 50);
        let disk = trace.component_series("disk_platters").unwrap();
        assert_eq!(disk[75].fraction(), 0.25);
        let cpu = trace.component_series("cpu").unwrap();
        assert!(cpu.iter().all(|u| u.fraction() == 0.0));
    }

    #[test]
    fn combined_benchmark_varies_both_components() {
        let trace = combined_benchmark(5000, 42);
        assert_eq!(trace.duration(), Seconds(5000.0));
        let cpu = trace.component_series("cpu").unwrap();
        let disk = trace.component_series("disk_platters").unwrap();
        let distinct_cpu: std::collections::BTreeSet<u64> =
            cpu.iter().map(|u| (u.fraction() * 1000.0) as u64).collect();
        let distinct_disk: std::collections::BTreeSet<u64> = disk
            .iter()
            .map(|u| (u.fraction() * 1000.0) as u64)
            .collect();
        assert!(
            distinct_cpu.len() > 10,
            "cpu levels: {}",
            distinct_cpu.len()
        );
        assert!(distinct_disk.len() > 10);
        // Both components are actually exercised.
        assert!(cpu.iter().any(|u| u.fraction() > 0.5));
        assert!(disk.iter().any(|u| u.fraction() > 0.5));
    }

    #[test]
    fn combined_benchmark_is_deterministic() {
        assert_eq!(combined_benchmark(1000, 7), combined_benchmark(1000, 7));
        assert_ne!(combined_benchmark(1000, 7), combined_benchmark(1000, 8));
    }
}
