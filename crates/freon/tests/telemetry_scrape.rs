//! End-to-end telemetry: a short cluster run behind a
//! [`mercury::net::SolverService`], with a Freon policy registered on the
//! service registry, scraped over UDP and parsed line-by-line.
//!
//! This is the observability acceptance path: solver, cluster, freon,
//! and net metric families must all be present and the whole exposition
//! must round-trip through the strict parser.

#![cfg(feature = "instrument")]

use freon::{FreonConfig, FreonPolicy, ServerSnapshot, ThermalPolicy};
use mercury::net::proto::{self, Reply, Request};
use mercury::net::{ServiceConfig, SolverService};
use std::collections::BTreeMap;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

/// Sends one scrape request and reassembles the multi-part reply.
fn scrape(addr: SocketAddr) -> String {
    let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
    socket.connect(addr).unwrap();
    socket
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    socket
        .send(&proto::encode_request(&Request::Scrape))
        .unwrap();
    let mut received: BTreeMap<u16, String> = BTreeMap::new();
    let mut buf = [0u8; proto::MAX_DATAGRAM];
    loop {
        let n = socket.recv(&mut buf).unwrap();
        match proto::decode_reply(&buf[..n]).unwrap() {
            Reply::Metrics { part, parts, text } => {
                received.insert(part, text);
                if received.len() as u16 == parts {
                    break;
                }
            }
            other => panic!("unexpected reply to a scrape: {other:?}"),
        }
    }
    received.into_values().collect()
}

fn hot_snapshots(n: usize, hot: usize) -> Vec<ServerSnapshot> {
    (0..n)
        .map(|i| ServerSnapshot {
            temps: vec![
                ("cpu".to_string(), if i == hot { 68.0 } else { 55.0 }),
                ("disk_platters".to_string(), 40.0),
            ],
            cpu_util: 0.7,
            disk_util: 0.2,
            connections: 30,
            powered: true,
            accepting: true,
        })
        .collect()
}

#[test]
fn scrape_covers_solver_cluster_freon_and_net_families() {
    let model = mercury::presets::validation_cluster(4);
    let service = SolverService::spawn_cluster(&model, ServiceConfig::fast()).unwrap();

    // A Freon policy watching a (separately simulated) cluster registers
    // its decision counters on the same scrape surface.
    let mut policy = FreonPolicy::new(FreonConfig::paper(), 4);
    policy.register_metrics(service.registry());
    let mut sim = cluster_sim::ClusterSim::homogeneous(4, cluster_sim::ServerConfig::default());
    policy.control(60, &hot_snapshots(4, 0), &mut sim);
    assert_eq!(policy.adjustments(), 1, "the hot server must be throttled");

    // Let the paced solver take a few ticks, then scrape.
    std::thread::sleep(Duration::from_millis(100));
    let text = scrape(service.local_addr());
    let samples = telemetry::text::parse_exposition(&text)
        .expect("every scraped line must parse as Prometheus text exposition");

    for family in [
        "mercury_solver_",
        "mercury_cluster_",
        "mercury_freon_",
        "mercury_net_",
    ] {
        assert!(
            samples.iter().any(|s| s.name.starts_with(family)),
            "no {family}* samples in:\n{text}"
        );
    }

    let sum = |name: &str| -> f64 {
        samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    };
    assert!(
        sum("mercury_solver_ticks_total") >= 4.0,
        "solver never ticked"
    );
    assert!(sum("mercury_cluster_ticks_total") >= 1.0);
    assert!(sum("mercury_freon_decisions_total") >= 1.0);
    assert!(sum("mercury_freon_observations_total") >= 4.0);
    assert!(sum("mercury_net_datagrams_total") >= 1.0);
    assert!(
        samples.iter().any(|s| {
            s.name == "mercury_freon_decisions_total"
                && s.label("action") == Some("throttle")
                && s.label("reason") == Some("above_high")
                && s.value >= 1.0
        }),
        "throttle decision not attributed to its reason code"
    );
    assert_eq!(
        sum("mercury_telemetry_events_dropped_total"),
        0.0,
        "the registry's event ring wrapped during a short e2e run"
    );
    assert!(
        samples.iter().any(|s| {
            s.name == "mercury_build_info"
                && s.value == 1.0
                && s.label("version").is_some()
                && s.label("simd").is_some()
        }),
        "build identity gauge missing from the scrape"
    );

    service.shutdown();
}
