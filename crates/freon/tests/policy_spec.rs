//! Property and equivalence tests for the declarative policy layer.
//!
//! Three guarantees:
//!
//! 1. any valid [`PolicySpec`] survives a TOML round trip unchanged,
//! 2. malformed specs are rejected with errors naming the offender, and
//! 3. the built-in TOML specs drive an experiment to *byte-identical*
//!    logs as the legacy policy structs they replaced.

use cluster_sim::{ClusterSim, ServerConfig};
use freon::policy::{SpecPolicy, Trigger};
use freon::{
    EcConfig, Experiment, ExperimentConfig, FreonConfig, FreonEcPolicy, FreonPolicy, PolicySpec,
    ThermalPolicy, TraditionalPolicy,
};
use proptest::prelude::*;
use workload_gen::{DiurnalProfile, RequestMix, WorkloadGenerator, WorkloadTrace};

/// A valid threshold triple for one component: `low < high < red_line`.
fn thresholds(component: &'static str) -> impl Strategy<Value = freon::ComponentThresholds> {
    (20.0..80.0f64, 0.5..10.0f64, 0.5..10.0f64).prop_map(move |(low, d_high, d_red)| {
        freon::ComponentThresholds {
            component: component.to_string(),
            low,
            high: low + d_high,
            red_line: low + d_high + d_red,
        }
    })
}

/// A valid spec built around the standard throttle/release/red-line
/// rules, with randomized periods, gains, caps, and thresholds —
/// occasionally with an EC section or a shed rule instead of throttling.
fn valid_spec() -> impl Strategy<Value = PolicySpec> {
    (
        (1u64..600, 1u64..120),
        (0.01..1.0f64, 0.0..1.0f64),
        any::<bool>(),
        thresholds("cpu"),
        thresholds("disk_platters"),
        0u8..3,
        (0.05..0.95f64, 1u8..4),
    )
        .prop_map(
            |((check, sample), (kp, kd), caps, cpu, disk, variant, (factor, intervals))| {
                let mut config = FreonConfig::paper();
                config.monitor_period_s = check;
                config.sample_period_s = sample;
                config.kp = kp;
                config.kd = kd;
                config.connection_caps = caps;
                config.thresholds = vec![cpu, disk];
                match variant {
                    0 => PolicySpec::freon(&config),
                    1 => {
                        let ec = EcConfig {
                            regions: vec![0, 1, 0, 1],
                            u_high: 0.7,
                            u_low: 0.6,
                            projection_intervals: u32::from(intervals),
                        };
                        PolicySpec::freon_ec(&config, &ec)
                    }
                    _ => {
                        let mut spec = PolicySpec::freon(&config);
                        spec.name = "shed-variant".to_string();
                        for rule in &mut spec.rules {
                            if rule.trigger == Trigger::AboveHigh {
                                rule.action = freon::ActionSpec::Shed { factor };
                            }
                        }
                        spec
                    }
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// write → parse reproduces the spec exactly, rules and EC included.
    #[test]
    fn specs_round_trip_through_toml(spec in valid_spec()) {
        prop_assert!(spec.validate().is_ok(), "strategy produced an invalid spec");
        let text = spec.to_toml_string();
        let back = PolicySpec::from_toml_str(&text)
            .unwrap_or_else(|e| panic!("emitted TOML failed to parse: {e}\n{text}"));
        prop_assert_eq!(back, spec);
    }

    /// Inverting any component's thresholds is always caught, and the
    /// error names that component.
    #[test]
    fn inverted_thresholds_are_rejected(spec in valid_spec(), which in 0usize..2) {
        let mut spec = spec;
        let t = &mut spec.thresholds[which];
        std::mem::swap(&mut t.low, &mut t.red_line);
        let component = spec.thresholds[which].component.clone();
        let err = spec.validate().expect_err("inverted thresholds accepted");
        prop_assert!(err.contains(&component), "error does not name `{}`: {}", component, err);
    }

    /// Zero periods are always caught.
    #[test]
    fn zero_periods_are_rejected(spec in valid_spec(), which in any::<bool>()) {
        let mut spec = spec;
        if which {
            spec.check_period_s = 0;
        } else {
            spec.sample_period_s = 0;
        }
        let err = spec.validate().expect_err("zero period accepted");
        prop_assert!(err.contains("period"), "{}", err);
    }
}

#[test]
fn unknown_actuator_names_are_rejected_with_the_full_menu() {
    let text = "\
name = \"bogus\"

[[thresholds]]
component = \"cpu\"
high = 67.0
low = 64.0
red_line = 69.0

[[rules]]
trigger = \"above_high\"
action = \"overclock\"
";
    let err = PolicySpec::from_toml_str(text).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("overclock"), "{msg}");
    assert!(msg.contains("throttle"), "menu missing: {msg}");
    assert!(msg.contains("set_fan"), "menu missing: {msg}");
}

#[test]
fn duplicate_triggers_are_rejected() {
    let mut spec = PolicySpec::freon(&FreonConfig::paper());
    let dup = spec.rules[0].clone();
    spec.rules.push(dup);
    let err = spec.validate().unwrap_err();
    assert!(err.contains("duplicate rule"), "{err}");
}

fn paper_trace(duration: u64) -> WorkloadTrace {
    let mix = RequestMix::paper();
    let peak = mix.rps_for_cpu_utilization(0.7, 4, 1000.0);
    let profile = DiurnalProfile::new(duration as f64, peak * 0.15, peak).with_peak_at(0.65);
    WorkloadGenerator::new(profile, mix, 42).generate(duration)
}

/// Runs the fig-11-style emergency under one policy.
fn run(policy: &mut dyn ThermalPolicy, duration: u64) -> freon::ExperimentLog {
    let model = mercury::presets::validation_cluster(4);
    let sim = ClusterSim::homogeneous(4, ServerConfig::default());
    let trace = paper_trace(duration);
    let script = mercury::fiddle::FiddleScript::parse(
        "sleep 200\nfiddle machine1 temperature inlet 35.0\nfiddle machine3 temperature inlet 33.0\n",
    )
    .unwrap();
    let cfg = ExperimentConfig {
        duration_s: duration,
        ..Default::default()
    };
    Experiment::new(&model, sim, &trace, Some(&script), cfg)
        .unwrap()
        .run(policy)
        .unwrap()
}

/// The built-in TOML specs drive the loop to the exact same logs as the
/// legacy policy structs (which now wrap the same interpreter — this
/// pins the *TOML files* to the paper behaviors).
#[test]
fn builtin_specs_reproduce_the_legacy_policies() {
    let duration = 700;
    for name in ["traditional", "freon", "freon-ec"] {
        let spec = PolicySpec::builtin(name).unwrap();
        let mut from_spec = SpecPolicy::new(spec, 4).unwrap();
        let spec_log = run(&mut from_spec, duration);
        let legacy_log = match name {
            "traditional" => {
                let mut p = TraditionalPolicy::new(FreonConfig::paper(), 4);
                run(&mut p, duration)
            }
            "freon" => {
                let mut p = FreonPolicy::new(FreonConfig::paper(), 4);
                run(&mut p, duration)
            }
            _ => {
                let mut p =
                    FreonEcPolicy::new(FreonConfig::paper(), EcConfig::paper_four_servers());
                run(&mut p, duration)
            }
        };
        assert_eq!(
            spec_log, legacy_log,
            "`{name}` spec diverged from the legacy policy"
        );
    }
}
