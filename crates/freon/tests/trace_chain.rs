//! End-to-end causal tracing: a cooling-failure experiment with the
//! tracer and flight recorder attached must produce an incident bundle
//! from which the full chain — engine second → solver tick, and tempd
//! observation → policy rule → mediator actuation — reconstructs by
//! span ids alone. This is the observability acceptance path for the
//! tracing subsystem.

#![cfg(feature = "instrument")]

use cluster_sim::{ClusterSim, ServerConfig};
use freon::policy::SpecPolicy;
use freon::{Experiment, ExperimentConfig, PolicySpec};
use mercury::fiddle::FiddleScript;
use telemetry::recorder::extract_bundle_spans;
use telemetry::{FlightRecorder, RecorderConfig, Tracer};
use workload_gen::{DiurnalProfile, RequestMix, WorkloadGenerator};

const SERVERS: usize = 4;
const DURATION: u64 = 1200;

#[test]
fn cooling_failure_produces_a_linkable_incident_bundle() {
    let dir = std::env::temp_dir().join(format!("mercury-trace-chain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let model = mercury::presets::freon_cluster(SERVERS);
    let sim = ClusterSim::homogeneous(SERVERS, ServerConfig::default());
    let mix = RequestMix::paper();
    let peak = mix.rps_for_cpu_utilization(0.7, SERVERS, 1000.0);
    let profile = DiurnalProfile::new(DURATION as f64, peak * 0.15, peak)
        .with_peak_at(0.70)
        .with_plateau(0.30);
    let trace = WorkloadGenerator::new(profile, mix, 42).generate(DURATION);
    // CRAC failure: every inlet to 40 °C at 60 s; under the traditional
    // policy the red line is crossed and servers shut down.
    let script = FiddleScript::parse(
        "sleep 60\n\
         fiddle machine1 temperature inlet 40.0\n\
         fiddle machine2 temperature inlet 40.0\n\
         fiddle machine3 temperature inlet 40.0\n\
         fiddle machine4 temperature inlet 40.0\n",
    )
    .unwrap();

    let tracer = Tracer::new(65_536);
    let config = ExperimentConfig {
        duration_s: DURATION,
        tracer: tracer.clone(),
        recorder: FlightRecorder::new(RecorderConfig {
            probes: vec!["cpu".to_string(), "disk_platters".to_string()],
            band_high_c: 70.0,
            max_rate_c_per_s: 25.0,
            ..RecorderConfig::default()
        }),
        incident_dir: Some(dir.clone()),
        ..ExperimentConfig::default()
    };
    let spec = PolicySpec::builtin("traditional").unwrap();
    let mut policy = SpecPolicy::new(spec, SERVERS).unwrap();
    Experiment::new(&model, sim, &trace, Some(&script), config)
        .unwrap()
        .run(&mut policy)
        .unwrap();
    assert!(
        !policy.incidents().is_empty(),
        "the cooling failure must red-line at least one server"
    );

    // One artifact: the first bundle written by the flight recorder.
    let mut bundles: Vec<_> = std::fs::read_dir(&dir)
        .expect("incident directory must exist")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    bundles.sort();
    assert!(!bundles.is_empty(), "no incident bundle was written");
    let text = std::fs::read_to_string(&bundles[0]).unwrap();
    assert!(text.contains(telemetry::recorder::BUNDLE_SCHEMA));
    assert!(text.contains("\"machines\""), "rings missing from bundle");
    let spans = extract_bundle_spans(&text).expect("bundle spans must extract");
    assert!(!spans.is_empty(), "bundle carries no spans");

    // The causal chain must reconstruct from this single artifact.
    let by_name = |name: &'static str| spans.iter().filter(move |s| s.name == name);
    let observe_ids: std::collections::HashSet<u64> =
        by_name("tempd.observe").map(|s| s.id).collect();
    assert!(!observe_ids.is_empty(), "no tempd.observe spans in bundle");
    let dispatch = by_name("mediator.dispatch")
        .find(|s| observe_ids.contains(&s.parent))
        .expect("an actuation span must link back to a tempd observation by span id");
    assert!(
        dispatch
            .args
            .iter()
            .any(|(k, v)| k == "action" && v == "shutdown"),
        "the traced actuation is the red-line shutdown"
    );
    let rule = by_name("policy.rule")
        .find(|s| s.parent == dispatch.parent)
        .expect("the fired rule shares the observation parent");
    assert!(rule
        .args
        .iter()
        .any(|(k, v)| k == "trigger" && v == "red_line"));
    // Engine and solver layers are present in the same artifact.
    assert!(by_name("engine.second").next().is_some());
    assert!(by_name("cluster.tick").next().is_some());

    // Determinism: an identical untraced run produces the same incidents.
    let sim2 = ClusterSim::homogeneous(SERVERS, ServerConfig::default());
    let config2 = ExperimentConfig {
        duration_s: DURATION,
        ..ExperimentConfig::default()
    };
    let mut policy2 =
        SpecPolicy::new(PolicySpec::builtin("traditional").unwrap(), SERVERS).unwrap();
    let script2 = FiddleScript::parse(
        "sleep 60\n\
         fiddle machine1 temperature inlet 40.0\n\
         fiddle machine2 temperature inlet 40.0\n\
         fiddle machine3 temperature inlet 40.0\n\
         fiddle machine4 temperature inlet 40.0\n",
    )
    .unwrap();
    Experiment::new(&model, sim2, &trace, Some(&script2), config2)
        .unwrap()
        .run(&mut policy2)
        .unwrap();
    assert_eq!(
        policy.incidents(),
        policy2.incidents(),
        "tracing must not perturb the trajectory"
    );

    std::fs::remove_dir_all(&dir).ok();
}
