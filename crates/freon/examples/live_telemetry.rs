//! A live scrape target: a 64-machine emulated room behind a
//! [`mercury::net::SolverService`] with a Freon policy making decisions
//! against it, so every metric family — solver, cluster, freon, net —
//! shows up on one exposition page.
//!
//! Run it, then point the scraper at the printed address:
//!
//! ```text
//! cargo run --release -p freon --example live_telemetry
//! mercury-stats --solver 127.0.0.1:<port> --watch 2
//! ```
//!
//! Optional arguments: `live_telemetry [machines] [bind-addr]`
//! (defaults: 64 machines, `127.0.0.1:0`).

use freon::{FreonConfig, FreonPolicy, ServerSnapshot, ThermalPolicy};
use mercury::net::{ServiceConfig, SolverService};
use std::time::Duration;

/// One round of observations: every machine warm, one running hot enough
/// to keep the PD controller (and its decision counters) busy.
fn snapshots(n: usize, hot: usize, hot_temp: f64) -> Vec<ServerSnapshot> {
    (0..n)
        .map(|i| ServerSnapshot {
            temps: vec![
                ("cpu".to_string(), if i == hot { hot_temp } else { 55.0 }),
                ("disk_platters".to_string(), 40.0),
            ],
            cpu_util: 0.7,
            disk_util: 0.2,
            connections: 30,
            powered: true,
            accepting: true,
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let n: usize = match args.next() {
        Some(raw) => raw.parse()?,
        None => 64,
    };
    let mut cfg = ServiceConfig {
        tick_wall: Duration::from_millis(10),
        ..ServiceConfig::default()
    };
    if let Some(bind) = args.next() {
        cfg.bind = bind.parse()?;
    }

    let model = mercury::presets::validation_cluster(n);
    let service = SolverService::spawn_cluster(&model, cfg)?;

    let mut policy = FreonPolicy::new(FreonConfig::paper(), n);
    policy.register_metrics(service.registry());
    let mut sim = cluster_sim::ClusterSim::homogeneous(n, cluster_sim::ServerConfig::default());

    println!(
        "{n}-machine room with a live Freon policy; scrape with\n  \
         mercury-stats --solver {}",
        service.local_addr()
    );

    // Drive the policy forever: alternate a hot interval (throttle) with
    // a cool one (release) so the decision counters keep moving.
    let mut now_s = 0u64;
    loop {
        let hot = (now_s / 60) as usize % n;
        let hot_temp = if (now_s / 120).is_multiple_of(2) {
            68.0
        } else {
            50.0
        };
        policy.control(now_s, &snapshots(n, hot, hot_temp), &mut sim);
        now_s += 60;
        std::thread::sleep(Duration::from_millis(200));
    }
}
