//! `admd` — the admission-control daemon at the load balancer (§4.1).

use cluster_sim::ClusterSim;

/// The admission-control daemon: turns `tempd` reports into LVS weight
/// and connection-cap adjustments.
///
/// Two levers, exactly as in the paper:
///
/// 1. **Weight rescaling** — "admd forces LVS to adjust its request
///    distribution by setting the hot server's weight so that it receives
///    only `1/(output+1)` of the load it is currently receiving (this
///    requires accounting for the weights of all servers)."
/// 2. **Connection capping** — "Freon also orders LVS to limit the
///    maximum allowed number of concurrent requests to the hot server at
///    the average number of concurrent requests over the last time
///    interval," which admd learns by sampling LVS every few seconds.
#[derive(Debug, Clone)]
pub struct Admd {
    /// Rolling per-server connection samples within the current minute.
    samples: Vec<Vec<usize>>,
}

impl Admd {
    /// Creates a daemon for an `n`-server cluster.
    pub fn new(n: usize) -> Self {
        Admd {
            samples: vec![Vec::new(); n],
        }
    }

    /// Records one LVS statistics sample (called every
    /// [`crate::FreonConfig::sample_period_s`] seconds).
    pub fn sample_connections(&mut self, sim: &ClusterSim) {
        for (i, samples) in self.samples.iter_mut().enumerate() {
            samples.push(sim.server(i).connections());
        }
    }

    /// Average connections observed for `server` since the last
    /// [`Admd::end_interval`], or `None` before any sample.
    pub fn average_connections(&self, server: usize) -> Option<f64> {
        let s = &self.samples[server];
        if s.is_empty() {
            None
        } else {
            Some(s.iter().sum::<usize>() as f64 / s.len() as f64)
        }
    }

    /// Closes the current observation interval (called once per
    /// monitoring period, after the reports are processed).
    pub fn end_interval(&mut self) {
        for s in &mut self.samples {
            s.clear();
        }
    }

    /// Applies a controller output to a hot server: rescale its weight so
    /// its share of new load drops to `1/(output+1)` of the current
    /// share, and cap its concurrent connections at the last interval's
    /// average.
    pub fn throttle(&self, sim: &mut ClusterSim, server: usize, output: f64) {
        self.rescale_weight(sim, server, output);
        self.apply_connection_cap(sim, server);
    }

    /// The weight lever alone.
    pub fn rescale_weight(&self, sim: &mut ClusterSim, server: usize, output: f64) {
        let output = output.max(0.0);
        let lvs = sim.lvs_mut();
        let n = lvs.len();
        let w_hot = lvs.weight(server);
        let w_total: f64 = (0..n).map(|i| lvs.weight(i)).sum();
        let w_rest = w_total - w_hot;
        if w_total > 0.0 && w_rest > 0.0 {
            let share = w_hot / w_total;
            let target_share = share / (output + 1.0);
            // Solve target = w' / (w' + w_rest) for the new weight.
            let new_weight = if target_share >= 1.0 {
                w_hot
            } else {
                (target_share * w_rest / (1.0 - target_share)).max(0.0)
            };
            lvs.set_weight(server, new_weight);
        } else if w_total > 0.0 {
            // The hot server is the only one in rotation: scale its
            // weight down anyway; least-connections keeps using it, but
            // the connection cap below still throttles.
            lvs.set_weight(server, w_hot / (output + 1.0));
        }
    }

    /// The connection-cap lever alone: caps the server's concurrency at
    /// the last interval's average (no-op before the first sample).
    pub fn apply_connection_cap(&self, sim: &mut ClusterSim, server: usize) {
        let cap = self
            .average_connections(server)
            .map(|avg| avg.ceil().max(1.0) as usize);
        if let Some(cap) = cap {
            sim.lvs_mut().set_connection_cap(server, Some(cap));
        }
    }

    /// Lifts every restriction from a server (weight 1, no cap) — the
    /// paper's response to all components cooling below `T_l`.
    pub fn release(&self, sim: &mut ClusterSim, server: usize) {
        sim.lvs_mut().clear_restrictions(server);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::{Request, ServerConfig};

    fn loaded_sim(n: usize) -> ClusterSim {
        let mut sim = ClusterSim::homogeneous(n, ServerConfig::default());
        // Long-running requests so connections persist across samples.
        let arrivals = (0..n * 20)
            .map(|_| Request::new(cluster_sim::RequestKind::Dynamic, 60_000.0, 0.0))
            .collect();
        sim.tick(arrivals);
        sim
    }

    #[test]
    fn weight_rescaling_hits_the_target_share() {
        let mut sim = loaded_sim(4);
        let admd = Admd::new(4);
        // output = 1 -> hot server share should halve: 0.25 -> 0.125.
        admd.throttle(&mut sim, 0, 1.0);
        let w: Vec<f64> = (0..4).map(|i| sim.lvs().weight(i)).collect();
        let share = w[0] / w.iter().sum::<f64>();
        assert!((share - 0.125).abs() < 1e-9, "share {share}");
        // Other weights untouched.
        assert_eq!(&w[1..], &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn repeated_throttling_compounds() {
        let mut sim = loaded_sim(2);
        let admd = Admd::new(2);
        admd.throttle(&mut sim, 0, 1.0); // share 0.5 -> 0.25
        admd.throttle(&mut sim, 0, 1.0); // share 0.25 -> 0.125
        let w0 = sim.lvs().weight(0);
        let share = w0 / (w0 + 1.0);
        assert!((share - 0.125).abs() < 1e-9, "share {share}");
    }

    #[test]
    fn zero_output_still_caps_but_keeps_share() {
        let mut sim = loaded_sim(2);
        let mut admd = Admd::new(2);
        admd.sample_connections(&sim);
        admd.throttle(&mut sim, 0, 0.0);
        let w0 = sim.lvs().weight(0);
        assert!((w0 - 1.0).abs() < 1e-9, "weight changed to {w0}");
        assert!(sim.lvs().connection_cap(0).is_some());
    }

    #[test]
    fn connection_cap_uses_the_interval_average() {
        let mut sim = loaded_sim(2); // 20 connections per server
        let mut admd = Admd::new(2);
        admd.sample_connections(&sim);
        admd.sample_connections(&sim);
        assert_eq!(admd.average_connections(0), Some(20.0));
        admd.throttle(&mut sim, 0, 0.5);
        assert_eq!(sim.lvs().connection_cap(0), Some(20));
        // New interval forgets the samples.
        admd.end_interval();
        assert_eq!(admd.average_connections(0), None);
    }

    #[test]
    fn no_samples_means_no_cap() {
        let mut sim = loaded_sim(2);
        let admd = Admd::new(2);
        admd.throttle(&mut sim, 0, 1.0);
        assert_eq!(sim.lvs().connection_cap(0), None);
    }

    #[test]
    fn release_clears_weight_and_cap() {
        let mut sim = loaded_sim(2);
        let mut admd = Admd::new(2);
        admd.sample_connections(&sim);
        admd.throttle(&mut sim, 0, 2.0);
        assert!(sim.lvs().weight(0) < 1.0);
        admd.release(&mut sim, 0);
        assert_eq!(sim.lvs().weight(0), 1.0);
        assert_eq!(sim.lvs().connection_cap(0), None);
    }

    #[test]
    fn sole_server_weight_still_scales() {
        let mut sim = loaded_sim(1);
        let admd = Admd::new(1);
        admd.throttle(&mut sim, 0, 1.0);
        assert!((sim.lvs().weight(0) - 0.5).abs() < 1e-9);
    }
}
