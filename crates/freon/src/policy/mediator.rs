//! The mediation layer between policy decisions and actuators.
//!
//! A [`Mediator`] owns the standard actuator set in dependency order —
//! admission first (cheapest, most reversible), then frequency, then
//! fan, then power (most drastic) — plus any extension actuators pushed
//! by the embedder. `dispatch` routes an
//! [`ActionRequest`](crate::policy::ActionRequest) to the first actuator
//! that handles it and, when the actuator reports a real change, books
//! the decision under `mercury_freon_decisions_total{action,reason}`.

use crate::metrics::FreonMetrics;
use crate::policy::actuators::{
    ActionRequest, ActuationCtx, Actuator, AdmissionActuator, EngineCommand, FanActuator,
    FrequencyActuator, IncidentRecord, PowerActuator,
};
use crate::policy::spec::{ActionSpec, ReasonCode};
use cluster_sim::ClusterSim;
use std::borrow::Cow;
use telemetry::Tracer;

/// Dependency-ordered actuator mediation with decision telemetry.
#[derive(Debug)]
pub struct Mediator {
    admission: AdmissionActuator,
    frequency: FrequencyActuator,
    fan: FanActuator,
    power: PowerActuator,
    extra: Vec<Box<dyn Actuator + Send>>,
    commands: Vec<EngineCommand>,
    incidents: Vec<IncidentRecord>,
    metrics: FreonMetrics,
    tracer: Tracer,
}

impl Mediator {
    /// Creates the standard actuator set for an `n`-server cluster.
    pub fn new(
        n: usize,
        frequency_levels: Vec<f64>,
        connection_caps: bool,
        metrics: FreonMetrics,
    ) -> Self {
        Mediator {
            admission: AdmissionActuator::new(n, connection_caps),
            frequency: FrequencyActuator::new(frequency_levels, n),
            fan: FanActuator::new(n),
            power: PowerActuator,
            extra: Vec::new(),
            commands: Vec::new(),
            incidents: Vec::new(),
            metrics,
            tracer: Tracer::default(),
        }
    }

    /// Attaches a tracer; every subsequent dispatch records a
    /// `mediator.dispatch` span whose parent is the request's `cause`
    /// (the triggering `tempd.observe` span).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Appends an extension actuator, consulted after the standard set.
    pub fn push_actuator(&mut self, actuator: Box<dyn Actuator + Send>) {
        self.extra.push(actuator);
    }

    /// Routes a request to the first actuator handling its action.
    /// Returns whether an actuator applied a real change; only then is
    /// the decision counted.
    pub fn dispatch(&mut self, req: &ActionRequest, sim: &mut ClusterSim) -> bool {
        let span = self
            .tracer
            .start_child("mediator.dispatch", "freon", req.cause);
        let mut ctx = ActuationCtx {
            sim,
            commands: &mut self.commands,
            incidents: &mut self.incidents,
        };
        let standard: [&mut dyn Actuator; 4] = [
            &mut self.admission,
            &mut self.frequency,
            &mut self.fan,
            &mut self.power,
        ];
        let mut applied = None;
        for actuator in standard {
            if actuator.handles(&req.action) {
                applied = Some(actuator.apply(req, &mut ctx));
                break;
            }
        }
        if applied.is_none() {
            for actuator in &mut self.extra {
                if actuator.handles(&req.action) {
                    applied = Some(actuator.apply(req, &mut ctx));
                    break;
                }
            }
        }
        let applied = applied.unwrap_or(false);
        if applied {
            self.count(req);
        }
        if span.is_live() {
            self.tracer.end_with_args(
                span,
                vec![
                    (Cow::Borrowed("server"), req.server.to_string()),
                    (Cow::Borrowed("action"), req.action.name().to_string()),
                    (Cow::Borrowed("reason"), req.reason.as_str().to_string()),
                    (Cow::Borrowed("applied"), applied.to_string()),
                ],
            );
        }
        applied
    }

    fn count(&self, req: &ActionRequest) {
        match req.action {
            ActionSpec::Throttle => {
                self.metrics.record_output(req.output.unwrap_or(0.0));
                self.metrics.throttles.inc();
            }
            ActionSpec::Release => self.metrics.releases.inc(),
            ActionSpec::Shutdown => self.metrics.red_line_shutdowns.inc(),
            ActionSpec::PowerOn => match req.reason {
                ReasonCode::Replacement => self.metrics.power_ons_replacement.inc(),
                _ => self.metrics.power_ons_load.inc(),
            },
            ActionSpec::PowerOff => match req.reason {
                ReasonCode::Energy => self.metrics.power_offs_energy.inc(),
                _ => self.metrics.power_offs_heat.inc(),
            },
            ActionSpec::Shed { .. } => self.metrics.sheds.inc(),
            ActionSpec::StepDownFrequency => self.metrics.frequency_steps_down.inc(),
            ActionSpec::StepUpFrequency => self.metrics.frequency_steps_up.inc(),
            ActionSpec::SetFan { .. } => self.metrics.fan_commands.inc(),
        }
    }

    /// Records one LVS statistics sample (admission actuator).
    pub fn sample_connections(&mut self, sim: &ClusterSim) {
        self.admission.sample_connections(sim);
    }

    /// Closes the current admission observation interval.
    pub fn end_interval(&mut self) {
        self.admission.end_interval();
    }

    /// Drains the queued engine commands.
    pub fn take_commands(&mut self) -> Vec<EngineCommand> {
        std::mem::take(&mut self.commands)
    }

    /// The incident log so far.
    pub fn incidents(&self) -> &[IncidentRecord] {
        &self.incidents
    }

    /// The frequency actuator (for policies stepping ladders directly).
    pub fn frequency(&self) -> &FrequencyActuator {
        &self.frequency
    }

    /// The admission actuator.
    pub fn admission(&self) -> &AdmissionActuator {
        &self.admission
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::ServerConfig;

    #[test]
    fn dispatch_routes_counts_and_logs() {
        let mut sim = ClusterSim::homogeneous(2, ServerConfig::default());
        let metrics = FreonMetrics::new();
        let mut mediator = Mediator::new(
            2,
            crate::policy::DEFAULT_LEVELS.to_vec(),
            true,
            metrics.clone(),
        );

        let mut throttle = ActionRequest::new(0, ActionSpec::Throttle, ReasonCode::AboveHigh, 60);
        throttle.output = Some(0.4);
        assert!(mediator.dispatch(&throttle, &mut sim));
        assert_eq!(metrics.throttles.get(), 1);
        assert_eq!(metrics.activations.get(), 1);

        let shutdown = ActionRequest::new(1, ActionSpec::Shutdown, ReasonCode::RedLine, 60);
        assert!(mediator.dispatch(&shutdown, &mut sim));
        assert_eq!(metrics.red_line_shutdowns.get(), 1);
        assert_eq!(mediator.incidents().len(), 1);

        let fan = ActionRequest::new(
            0,
            ActionSpec::SetFan { cfm: 80.0 },
            ReasonCode::AboveHigh,
            60,
        );
        assert!(mediator.dispatch(&fan, &mut sim));
        // Duplicate fan command is deduped and NOT counted.
        assert!(!mediator.dispatch(&fan, &mut sim));
        assert_eq!(metrics.fan_commands.get(), 1);
        assert_eq!(mediator.take_commands().len(), 1);
        assert!(mediator.take_commands().is_empty());
    }

    #[test]
    fn frequency_saturation_is_not_a_decision() {
        let mut sim = ClusterSim::homogeneous(1, ServerConfig::default());
        let metrics = FreonMetrics::new();
        let mut mediator = Mediator::new(1, vec![1.0, 0.5], true, metrics.clone());
        let down = ActionRequest::new(0, ActionSpec::StepDownFrequency, ReasonCode::AboveHigh, 60);
        assert!(mediator.dispatch(&down, &mut sim));
        assert!(!mediator.dispatch(&down, &mut sim), "ladder exhausted");
        assert_eq!(metrics.frequency_steps_down.get(), 1);
        let up = ActionRequest::new(0, ActionSpec::StepUpFrequency, ReasonCode::BelowLow, 120);
        assert!(mediator.dispatch(&up, &mut sim));
        assert!(!mediator.dispatch(&up, &mut sim), "back at the top");
        assert_eq!(metrics.frequency_steps_up.get(), 1);
    }
}
