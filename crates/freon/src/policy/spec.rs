//! The declarative policy specification.
//!
//! A [`PolicySpec`] is the serializable description of a thermal policy:
//! which components are monitored against which thresholds, how often the
//! daemons wake, the PD-controller gains, and an ordered list of
//! *rules* — `(trigger, action, reason)` triples evaluated first-match
//! per server at every check boundary. The interpreter
//! ([`crate::policy::SpecPolicy`]) executes a spec; the built-in paper
//! policies (Freon, Freon-EC, traditional, none) are themselves specs
//! (see [`PolicySpec::builtin`] and the TOML files under
//! `crates/freon/policies/`), so everything the daemons can do is
//! reachable from a config file.
//!
//! Specs are read and written as TOML (via [`crate::policy::toml`]):
//!
//! ```toml
//! name = "load-shed"
//!
//! [[thresholds]]
//! component = "cpu"
//! high = 67.0
//! low = 64.0
//! red_line = 69.0
//!
//! [[rules]]
//! trigger = "red_line"
//! action = "shutdown"
//!
//! [[rules]]
//! trigger = "above_high"
//! action = "shed"
//! factor = 0.6
//!
//! [[rules]]
//! trigger = "below_low"
//! action = "release"
//! ```

use crate::config::{ComponentThresholds, EcConfig, FreonConfig};
use crate::policy::toml::{self, TomlError};
use serde::{DeError, Deserialize, Serialize, Value};

/// Which servers a policy observes at a check boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Gate {
    /// Observe every powered server (Freon's view: a booted server has
    /// sensors worth reading even while quiesced).
    #[default]
    Powered,
    /// Observe only servers currently accepting connections (the
    /// traditional baseline's view).
    Accepting,
}

impl Gate {
    fn as_str(self) -> &'static str {
        match self {
            Gate::Powered => "powered",
            Gate::Accepting => "accepting",
        }
    }

    fn parse(s: &str) -> Result<Self, DeError> {
        match s {
            "powered" => Ok(Gate::Powered),
            "accepting" => Ok(Gate::Accepting),
            other => Err(DeError::msg(format!("unknown gate `{other}`"))),
        }
    }
}

/// PD-controller gains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GainSpec {
    /// Proportional gain (paper: 0.1).
    pub kp: f64,
    /// Derivative gain (paper: 0.2).
    pub kd: f64,
}

impl Default for GainSpec {
    fn default() -> Self {
        GainSpec {
            kp: crate::controller::DEFAULT_KP,
            kd: crate::controller::DEFAULT_KD,
        }
    }
}

/// The condition side of a rule, matched against one server's
/// [`crate::TempdReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Any monitored component is at or above its red line.
    RedLine,
    /// Any monitored component is above its high threshold (`T_h`) — the
    /// PD controllers produce an output.
    AboveHigh,
    /// Every monitored component is below its low threshold (`T_l`).
    BelowLow,
}

impl Trigger {
    /// The TOML spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Trigger::RedLine => "red_line",
            Trigger::AboveHigh => "above_high",
            Trigger::BelowLow => "below_low",
        }
    }

    fn parse(s: &str) -> Result<Self, DeError> {
        match s {
            "red_line" => Ok(Trigger::RedLine),
            "above_high" => Ok(Trigger::AboveHigh),
            "below_low" => Ok(Trigger::BelowLow),
            other => Err(DeError::msg(format!("unknown trigger `{other}`"))),
        }
    }
}

/// The action side of a rule — what the mediator asks an actuator to do.
#[derive(Debug, Clone, PartialEq)]
pub enum ActionSpec {
    /// Rescale the server's LVS weight to `1/(output+1)` of its current
    /// share (plus a connection cap when enabled) — Freon's remote
    /// throttling.
    Throttle,
    /// Lift every admission restriction from the server.
    Release,
    /// Multiply the server's LVS weight by `factor` — thermally-aware
    /// load shedding without a controller.
    Shed {
        /// Weight multiplier per firing, in `(0, 1)`.
        factor: f64,
    },
    /// Quiesce the server and cut power immediately (the red-line last
    /// resort). Emits a structured [`crate::policy::IncidentRecord`].
    Shutdown,
    /// Quiesce the server and let it drain, then power off.
    PowerOff,
    /// Power the server on and return it to rotation.
    PowerOn,
    /// Step the server one level down its DVFS frequency ladder.
    StepDownFrequency,
    /// Step the server one level back up its frequency ladder.
    StepUpFrequency,
    /// Command the machine's fan to a fixed CFM (applied to the thermal
    /// model by the engine, via
    /// [`crate::policy::EngineCommand::SetFanCfm`]).
    SetFan {
        /// Target airflow, cubic feet per minute.
        cfm: f64,
    },
}

impl ActionSpec {
    /// The TOML spelling (parameters travel as sibling keys).
    pub fn name(&self) -> &'static str {
        match self {
            ActionSpec::Throttle => "throttle",
            ActionSpec::Release => "release",
            ActionSpec::Shed { .. } => "shed",
            ActionSpec::Shutdown => "shutdown",
            ActionSpec::PowerOff => "power_off",
            ActionSpec::PowerOn => "power_on",
            ActionSpec::StepDownFrequency => "step_down_frequency",
            ActionSpec::StepUpFrequency => "step_up_frequency",
            ActionSpec::SetFan { .. } => "set_fan",
        }
    }
}

/// Why a decision was made — the `reason` label on
/// `mercury_freon_decisions_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReasonCode {
    /// A component crossed its red line.
    RedLine,
    /// A component is above `T_h`.
    AboveHigh,
    /// Every component cooled below `T_l`.
    BelowLow,
    /// Projected utilization exceeds `U_h` (Freon-EC growth).
    ProjectedLoad,
    /// A cool server replaces a hot one (Freon-EC).
    Replacement,
    /// A hot server is removed because capacity allows it (Freon-EC).
    Heat,
    /// A server is removed to save energy (Freon-EC shrink).
    Energy,
}

impl ReasonCode {
    /// The metric-label spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ReasonCode::RedLine => "red_line",
            ReasonCode::AboveHigh => "above_high",
            ReasonCode::BelowLow => "below_low",
            ReasonCode::ProjectedLoad => "projected_load",
            ReasonCode::Replacement => "replacement",
            ReasonCode::Heat => "heat",
            ReasonCode::Energy => "energy",
        }
    }

    fn parse(s: &str) -> Result<Self, DeError> {
        match s {
            "red_line" => Ok(ReasonCode::RedLine),
            "above_high" => Ok(ReasonCode::AboveHigh),
            "below_low" => Ok(ReasonCode::BelowLow),
            "projected_load" => Ok(ReasonCode::ProjectedLoad),
            "replacement" => Ok(ReasonCode::Replacement),
            "heat" => Ok(ReasonCode::Heat),
            "energy" => Ok(ReasonCode::Energy),
            other => Err(DeError::msg(format!("unknown reason `{other}`"))),
        }
    }

    /// The canonical reason for a trigger, used when a rule omits one.
    pub fn for_trigger(trigger: Trigger) -> Self {
        match trigger {
            Trigger::RedLine => ReasonCode::RedLine,
            Trigger::AboveHigh => ReasonCode::AboveHigh,
            Trigger::BelowLow => ReasonCode::BelowLow,
        }
    }
}

/// One ordered action rule: when `trigger` fires for a server, ask the
/// mediator to perform `action`, tagged with `reason` for telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSpec {
    /// The firing condition.
    pub trigger: Trigger,
    /// What to do.
    pub action: ActionSpec,
    /// The reason code recorded with the decision.
    pub reason: ReasonCode,
}

/// The Freon-EC extension: utilization-driven growth/shrink of the
/// active server set, with room regions guiding replacements.
#[derive(Debug, Clone, PartialEq)]
pub struct EcSpec {
    /// Region id per server (index-aligned with the cluster).
    pub regions: Vec<usize>,
    /// `U_h`: add a server when projected utilization exceeds this.
    pub u_high: f64,
    /// `U_l`: remove servers while the post-removal average stays below.
    pub u_low: f64,
    /// Projection horizon in observation intervals.
    pub projection_intervals: u32,
}

impl EcSpec {
    /// Converts from the legacy struct.
    pub fn from_config(ec: &EcConfig) -> Self {
        EcSpec {
            regions: ec.regions.clone(),
            u_high: ec.u_high,
            u_low: ec.u_low,
            projection_intervals: ec.projection_intervals,
        }
    }

    /// Converts to the legacy struct.
    pub fn to_config(&self) -> EcConfig {
        EcConfig {
            regions: self.regions.clone(),
            u_high: self.u_high,
            u_low: self.u_low,
            projection_intervals: self.projection_intervals,
        }
    }
}

/// A complete declarative thermal policy.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySpec {
    /// Short policy name for logs, league tables, and metric exposition.
    pub name: String,
    /// Which servers the policy observes.
    pub gate: Gate,
    /// Seconds between temperature checks (paper: 60).
    pub check_period_s: u64,
    /// Seconds between LVS connection samples (paper: 5).
    pub sample_period_s: u64,
    /// Whether throttling also caps concurrent connections.
    pub connection_caps: bool,
    /// PD-controller gains.
    pub gains: GainSpec,
    /// Monitored components and their `T_l`/`T_h`/`T_r` thresholds.
    pub thresholds: Vec<ComponentThresholds>,
    /// Ordered action rules (first match per server wins).
    pub rules: Vec<RuleSpec>,
    /// The Freon-EC extension, when present.
    pub ec: Option<EcSpec>,
    /// Descending DVFS frequency ladder for the frequency actuator.
    pub frequency_levels: Vec<f64>,
}

/// Names of the built-in specs shipped inside the crate.
pub const BUILTIN_NAMES: &[&str] = &["none", "traditional", "freon", "freon-ec", "local-dvfs"];

impl PolicySpec {
    /// The standard thermal rule chain: red-line shutdown first, then
    /// `hot_action` above `T_h`, then release below `T_l`.
    fn standard_rules(hot_action: ActionSpec) -> Vec<RuleSpec> {
        vec![
            RuleSpec {
                trigger: Trigger::RedLine,
                action: ActionSpec::Shutdown,
                reason: ReasonCode::RedLine,
            },
            RuleSpec {
                trigger: Trigger::AboveHigh,
                action: hot_action,
                reason: ReasonCode::AboveHigh,
            },
            RuleSpec {
                trigger: Trigger::BelowLow,
                action: ActionSpec::Release,
                reason: ReasonCode::BelowLow,
            },
        ]
    }

    /// A policy that never acts (the experimental control).
    pub fn none() -> Self {
        PolicySpec {
            name: "none".to_string(),
            gate: Gate::Powered,
            check_period_s: 60,
            sample_period_s: 5,
            connection_caps: true,
            gains: GainSpec::default(),
            thresholds: Vec::new(),
            rules: Vec::new(),
            ec: None,
            frequency_levels: crate::policy::DEFAULT_LEVELS.to_vec(),
        }
    }

    /// The traditional baseline: ignore everything below the red line,
    /// then turn the server off.
    pub fn traditional(config: &FreonConfig) -> Self {
        PolicySpec {
            name: "traditional".to_string(),
            gate: Gate::Accepting,
            rules: vec![RuleSpec {
                trigger: Trigger::RedLine,
                action: ActionSpec::Shutdown,
                reason: ReasonCode::RedLine,
            }],
            ..PolicySpec::from_base_config(config)
        }
    }

    /// The base Freon policy (§4.1): PD-driven remote throttling.
    pub fn freon(config: &FreonConfig) -> Self {
        PolicySpec {
            name: "freon".to_string(),
            rules: Self::standard_rules(ActionSpec::Throttle),
            ..PolicySpec::from_base_config(config)
        }
    }

    /// Freon-EC (§4.2): the base policy plus the energy-conservation
    /// extension.
    pub fn freon_ec(config: &FreonConfig, ec: &EcConfig) -> Self {
        PolicySpec {
            name: "freon-ec".to_string(),
            rules: Self::standard_rules(ActionSpec::Throttle),
            ec: Some(EcSpec::from_config(ec)),
            ..PolicySpec::from_base_config(config)
        }
    }

    /// CPU-local DVFS (§4.3): each server steps its own frequency ladder.
    pub fn local_dvfs(config: &FreonConfig, levels: Vec<f64>) -> Self {
        PolicySpec {
            name: "local-dvfs".to_string(),
            thresholds: config.thresholds_for("cpu").cloned().into_iter().collect(),
            rules: vec![
                RuleSpec {
                    trigger: Trigger::RedLine,
                    action: ActionSpec::Shutdown,
                    reason: ReasonCode::RedLine,
                },
                RuleSpec {
                    trigger: Trigger::AboveHigh,
                    action: ActionSpec::StepDownFrequency,
                    reason: ReasonCode::AboveHigh,
                },
                RuleSpec {
                    trigger: Trigger::BelowLow,
                    action: ActionSpec::StepUpFrequency,
                    reason: ReasonCode::BelowLow,
                },
            ],
            frequency_levels: levels,
            ..PolicySpec::from_base_config(config)
        }
    }

    /// Carries the shared fields (thresholds, periods, gains, caps) over
    /// from a [`FreonConfig`]; name and rules are left for the caller.
    fn from_base_config(config: &FreonConfig) -> Self {
        PolicySpec {
            name: String::new(),
            gate: Gate::Powered,
            check_period_s: config.monitor_period_s,
            sample_period_s: config.sample_period_s,
            connection_caps: config.connection_caps,
            gains: GainSpec {
                kp: config.kp,
                kd: config.kd,
            },
            thresholds: config.thresholds.clone(),
            rules: Vec::new(),
            ec: None,
            frequency_levels: crate::policy::DEFAULT_LEVELS.to_vec(),
        }
    }

    /// The equivalent daemon configuration (thresholds, periods, gains),
    /// usable with [`crate::Tempd`] and the networked deployment.
    pub fn base_config(&self) -> FreonConfig {
        FreonConfig {
            thresholds: self.thresholds.clone(),
            monitor_period_s: self.check_period_s,
            sample_period_s: self.sample_period_s,
            kp: self.gains.kp,
            kd: self.gains.kd,
            connection_caps: self.connection_caps,
        }
    }

    /// Loads one of the built-in specs embedded in the crate (see
    /// [`BUILTIN_NAMES`]).
    pub fn builtin(name: &str) -> Option<Self> {
        let text = match name {
            "none" => include_str!("../../policies/none.toml"),
            "traditional" => include_str!("../../policies/traditional.toml"),
            "freon" => include_str!("../../policies/freon.toml"),
            "freon-ec" => include_str!("../../policies/freon_ec.toml"),
            "local-dvfs" => include_str!("../../policies/local_dvfs.toml"),
            _ => return None,
        };
        Some(Self::from_toml_str(text).expect("builtin specs are valid"))
    }

    /// Parses a spec from TOML text.
    ///
    /// # Errors
    ///
    /// Returns a [`TomlError`] for syntax errors, unknown keys, unknown
    /// trigger/action/reason names, or wrongly-typed fields. The result
    /// is *not* yet validated — call [`PolicySpec::validate`].
    pub fn from_toml_str(text: &str) -> Result<Self, TomlError> {
        toml::from_str(text)
    }

    /// Reads and parses a spec from a TOML file.
    ///
    /// # Errors
    ///
    /// Returns the I/O error or the parse error, both stringified with
    /// the path for context.
    pub fn from_toml_file(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read policy spec {}: {e}", path.display()))?;
        Self::from_toml_str(&text).map_err(|e| format!("in {}: {e}", path.display()))
    }

    /// Renders the spec as TOML.
    pub fn to_toml_string(&self) -> String {
        toml::to_string(self).expect("specs always serialize")
    }

    /// Whether any rule (or the EC extension) needs the admission
    /// actuator — and therefore LVS connection sampling.
    pub fn uses_admission(&self) -> bool {
        self.ec.is_some()
            || self.rules.iter().any(|r| {
                matches!(
                    r.action,
                    ActionSpec::Throttle | ActionSpec::Release | ActionSpec::Shed { .. }
                )
            })
    }

    /// Validates the spec's internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field/component and the
    /// offending values.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.trim().is_empty() {
            return Err("policy spec needs a non-empty `name`".to_string());
        }
        if self.check_period_s == 0 || self.sample_period_s == 0 {
            return Err(format!(
                "policy `{}`: check/sample periods must be positive, got {} / {}",
                self.name, self.check_period_s, self.sample_period_s
            ));
        }
        for t in &self.thresholds {
            t.validate()?;
        }
        for (i, t) in self.thresholds.iter().enumerate() {
            if self.thresholds[..i]
                .iter()
                .any(|o| o.component == t.component)
            {
                return Err(format!(
                    "policy `{}`: component `{}` has duplicate thresholds",
                    self.name, t.component
                ));
            }
        }
        if !self.rules.is_empty() && self.thresholds.is_empty() {
            return Err(format!(
                "policy `{}` has rules but no monitored components",
                self.name
            ));
        }
        for (i, rule) in self.rules.iter().enumerate() {
            if self.rules[..i].iter().any(|o| o.trigger == rule.trigger) {
                return Err(format!(
                    "policy `{}`: duplicate rule for trigger `{}` (the first match wins, later rules are dead)",
                    self.name,
                    rule.trigger.as_str()
                ));
            }
            match rule.action {
                ActionSpec::Shed { factor } if !(factor > 0.0 && factor < 1.0) => {
                    return Err(format!(
                        "policy `{}`: shed factor must be in (0, 1), got {factor}",
                        self.name
                    ));
                }
                ActionSpec::SetFan { cfm } if cfm.is_nan() || cfm <= 0.0 => {
                    return Err(format!(
                        "policy `{}`: fan cfm must be positive, got {cfm}",
                        self.name
                    ));
                }
                ActionSpec::StepDownFrequency | ActionSpec::StepUpFrequency
                    if self.frequency_levels.len() < 2 =>
                {
                    return Err(format!(
                        "policy `{}`: frequency rules need at least two ladder levels",
                        self.name
                    ));
                }
                _ => {}
            }
        }
        if !self.frequency_levels.is_empty() {
            let descending = self.frequency_levels.windows(2).all(|w| w[0] > w[1]);
            let in_range = self.frequency_levels.iter().all(|&l| l > 0.0 && l <= 1.0);
            if !descending || !in_range {
                return Err(format!(
                    "policy `{}`: frequency levels must be strictly descending within (0, 1], got {:?}",
                    self.name, self.frequency_levels
                ));
            }
        }
        if let Some(ec) = &self.ec {
            if ec.regions.is_empty() {
                return Err(format!(
                    "policy `{}`: ec.regions must not be empty",
                    self.name
                ));
            }
            if !(0.0 < ec.u_low && ec.u_low < ec.u_high && ec.u_high <= 1.0) {
                return Err(format!(
                    "policy `{}`: utilization thresholds must satisfy 0 < U_l < U_h <= 1, got {} / {}",
                    self.name, ec.u_low, ec.u_high
                ));
            }
        }
        Ok(())
    }

    /// Validates the spec against a concrete cluster size (the EC region
    /// map must cover exactly the cluster).
    ///
    /// # Errors
    ///
    /// Returns [`PolicySpec::validate`]'s errors plus region-map size
    /// mismatches.
    pub fn validate_for_cluster(&self, servers: usize) -> Result<(), String> {
        self.validate()?;
        if let Some(ec) = &self.ec {
            if ec.regions.len() != servers {
                return Err(format!(
                    "policy `{}`: region map covers {} servers but the cluster has {servers}",
                    self.name,
                    ec.regions.len()
                ));
            }
        }
        Ok(())
    }
}

// --- serde -----------------------------------------------------------------
//
// Hand-written: the derive stand-in has no `#[serde(default)]`, and the
// TOML surface wants optional fields with paper defaults plus strict
// unknown-key rejection.

fn expect_obj<'a>(v: &'a Value, what: &str) -> Result<&'a [(String, Value)], DeError> {
    match v {
        Value::Obj(entries) => Ok(entries),
        other => Err(DeError::msg(format!(
            "expected {what} table, found {other:?}"
        ))),
    }
}

fn reject_unknown(entries: &[(String, Value)], known: &[&str], what: &str) -> Result<(), DeError> {
    for (key, _) in entries {
        if !known.contains(&key.as_str()) {
            return Err(DeError::msg(format!("unknown key `{key}` in {what}")));
        }
    }
    Ok(())
}

fn opt_field<T: Deserialize>(entries: &[(String, Value)], key: &str) -> Result<Option<T>, DeError> {
    match entries.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v)
            .map(Some)
            .map_err(|e| DeError::msg(format!("field `{key}`: {}", e.0))),
        None => Ok(None),
    }
}

fn req_field<T: Deserialize>(
    entries: &[(String, Value)],
    key: &str,
    what: &str,
) -> Result<T, DeError> {
    opt_field(entries, key)?
        .ok_or_else(|| DeError::msg(format!("{what} is missing required key `{key}`")))
}

impl Serialize for GainSpec {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("kp".to_string(), Value::Num(self.kp)),
            ("kd".to_string(), Value::Num(self.kd)),
        ])
    }
}

impl Deserialize for GainSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = expect_obj(v, "[gains]")?;
        reject_unknown(entries, &["kp", "kd"], "[gains]")?;
        let default = GainSpec::default();
        Ok(GainSpec {
            kp: opt_field(entries, "kp")?.unwrap_or(default.kp),
            kd: opt_field(entries, "kd")?.unwrap_or(default.kd),
        })
    }
}

impl Serialize for EcSpec {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("regions".to_string(), self.regions.to_value()),
            ("u_high".to_string(), Value::Num(self.u_high)),
            ("u_low".to_string(), Value::Num(self.u_low)),
            (
                "projection_intervals".to_string(),
                Value::Num(self.projection_intervals as f64),
            ),
        ])
    }
}

impl Deserialize for EcSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = expect_obj(v, "[ec]")?;
        reject_unknown(
            entries,
            &["regions", "u_high", "u_low", "projection_intervals"],
            "[ec]",
        )?;
        Ok(EcSpec {
            regions: req_field(entries, "regions", "[ec]")?,
            u_high: opt_field(entries, "u_high")?.unwrap_or(0.70),
            u_low: opt_field(entries, "u_low")?.unwrap_or(0.60),
            projection_intervals: opt_field(entries, "projection_intervals")?.unwrap_or(2),
        })
    }
}

impl Serialize for RuleSpec {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            (
                "trigger".to_string(),
                Value::Str(self.trigger.as_str().to_string()),
            ),
            (
                "action".to_string(),
                Value::Str(self.action.name().to_string()),
            ),
        ];
        match &self.action {
            ActionSpec::Shed { factor } => {
                entries.push(("factor".to_string(), Value::Num(*factor)));
            }
            ActionSpec::SetFan { cfm } => {
                entries.push(("cfm".to_string(), Value::Num(*cfm)));
            }
            _ => {}
        }
        if self.reason != ReasonCode::for_trigger(self.trigger) {
            entries.push((
                "reason".to_string(),
                Value::Str(self.reason.as_str().to_string()),
            ));
        }
        Value::Obj(entries)
    }
}

impl Deserialize for RuleSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = expect_obj(v, "[[rules]]")?;
        reject_unknown(
            entries,
            &["trigger", "action", "reason", "factor", "cfm"],
            "[[rules]]",
        )?;
        let trigger = Trigger::parse(&req_field::<String>(entries, "trigger", "[[rules]]")?)?;
        let action_name = req_field::<String>(entries, "action", "[[rules]]")?;
        let factor = opt_field::<f64>(entries, "factor")?;
        let cfm = opt_field::<f64>(entries, "cfm")?;
        let action = match action_name.as_str() {
            "throttle" => ActionSpec::Throttle,
            "release" => ActionSpec::Release,
            "shed" => ActionSpec::Shed {
                factor: factor.ok_or_else(|| DeError::msg("action `shed` needs a `factor`"))?,
            },
            "shutdown" => ActionSpec::Shutdown,
            "power_off" => ActionSpec::PowerOff,
            "power_on" => ActionSpec::PowerOn,
            "step_down_frequency" => ActionSpec::StepDownFrequency,
            "step_up_frequency" => ActionSpec::StepUpFrequency,
            "set_fan" => ActionSpec::SetFan {
                cfm: cfm.ok_or_else(|| DeError::msg("action `set_fan` needs a `cfm`"))?,
            },
            other => {
                return Err(DeError::msg(format!(
                    "unknown action `{other}` (expected one of throttle, release, shed, \
                     shutdown, power_off, power_on, step_down_frequency, \
                     step_up_frequency, set_fan)"
                )))
            }
        };
        if factor.is_some() && !matches!(action, ActionSpec::Shed { .. }) {
            return Err(DeError::msg(format!(
                "`factor` is only valid with action `shed`, not `{action_name}`"
            )));
        }
        if cfm.is_some() && !matches!(action, ActionSpec::SetFan { .. }) {
            return Err(DeError::msg(format!(
                "`cfm` is only valid with action `set_fan`, not `{action_name}`"
            )));
        }
        let reason = match opt_field::<String>(entries, "reason")? {
            Some(s) => ReasonCode::parse(&s)?,
            None => ReasonCode::for_trigger(trigger),
        };
        Ok(RuleSpec {
            trigger,
            action,
            reason,
        })
    }
}

impl Serialize for PolicySpec {
    fn to_value(&self) -> Value {
        let mut entries = vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            (
                "gate".to_string(),
                Value::Str(self.gate.as_str().to_string()),
            ),
            (
                "check_period_s".to_string(),
                Value::Num(self.check_period_s as f64),
            ),
            (
                "sample_period_s".to_string(),
                Value::Num(self.sample_period_s as f64),
            ),
            (
                "connection_caps".to_string(),
                Value::Bool(self.connection_caps),
            ),
            (
                "frequency_levels".to_string(),
                self.frequency_levels.to_value(),
            ),
            ("gains".to_string(), self.gains.to_value()),
            ("thresholds".to_string(), self.thresholds.to_value()),
            ("rules".to_string(), self.rules.to_value()),
        ];
        if let Some(ec) = &self.ec {
            entries.push(("ec".to_string(), ec.to_value()));
        }
        Value::Obj(entries)
    }
}

impl Deserialize for PolicySpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = expect_obj(v, "policy spec")?;
        reject_unknown(
            entries,
            &[
                "name",
                "gate",
                "check_period_s",
                "sample_period_s",
                "connection_caps",
                "frequency_levels",
                "gains",
                "thresholds",
                "rules",
                "ec",
            ],
            "policy spec",
        )?;
        let gate = match opt_field::<String>(entries, "gate")? {
            Some(s) => Gate::parse(&s)?,
            None => Gate::Powered,
        };
        Ok(PolicySpec {
            name: req_field(entries, "name", "policy spec")?,
            gate,
            check_period_s: opt_field(entries, "check_period_s")?.unwrap_or(60),
            sample_period_s: opt_field(entries, "sample_period_s")?.unwrap_or(5),
            connection_caps: opt_field(entries, "connection_caps")?.unwrap_or(true),
            gains: opt_field(entries, "gains")?.unwrap_or_default(),
            thresholds: opt_field(entries, "thresholds")?.unwrap_or_default(),
            rules: opt_field(entries, "rules")?.unwrap_or_default(),
            ec: opt_field(entries, "ec")?,
            frequency_levels: opt_field(entries, "frequency_levels")?
                .unwrap_or_else(|| crate::policy::DEFAULT_LEVELS.to_vec()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_specs_match_the_programmatic_constructors() {
        let cfg = FreonConfig::paper();
        assert_eq!(PolicySpec::builtin("none").unwrap(), PolicySpec::none());
        assert_eq!(
            PolicySpec::builtin("traditional").unwrap(),
            PolicySpec::traditional(&cfg)
        );
        assert_eq!(
            PolicySpec::builtin("freon").unwrap(),
            PolicySpec::freon(&cfg)
        );
        assert_eq!(
            PolicySpec::builtin("freon-ec").unwrap(),
            PolicySpec::freon_ec(&cfg, &EcConfig::paper_four_servers())
        );
        assert_eq!(
            PolicySpec::builtin("local-dvfs").unwrap(),
            PolicySpec::local_dvfs(&cfg, crate::policy::DEFAULT_LEVELS.to_vec())
        );
        assert!(PolicySpec::builtin("made-up").is_none());
        for name in BUILTIN_NAMES {
            let spec = PolicySpec::builtin(name).unwrap();
            assert_eq!(&spec.name, name);
            spec.validate().unwrap();
        }
    }

    #[test]
    fn specs_round_trip_through_toml() {
        for name in BUILTIN_NAMES {
            let spec = PolicySpec::builtin(name).unwrap();
            let text = spec.to_toml_string();
            let back = PolicySpec::from_toml_str(&text).unwrap();
            assert_eq!(back, spec, "round trip failed for `{name}`:\n{text}");
        }
    }

    #[test]
    fn defaults_fill_missing_fields() {
        let spec = PolicySpec::from_toml_str("name = \"bare\"\n").unwrap();
        assert_eq!(spec.gate, Gate::Powered);
        assert_eq!(spec.check_period_s, 60);
        assert_eq!(spec.sample_period_s, 5);
        assert!(spec.connection_caps);
        assert_eq!(spec.gains, GainSpec::default());
        assert!(spec.rules.is_empty());
        assert!(spec.ec.is_none());
        spec.validate().unwrap();
    }

    #[test]
    fn unknown_keys_and_names_are_rejected() {
        assert!(PolicySpec::from_toml_str("name = \"x\"\ntypo_key = 1\n").is_err());
        let bad_action = "name = \"x\"\n[[thresholds]]\ncomponent = \"cpu\"\nhigh = 67.0\nlow = 64.0\nred_line = 69.0\n[[rules]]\ntrigger = \"above_high\"\naction = \"explode\"\n";
        let err = PolicySpec::from_toml_str(bad_action).unwrap_err();
        assert!(
            err.to_string().contains("unknown action `explode`"),
            "{err}"
        );
        let bad_trigger = "name = \"x\"\n[[rules]]\ntrigger = \"too_warm\"\naction = \"release\"\n";
        assert!(PolicySpec::from_toml_str(bad_trigger).is_err());
    }

    #[test]
    fn validation_names_the_offender() {
        let mut spec = PolicySpec::freon(&FreonConfig::paper());
        spec.thresholds[0].low = 70.0; // inverted: low > high
        let err = spec.validate().unwrap_err();
        assert!(err.contains("cpu"), "{err}");
        assert!(err.contains("70"), "{err}");

        let mut spec = PolicySpec::freon(&FreonConfig::paper());
        spec.check_period_s = 0;
        assert!(spec.validate().unwrap_err().contains("periods"));

        let mut spec = PolicySpec::freon(&FreonConfig::paper());
        spec.thresholds.clear();
        assert!(spec
            .validate()
            .unwrap_err()
            .contains("no monitored components"));

        let mut spec = PolicySpec::freon_ec(&FreonConfig::paper(), &EcConfig::paper_four_servers());
        spec.ec.as_mut().unwrap().u_low = 0.9;
        assert!(spec.validate().unwrap_err().contains("0.9"));
        let spec = PolicySpec::freon_ec(&FreonConfig::paper(), &EcConfig::paper_four_servers());
        assert!(spec.validate_for_cluster(4).is_ok());
        assert!(spec.validate_for_cluster(3).is_err());
    }

    #[test]
    fn rule_parameters_are_checked() {
        let shed = |factor: f64| PolicySpec {
            rules: vec![RuleSpec {
                trigger: Trigger::AboveHigh,
                action: ActionSpec::Shed { factor },
                reason: ReasonCode::AboveHigh,
            }],
            ..PolicySpec::freon(&FreonConfig::paper())
        };
        assert!(shed(0.5).validate().is_ok());
        assert!(shed(0.0).validate().is_err());
        assert!(shed(1.5).validate().is_err());

        // Duplicate triggers are dead rules under first-match-wins.
        let mut spec = PolicySpec::freon(&FreonConfig::paper());
        spec.rules.push(spec.rules[1].clone());
        assert!(spec.validate().unwrap_err().contains("duplicate rule"));

        // factor/cfm on the wrong action.
        let text = "name = \"x\"\n[[thresholds]]\ncomponent = \"cpu\"\nhigh = 67.0\nlow = 64.0\nred_line = 69.0\n[[rules]]\ntrigger = \"above_high\"\naction = \"throttle\"\nfactor = 0.5\n";
        assert!(PolicySpec::from_toml_str(text).is_err());
    }

    #[test]
    fn base_config_round_trips() {
        let cfg = FreonConfig {
            connection_caps: false,
            kd: 0.0,
            ..FreonConfig::paper()
        };
        assert_eq!(PolicySpec::freon(&cfg).base_config(), cfg);
    }
}
