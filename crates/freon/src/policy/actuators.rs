//! Composable actuators — the hands of a thermal policy.
//!
//! Each [`Actuator`] owns one lever over the cluster (admission weights,
//! DVFS frequency, fan airflow, machine power state). The
//! [`crate::policy::Mediator`] dispatches [`ActionRequest`]s to the first
//! actuator that handles the action, in a fixed dependency order, so the
//! decision logic (spec interpreter, legacy policies, ad hoc harnesses)
//! never touches the cluster directly.
//!
//! Actuators that cannot act on the simulated cluster alone — the fan
//! lives in the thermal model, which the policy never sees — queue an
//! [`EngineCommand`] instead; the experiment engine drains and applies
//! those after every control step.

use crate::admd::Admd;
use crate::policy::spec::{ActionSpec, ReasonCode};
use cluster_sim::ClusterSim;
use serde::{Deserialize, Serialize};

/// The default DVFS ladder: full speed plus four progressively slower
/// steps, mirroring the frequency/voltage pairs of mobile processors of
/// the paper's era.
pub const DEFAULT_LEVELS: [f64; 5] = [1.0, 0.85, 0.7, 0.55, 0.4];

/// One actuation request from a policy, routed by the mediator.
#[derive(Debug, Clone)]
pub struct ActionRequest {
    /// Target server index.
    pub server: usize,
    /// What to do.
    pub action: ActionSpec,
    /// Why — lands on the decision telemetry and in incident records.
    pub reason: ReasonCode,
    /// PD-controller output backing a throttle, when there is one.
    pub output: Option<f64>,
    /// Simulation time of the decision, seconds.
    pub now_s: u64,
    /// The component that triggered the rule, when known.
    pub component: Option<String>,
    /// That component's temperature at decision time, °C.
    pub temperature_c: Option<f64>,
    /// The threshold it crossed, °C.
    pub threshold_c: Option<f64>,
    /// Span id of the `tempd.observe` span that triggered this request
    /// (0 = untraced), so actuation spans link back to the observation.
    pub cause: u64,
}

impl ActionRequest {
    /// A bare request with no triggering-component context.
    pub fn new(server: usize, action: ActionSpec, reason: ReasonCode, now_s: u64) -> Self {
        ActionRequest {
            server,
            action,
            reason,
            output: None,
            now_s,
            component: None,
            temperature_c: None,
            threshold_c: None,
            cause: 0,
        }
    }
}

/// A side effect a policy asks the *engine* (not the cluster) to apply to
/// the thermal model.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineCommand {
    /// Set a machine's fan to a fixed airflow.
    SetFanCfm {
        /// Target machine index.
        server: usize,
        /// Airflow in cubic feet per minute.
        cfm: f64,
    },
}

/// A structured record of an emergency shutdown, kept by the power
/// actuator for operators and the scenario harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentRecord {
    /// Simulation time of the shutdown, seconds.
    pub time_s: u64,
    /// The server that was shut down.
    pub server: usize,
    /// The component that crossed its red line, when known.
    pub component: Option<String>,
    /// Its temperature at shutdown, °C.
    pub temperature_c: Option<f64>,
    /// The red-line threshold, °C.
    pub threshold_c: Option<f64>,
    /// The action taken (metric-label spelling).
    pub action: String,
    /// The reason code (metric-label spelling).
    pub reason: String,
}

/// Mutable state an actuator may touch while applying a request.
#[derive(Debug)]
pub struct ActuationCtx<'a> {
    /// The cluster under control.
    pub sim: &'a mut ClusterSim,
    /// Commands for the engine to apply to the thermal model.
    pub commands: &'a mut Vec<EngineCommand>,
    /// Incident log (appended by emergency shutdowns).
    pub incidents: &'a mut Vec<IncidentRecord>,
}

/// One lever over the cluster.
///
/// `apply` returns whether the actuator actually changed anything — a
/// frequency step at the end of its ladder, or a fan command equal to the
/// last one, returns `false` and is not counted as a decision.
pub trait Actuator: std::fmt::Debug {
    /// Short name for diagnostics.
    fn name(&self) -> &'static str;
    /// Whether this actuator implements `action`.
    fn handles(&self, action: &ActionSpec) -> bool;
    /// Applies the request; returns whether anything changed.
    fn apply(&mut self, req: &ActionRequest, ctx: &mut ActuationCtx<'_>) -> bool;
}

/// Admission control at the load balancer: weight rescaling, connection
/// caps, load shedding, and release. Owns the [`Admd`] sampler.
#[derive(Debug)]
pub struct AdmissionActuator {
    admd: Admd,
    connection_caps: bool,
}

impl AdmissionActuator {
    /// Creates the actuator for an `n`-server cluster.
    pub fn new(n: usize, connection_caps: bool) -> Self {
        AdmissionActuator {
            admd: Admd::new(n),
            connection_caps,
        }
    }

    /// Records one LVS statistics sample.
    pub fn sample_connections(&mut self, sim: &ClusterSim) {
        self.admd.sample_connections(sim);
    }

    /// Closes the current observation interval.
    pub fn end_interval(&mut self) {
        self.admd.end_interval();
    }

    /// The underlying admission daemon.
    pub fn admd(&self) -> &Admd {
        &self.admd
    }
}

impl Actuator for AdmissionActuator {
    fn name(&self) -> &'static str {
        "admission"
    }

    fn handles(&self, action: &ActionSpec) -> bool {
        matches!(
            action,
            ActionSpec::Throttle | ActionSpec::Release | ActionSpec::Shed { .. }
        )
    }

    fn apply(&mut self, req: &ActionRequest, ctx: &mut ActuationCtx<'_>) -> bool {
        match req.action {
            ActionSpec::Throttle => {
                self.admd
                    .rescale_weight(ctx.sim, req.server, req.output.unwrap_or(0.0));
                if self.connection_caps {
                    self.admd.apply_connection_cap(ctx.sim, req.server);
                }
                true
            }
            ActionSpec::Release => {
                self.admd.release(ctx.sim, req.server);
                true
            }
            ActionSpec::Shed { factor } => {
                let lvs = ctx.sim.lvs_mut();
                let weight = lvs.weight(req.server);
                lvs.set_weight(req.server, weight * factor);
                true
            }
            _ => false,
        }
    }
}

/// Machine power states: emergency shutdown (hard, with an incident
/// record), graceful power-off, and power-on.
#[derive(Debug, Default)]
pub struct PowerActuator;

impl Actuator for PowerActuator {
    fn name(&self) -> &'static str {
        "power"
    }

    fn handles(&self, action: &ActionSpec) -> bool {
        matches!(
            action,
            ActionSpec::Shutdown | ActionSpec::PowerOff | ActionSpec::PowerOn
        )
    }

    fn apply(&mut self, req: &ActionRequest, ctx: &mut ActuationCtx<'_>) -> bool {
        match req.action {
            ActionSpec::Shutdown => {
                ctx.sim.lvs_mut().set_quiesced(req.server, true);
                ctx.sim.server_mut(req.server).shutdown_hard();
                ctx.incidents.push(IncidentRecord {
                    time_s: req.now_s,
                    server: req.server,
                    component: req.component.clone(),
                    temperature_c: req.temperature_c,
                    threshold_c: req.threshold_c,
                    action: req.action.name().to_string(),
                    reason: req.reason.as_str().to_string(),
                });
                true
            }
            ActionSpec::PowerOff => {
                ctx.sim.lvs_mut().set_quiesced(req.server, true);
                ctx.sim.server_mut(req.server).shutdown_graceful();
                true
            }
            ActionSpec::PowerOn => {
                ctx.sim.server_mut(req.server).power_on();
                ctx.sim.lvs_mut().set_quiesced(req.server, false);
                ctx.sim.lvs_mut().clear_restrictions(req.server);
                true
            }
            _ => false,
        }
    }
}

/// Per-server DVFS frequency ladder (§4.3): each server walks a shared
/// descending list of speed scales.
#[derive(Debug)]
pub struct FrequencyActuator {
    levels: Vec<f64>,
    index: Vec<usize>,
    steps_down: u64,
}

impl FrequencyActuator {
    /// Creates the actuator with an explicit ladder for `n` servers.
    pub fn new(levels: Vec<f64>, n: usize) -> Self {
        FrequencyActuator {
            levels,
            index: vec![0; n],
            steps_down: 0,
        }
    }

    /// The current speed scale of `server`.
    pub fn scale(&self, server: usize) -> f64 {
        self.levels[self.index[server]]
    }

    /// Total downward steps taken across the cluster.
    pub fn steps_down(&self) -> u64 {
        self.steps_down
    }

    /// Steps `server` one ladder level down; returns whether it moved.
    pub fn step_down(&mut self, sim: &mut ClusterSim, server: usize) -> bool {
        if self.index[server] + 1 < self.levels.len() {
            self.index[server] += 1;
            sim.server_mut(server)
                .set_speed_scale(self.levels[self.index[server]]);
            self.steps_down += 1;
            true
        } else {
            false
        }
    }

    /// Steps `server` one ladder level back up; returns whether it moved.
    pub fn step_up(&mut self, sim: &mut ClusterSim, server: usize) -> bool {
        if self.index[server] > 0 {
            self.index[server] -= 1;
            sim.server_mut(server)
                .set_speed_scale(self.levels[self.index[server]]);
            true
        } else {
            false
        }
    }
}

impl Actuator for FrequencyActuator {
    fn name(&self) -> &'static str {
        "frequency"
    }

    fn handles(&self, action: &ActionSpec) -> bool {
        matches!(
            action,
            ActionSpec::StepDownFrequency | ActionSpec::StepUpFrequency
        )
    }

    fn apply(&mut self, req: &ActionRequest, ctx: &mut ActuationCtx<'_>) -> bool {
        match req.action {
            ActionSpec::StepDownFrequency => self.step_down(ctx.sim, req.server),
            ActionSpec::StepUpFrequency => self.step_up(ctx.sim, req.server),
            _ => false,
        }
    }
}

/// Fan airflow: queues [`EngineCommand::SetFanCfm`] for the engine,
/// deduplicating repeats of the last commanded CFM per machine.
#[derive(Debug)]
pub struct FanActuator {
    last_cfm: Vec<Option<f64>>,
}

impl FanActuator {
    /// Creates the actuator for an `n`-machine cluster.
    pub fn new(n: usize) -> Self {
        FanActuator {
            last_cfm: vec![None; n],
        }
    }
}

impl Actuator for FanActuator {
    fn name(&self) -> &'static str {
        "fan"
    }

    fn handles(&self, action: &ActionSpec) -> bool {
        matches!(action, ActionSpec::SetFan { .. })
    }

    fn apply(&mut self, req: &ActionRequest, ctx: &mut ActuationCtx<'_>) -> bool {
        let ActionSpec::SetFan { cfm } = req.action else {
            return false;
        };
        if self.last_cfm[req.server] == Some(cfm) {
            return false;
        }
        self.last_cfm[req.server] = Some(cfm);
        ctx.commands.push(EngineCommand::SetFanCfm {
            server: req.server,
            cfm,
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::ServerConfig;

    fn sim(n: usize) -> ClusterSim {
        ClusterSim::homogeneous(n, ServerConfig::default())
    }

    fn ctx<'a>(
        sim: &'a mut ClusterSim,
        commands: &'a mut Vec<EngineCommand>,
        incidents: &'a mut Vec<IncidentRecord>,
    ) -> ActuationCtx<'a> {
        ActuationCtx {
            sim,
            commands,
            incidents,
        }
    }

    #[test]
    fn shed_multiplies_the_weight() {
        let mut sim = sim(2);
        let mut adm = AdmissionActuator::new(2, true);
        let (mut cmds, mut inc) = (Vec::new(), Vec::new());
        let req = ActionRequest::new(
            0,
            ActionSpec::Shed { factor: 0.5 },
            ReasonCode::AboveHigh,
            60,
        );
        assert!(adm.apply(&req, &mut ctx(&mut sim, &mut cmds, &mut inc)));
        assert!((sim.lvs().weight(0) - 0.5).abs() < 1e-12);
        assert!(adm.apply(&req, &mut ctx(&mut sim, &mut cmds, &mut inc)));
        assert!((sim.lvs().weight(0) - 0.25).abs() < 1e-12);
        // Release restores the weight.
        let rel = ActionRequest::new(0, ActionSpec::Release, ReasonCode::BelowLow, 120);
        assert!(adm.apply(&rel, &mut ctx(&mut sim, &mut cmds, &mut inc)));
        assert_eq!(sim.lvs().weight(0), 1.0);
    }

    #[test]
    fn shutdown_records_an_incident() {
        let mut sim = sim(2);
        let mut power = PowerActuator;
        let (mut cmds, mut inc) = (Vec::new(), Vec::new());
        let mut req = ActionRequest::new(1, ActionSpec::Shutdown, ReasonCode::RedLine, 300);
        req.component = Some("cpu".to_string());
        req.temperature_c = Some(69.5);
        req.threshold_c = Some(69.0);
        assert!(power.apply(&req, &mut ctx(&mut sim, &mut cmds, &mut inc)));
        assert!(!sim.server(1).is_powered());
        assert_eq!(inc.len(), 1);
        assert_eq!(inc[0].server, 1);
        assert_eq!(inc[0].component.as_deref(), Some("cpu"));
        assert_eq!(inc[0].reason, "red_line");
        // Power back on clears quiescence.
        let on = ActionRequest::new(1, ActionSpec::PowerOn, ReasonCode::ProjectedLoad, 360);
        assert!(power.apply(&on, &mut ctx(&mut sim, &mut cmds, &mut inc)));
        assert!(sim.server(1).is_powered());
        assert!(!sim.lvs().is_quiesced(1));
    }

    #[test]
    fn frequency_ladder_saturates_at_both_ends() {
        let mut sim = sim(1);
        let mut freq = FrequencyActuator::new(vec![1.0, 0.8, 0.6], 1);
        assert_eq!(freq.scale(0), 1.0);
        assert!(!freq.step_up(&mut sim, 0), "already at the top");
        assert!(freq.step_down(&mut sim, 0));
        assert!(freq.step_down(&mut sim, 0));
        assert_eq!(freq.scale(0), 0.6);
        assert!((sim.server(0).speed_scale() - 0.6).abs() < 1e-12);
        assert!(!freq.step_down(&mut sim, 0), "bottom of the ladder");
        assert_eq!(freq.steps_down(), 2);
        assert!(freq.step_up(&mut sim, 0));
        assert_eq!(freq.scale(0), 0.8);
    }

    #[test]
    fn fan_actuator_dedupes_repeat_commands() {
        let mut sim = sim(2);
        let mut fan = FanActuator::new(2);
        let (mut cmds, mut inc) = (Vec::new(), Vec::new());
        let req = ActionRequest::new(
            0,
            ActionSpec::SetFan { cfm: 90.0 },
            ReasonCode::AboveHigh,
            60,
        );
        assert!(fan.apply(&req, &mut ctx(&mut sim, &mut cmds, &mut inc)));
        assert!(!fan.apply(&req, &mut ctx(&mut sim, &mut cmds, &mut inc)));
        let other = ActionRequest::new(
            0,
            ActionSpec::SetFan { cfm: 60.0 },
            ReasonCode::BelowLow,
            120,
        );
        assert!(fan.apply(&other, &mut ctx(&mut sim, &mut cmds, &mut inc)));
        assert_eq!(
            cmds,
            vec![
                EngineCommand::SetFanCfm {
                    server: 0,
                    cfm: 90.0
                },
                EngineCommand::SetFanCfm {
                    server: 0,
                    cfm: 60.0
                },
            ]
        );
    }
}
