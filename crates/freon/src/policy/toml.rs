//! A minimal TOML reader/writer over the workspace's `serde` stand-in.
//!
//! The build environment has no crates.io access, so — exactly like the
//! `serde_json` shim — this module renders a [`serde::Value`] tree to
//! TOML text and parses TOML text back into one. It covers the subset
//! policy specs need (and that the writer emits), which is most of
//! everyday TOML:
//!
//! * top-level and nested tables (`[gains]`), arrays of tables
//!   (`[[rule]]`), and dotted headers (`[a.b]`);
//! * bare and quoted keys; basic `"…"` strings with the common escapes;
//! * integers, floats, booleans, single- and multi-line arrays, and
//!   inline tables `{ a = 1 }`;
//! * `#` comments and blank lines.
//!
//! Not covered: datetimes, literal/multiline strings, and integer
//! formats beyond decimal — none of which appear in policy files.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A TOML parse or render failure, with a 1-based line number when the
/// input text is at fault.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlError {
    message: String,
    line: Option<usize>,
}

impl TomlError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        TomlError {
            message: message.into(),
            line: Some(line),
        }
    }

    fn msg(message: impl Into<String>) -> Self {
        TomlError {
            message: message.into(),
            line: None,
        }
    }
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "toml error (line {line}): {}", self.message),
            None => write!(f, "toml error: {}", self.message),
        }
    }
}

impl std::error::Error for TomlError {}

impl From<serde::DeError> for TomlError {
    fn from(e: serde::DeError) -> Self {
        TomlError::msg(e.0)
    }
}

/// Deserializes a value from TOML text.
///
/// # Errors
///
/// Returns a [`TomlError`] naming the offending line for syntax
/// problems, or the shape mismatch for deserialization problems.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, TomlError> {
    let value = parse_value_tree(text)?;
    T::from_value(&value).map_err(TomlError::from)
}

/// Parses TOML text into a [`Value`] tree (tables become
/// [`Value::Obj`], arrays of tables become [`Value::Arr`]).
///
/// # Errors
///
/// Returns a [`TomlError`] naming the offending line.
pub fn parse_value_tree(text: &str) -> Result<Value, TomlError> {
    Parser::new(text).parse()
}

/// Serializes a value to TOML text.
///
/// # Errors
///
/// Returns a [`TomlError`] when the value tree has a shape TOML cannot
/// express at the top level (anything but an object).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, TomlError> {
    let tree = value.to_value();
    let mut out = String::new();
    match &tree {
        Value::Obj(_) => write_table(&tree, &mut out, &[]),
        other => {
            return Err(TomlError::msg(format!(
                "top level must be a table, got {other:?}"
            )))
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    lines: Vec<&'a str>,
    /// Current physical line (0-based) for error reporting.
    index: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            lines: text.lines().collect(),
            index: 0,
        }
    }

    fn parse(&mut self) -> Result<Value, TomlError> {
        let mut root = Value::Obj(Vec::new());
        // Path of the table currently receiving `key = value` lines, and
        // whether the last segment addresses an array-of-tables element.
        let mut current: Vec<String> = Vec::new();
        let mut in_array_table = false;

        while self.index < self.lines.len() {
            let lineno = self.index + 1;
            let line = strip_comment(self.lines[self.index]).trim().to_string();
            self.index += 1;
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix("[[") {
                let header = header
                    .strip_suffix("]]")
                    .ok_or_else(|| TomlError::at(lineno, "unterminated [[table]] header"))?;
                current = parse_key_path(header, lineno)?;
                in_array_table = true;
                push_array_element(&mut root, &current, lineno)?;
            } else if let Some(header) = line.strip_prefix('[') {
                let header = header
                    .strip_suffix(']')
                    .ok_or_else(|| TomlError::at(lineno, "unterminated [table] header"))?;
                current = parse_key_path(header, lineno)?;
                in_array_table = false;
                ensure_table(&mut root, &current, lineno)?;
            } else {
                let eq = find_unquoted(&line, '=').ok_or_else(|| {
                    TomlError::at(lineno, format!("expected `key = value`, got `{line}`"))
                })?;
                let key_text = line[..eq].trim();
                let mut value_text = line[eq + 1..].trim().to_string();
                // Arrays and inline tables may continue over lines until
                // their brackets balance.
                while !brackets_balanced(&value_text) {
                    let next = self.lines.get(self.index).ok_or_else(|| {
                        TomlError::at(lineno, "unterminated array or inline table")
                    })?;
                    value_text.push(' ');
                    value_text.push_str(strip_comment(next).trim());
                    self.index += 1;
                }
                let mut path = current.clone();
                path.extend(parse_key_path(key_text, lineno)?);
                let value = parse_scalar(&value_text, lineno)?;
                insert(&mut root, &path, in_array_table, value, lineno)?;
            }
        }
        Ok(root)
    }
}

/// Removes a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    match find_unquoted(line, '#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Finds the first `needle` outside double-quoted strings.
fn find_unquoted(line: &str, needle: char) -> Option<usize> {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
        } else if c == '"' {
            in_string = true;
        } else if c == needle {
            return Some(i);
        }
    }
    None
}

/// Whether every `[`/`{` opened outside strings has been closed.
fn brackets_balanced(text: &str) -> bool {
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in text.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
        } else {
            match c {
                '"' => in_string = true,
                '[' | '{' => depth += 1,
                ']' | '}' => depth -= 1,
                _ => {}
            }
        }
    }
    depth <= 0
}

/// Splits a (possibly dotted, possibly quoted) key into its segments.
fn parse_key_path(text: &str, lineno: usize) -> Result<Vec<String>, TomlError> {
    let mut segments = Vec::new();
    let mut rest = text.trim();
    if rest.is_empty() {
        return Err(TomlError::at(lineno, "empty key"));
    }
    loop {
        rest = rest.trim_start();
        let (segment, tail) = if let Some(stripped) = rest.strip_prefix('"') {
            let close = stripped
                .find('"')
                .ok_or_else(|| TomlError::at(lineno, "unterminated quoted key"))?;
            (
                stripped[..close].to_string(),
                stripped[close + 1..].trim_start(),
            )
        } else {
            let end = rest.find('.').unwrap_or(rest.len());
            (rest[..end].trim().to_string(), &rest[end..])
        };
        if segment.is_empty() {
            return Err(TomlError::at(
                lineno,
                format!("empty key segment in `{text}`"),
            ));
        }
        segments.push(segment);
        let tail = tail.trim_start();
        if tail.is_empty() {
            return Ok(segments);
        }
        rest = tail.strip_prefix('.').ok_or_else(|| {
            TomlError::at(
                lineno,
                format!("expected `.` between key segments in `{text}`"),
            )
        })?;
    }
}

/// Parses one TOML value (scalar, array, or inline table).
fn parse_scalar(text: &str, lineno: usize) -> Result<Value, TomlError> {
    let text = text.trim();
    if text.is_empty() {
        return Err(TomlError::at(lineno, "missing value"));
    }
    if let Some(stripped) = text.strip_prefix('"') {
        return parse_string(stripped, lineno);
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| TomlError::at(lineno, "unterminated array"))?;
        let mut items = Vec::new();
        for piece in split_top_level(inner, lineno)? {
            items.push(parse_scalar(&piece, lineno)?);
        }
        return Ok(Value::Arr(items));
    }
    if let Some(inner) = text.strip_prefix('{') {
        let inner = inner
            .strip_suffix('}')
            .ok_or_else(|| TomlError::at(lineno, "unterminated inline table"))?;
        let mut entries = Vec::new();
        for piece in split_top_level(inner, lineno)? {
            let eq = find_unquoted(&piece, '=').ok_or_else(|| {
                TomlError::at(
                    lineno,
                    format!("expected `key = value` in inline table, got `{piece}`"),
                )
            })?;
            let key = parse_key_path(piece[..eq].trim(), lineno)?;
            if key.len() != 1 {
                return Err(TomlError::at(
                    lineno,
                    "dotted keys in inline tables are not supported",
                ));
            }
            entries.push((
                key[0].clone(),
                parse_scalar(piece[eq + 1..].trim(), lineno)?,
            ));
        }
        return Ok(Value::Obj(entries));
    }
    let cleaned = text.replace('_', "");
    cleaned
        .parse::<f64>()
        .map(Value::Num)
        .map_err(|_| TomlError::at(lineno, format!("unrecognized value `{text}`")))
}

/// Parses the remainder of a basic string (after the opening quote).
fn parse_string(rest: &str, lineno: usize) -> Result<Value, TomlError> {
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                let tail: String = chars.collect();
                if !tail.trim().is_empty() {
                    return Err(TomlError::at(
                        lineno,
                        format!("trailing characters after string: `{tail}`"),
                    ));
                }
                return Ok(Value::Str(out));
            }
            '\\' => match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                other => {
                    return Err(TomlError::at(
                        lineno,
                        format!("unsupported escape `\\{}`", other.unwrap_or(' ')),
                    ))
                }
            },
            other => out.push(other),
        }
    }
    Err(TomlError::at(lineno, "unterminated string"))
}

/// Splits `a, b, c` on top-level commas (outside strings and brackets).
fn split_top_level(text: &str, _lineno: usize) -> Result<Vec<String>, TomlError> {
    let mut pieces = Vec::new();
    let mut depth = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    let mut start = 0usize;
    for (i, c) in text.char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '[' | '{' => depth += 1,
            ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                pieces.push(text[start..i].trim().to_string());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = text[start..].trim();
    if !last.is_empty() {
        pieces.push(last.to_string());
    }
    pieces.retain(|p| !p.is_empty());
    Ok(pieces)
}

/// Navigates (creating) nested objects down `path`, following the last
/// element of any array-of-tables encountered on the way.
fn descend<'v>(
    root: &'v mut Value,
    path: &[String],
    lineno: usize,
) -> Result<&'v mut Value, TomlError> {
    let mut node = root;
    for segment in path {
        // Arrays of tables: descend into the most recent element.
        if matches!(node, Value::Arr(_)) {
            let Value::Arr(items) = node else {
                unreachable!()
            };
            node = items
                .last_mut()
                .ok_or_else(|| TomlError::at(lineno, "internal: empty array of tables"))?;
        }
        let Value::Obj(entries) = node else {
            return Err(TomlError::at(
                lineno,
                format!("`{segment}` addresses a non-table value"),
            ));
        };
        if !entries.iter().any(|(k, _)| k == segment) {
            entries.push((segment.clone(), Value::Obj(Vec::new())));
        }
        node = entries
            .iter_mut()
            .find(|(k, _)| k == segment)
            .map(|(_, v)| v)
            .expect("just inserted");
    }
    if matches!(node, Value::Arr(_)) {
        let Value::Arr(items) = node else {
            unreachable!()
        };
        node = items
            .last_mut()
            .ok_or_else(|| TomlError::at(lineno, "internal: empty array of tables"))?;
    }
    Ok(node)
}

fn ensure_table(root: &mut Value, path: &[String], lineno: usize) -> Result<(), TomlError> {
    descend(root, path, lineno).map(|_| ())
}

fn push_array_element(root: &mut Value, path: &[String], lineno: usize) -> Result<(), TomlError> {
    let (last, parents) = path
        .split_last()
        .ok_or_else(|| TomlError::at(lineno, "empty [[table]] header"))?;
    let parent = descend(root, parents, lineno)?;
    let Value::Obj(entries) = parent else {
        return Err(TomlError::at(
            lineno,
            "array-of-tables parent is not a table",
        ));
    };
    match entries.iter_mut().find(|(k, _)| k == last) {
        Some((_, Value::Arr(items))) => items.push(Value::Obj(Vec::new())),
        Some(_) => {
            return Err(TomlError::at(
                lineno,
                format!("`{last}` is already a non-array value"),
            ));
        }
        None => entries.push((last.clone(), Value::Arr(vec![Value::Obj(Vec::new())]))),
    }
    Ok(())
}

fn insert(
    root: &mut Value,
    path: &[String],
    via_array: bool,
    value: Value,
    lineno: usize,
) -> Result<(), TomlError> {
    let _ = via_array;
    let (last, parents) = path
        .split_last()
        .ok_or_else(|| TomlError::at(lineno, "empty key"))?;
    let parent = descend(root, parents, lineno)?;
    let Value::Obj(entries) = parent else {
        return Err(TomlError::at(
            lineno,
            format!("cannot set `{last}` on a non-table"),
        ));
    };
    if entries
        .iter()
        .any(|(k, v)| k == last && !matches!(v, Value::Obj(o) if o.is_empty()))
    {
        return Err(TomlError::at(lineno, format!("duplicate key `{last}`")));
    }
    entries.retain(|(k, _)| k != last);
    entries.push((last.clone(), value));
    Ok(())
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn is_table(v: &Value) -> bool {
    matches!(v, Value::Obj(_))
}

fn is_array_of_tables(v: &Value) -> bool {
    matches!(v, Value::Arr(items) if !items.is_empty() && items.iter().all(is_table))
}

fn write_table(table: &Value, out: &mut String, path: &[&str]) {
    let Value::Obj(entries) = table else { return };
    // Scalar keys first, then sub-tables, then arrays of tables — so the
    // emitted file parses back into the same tree.
    for (key, value) in entries {
        if !is_table(value) && !is_array_of_tables(value) {
            out.push_str(&format!("{} = {}\n", write_key(key), write_inline(value)));
        }
    }
    for (key, value) in entries {
        if is_table(value) {
            let mut sub = path.to_vec();
            sub.push(key);
            out.push_str(&format!("\n[{}]\n", sub.join(".")));
            write_table(value, out, &sub);
        }
    }
    for (key, value) in entries {
        if is_array_of_tables(value) {
            let Value::Arr(items) = value else {
                unreachable!()
            };
            let mut sub = path.to_vec();
            sub.push(key);
            for item in items {
                out.push_str(&format!("\n[[{}]]\n", sub.join(".")));
                write_table(item, out, &sub);
            }
        }
    }
}

fn write_key(key: &str) -> String {
    let bare = !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if bare {
        key.to_string()
    } else {
        write_inline(&Value::Str(key.to_string()))
    }
}

fn write_inline(v: &Value) -> String {
    match v {
        Value::Null => "\"\"".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Num(n) => {
            if n.fract() == 0.0 && n.is_finite() && n.abs() < 9.0e15 {
                // TOML distinguishes ints and floats; our Value does not.
                // Integers stay integers; spec floats that happen to be
                // whole numbers read back identically either way.
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        Value::Str(s) => {
            let mut out = String::from("\"");
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    other => out.push(other),
                }
            }
            out.push('"');
            out
        }
        Value::Arr(items) => {
            let inner: Vec<String> = items.iter().map(write_inline).collect();
            format!("[{}]", inner.join(", "))
        }
        Value::Obj(entries) => {
            let inner: Vec<String> = entries
                .iter()
                .map(|(k, v)| format!("{} = {}", write_key(k), write_inline(v)))
                .collect();
            format!("{{ {} }}", inner.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_scalars() {
        let text = r#"
            # a policy-ish document
            name = "freon"   # trailing comment
            check_period_s = 60
            caps = true

            [gains]
            kp = 0.1
            kd = 0.2

            [[rule]]
            trigger = "above_high"
            action = "throttle"

            [[rule]]
            trigger = "below_low"
            action = "release"
        "#;
        let v = parse_value_tree(text).unwrap();
        assert_eq!(v.get("name"), Some(&Value::Str("freon".into())));
        assert_eq!(v.get("check_period_s"), Some(&Value::Num(60.0)));
        assert_eq!(v.get("caps"), Some(&Value::Bool(true)));
        assert_eq!(v.get("gains").unwrap().get("kp"), Some(&Value::Num(0.1)));
        let Value::Arr(rules) = v.get("rule").unwrap() else {
            panic!("rules should be an array")
        };
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[1].get("action"), Some(&Value::Str("release".into())));
    }

    #[test]
    fn parses_multiline_arrays_and_inline_tables() {
        let text =
            "regions = [0, 1,\n  0, 1]\npoint = { x = 1, y = -2.5 }\nwords = [\"a\", \"b,c\"]\n";
        let v = parse_value_tree(text).unwrap();
        assert_eq!(
            v.get("regions"),
            Some(&Value::Arr(vec![
                Value::Num(0.0),
                Value::Num(1.0),
                Value::Num(0.0),
                Value::Num(1.0)
            ]))
        );
        assert_eq!(v.get("point").unwrap().get("y"), Some(&Value::Num(-2.5)));
        let Value::Arr(words) = v.get("words").unwrap() else {
            panic!()
        };
        assert_eq!(words[1], Value::Str("b,c".into()));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_value_tree("ok = 1\nnot a kv line\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = parse_value_tree("x = \"unterminated\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        assert!(parse_value_tree("dup = 1\ndup = 2\n").is_err());
    }

    #[test]
    fn writer_round_trips_spec_shaped_trees() {
        let tree = Value::Obj(vec![
            ("name".into(), Value::Str("load-shed".into())),
            ("period".into(), Value::Num(60.0)),
            (
                "gains".into(),
                Value::Obj(vec![
                    ("kp".into(), Value::Num(0.1)),
                    ("kd".into(), Value::Num(0.2)),
                ]),
            ),
            (
                "rule".into(),
                Value::Arr(vec![
                    Value::Obj(vec![
                        ("trigger".into(), Value::Str("above_high".into())),
                        ("factor".into(), Value::Num(0.5)),
                    ]),
                    Value::Obj(vec![("trigger".into(), Value::Str("below_low".into()))]),
                ]),
            ),
        ]);
        let text = to_string(&tree).unwrap();
        let back = parse_value_tree(&text).unwrap();
        assert_eq!(back, tree, "round-trip failed for:\n{text}");
    }

    #[test]
    fn strings_with_specials_round_trip() {
        let tree = Value::Obj(vec![(
            "s".into(),
            Value::Str("a \"quoted\" piece, with\nnewline # not a comment".into()),
        )]);
        let text = to_string(&tree).unwrap();
        assert_eq!(parse_value_tree(&text).unwrap(), tree);
    }
}
