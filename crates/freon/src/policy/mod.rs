//! The policy framework: declarative specs, composable actuators, and
//! the interpreter tying them together.
//!
//! Three layers:
//!
//! 1. **Spec** ([`PolicySpec`], [`spec`]) — a declarative, serializable
//!    description of a thermal policy: monitored components and
//!    thresholds, check/sample periods, PD gains, and ordered
//!    `(trigger, action, reason)` rules. Specs load from TOML files
//!    ([`toml`]) and the paper's policies ship as built-in specs.
//! 2. **Actuators** ([`actuators`], mediated by [`Mediator`]) — each
//!    lever over the cluster (admission weights, DVFS frequency, fan
//!    CFM, power states) behind one [`Actuator`] trait, dispatched in
//!    dependency order with every applied action counted under
//!    `mercury_freon_decisions_total{action,reason}`.
//! 3. **Interpreter** ([`SpecPolicy`], [`interp`]) — executes a spec
//!    against per-server [`Tempd`](crate::Tempd) reports, including the
//!    Freon-EC Figure 10 loop when the spec carries an `[ec]` section.
//!
//! The legacy policy types ([`FreonPolicy`], [`FreonEcPolicy`],
//! [`TraditionalPolicy`], [`NoPolicy`], in [`builtins`]) wrap the
//! interpreter and keep their historical constructors and accessors.

pub mod actuators;
pub mod builtins;
pub mod interp;
pub mod mediator;
pub mod spec;
pub mod toml;

pub use actuators::{
    ActionRequest, ActuationCtx, Actuator, AdmissionActuator, EngineCommand, FanActuator,
    FrequencyActuator, IncidentRecord, PowerActuator, DEFAULT_LEVELS,
};
pub use builtins::{FreonEcPolicy, FreonPolicy, NoPolicy, TraditionalPolicy};
pub use interp::SpecPolicy;
pub use mediator::Mediator;
pub use spec::{
    ActionSpec, EcSpec, GainSpec, Gate, PolicySpec, ReasonCode, RuleSpec, Trigger, BUILTIN_NAMES,
};
pub use toml::TomlError;

use crate::engine::ServerSnapshot;
use cluster_sim::ClusterSim;
use telemetry::{Registry, Tracer};

/// A cluster-level thermal-management policy, invoked once per simulated
/// second with fresh temperatures and utilizations. Policies do their own
/// internal scheduling (the paper's daemons wake once per minute and
/// sample LVS every five seconds).
pub trait ThermalPolicy: std::fmt::Debug {
    /// Short name for logs and reports.
    fn name(&self) -> &str;

    /// Observes the cluster and optionally actuates the balancer/servers.
    fn control(&mut self, now_s: u64, snapshots: &[ServerSnapshot], sim: &mut ClusterSim);

    /// Registers the policy's `mercury_freon_*` metric families on
    /// `registry`, so a scrape of e.g. a
    /// [`mercury::net::SolverService`] registry includes the control
    /// loop's decision counters. The default registers nothing —
    /// appropriate for policies that never act (like [`NoPolicy`]).
    fn register_metrics(&self, _registry: &Registry) {}

    /// Drains commands the policy wants the *engine* to apply to the
    /// thermal model (e.g. fan CFM changes, which live outside the
    /// cluster simulator). The engine calls this after every control
    /// step; the default has none.
    fn drain_engine_commands(&mut self) -> Vec<EngineCommand> {
        Vec::new()
    }

    /// Attaches a tracer for decision-chain spans (`tempd.observe` →
    /// `policy.rule` → `mediator.dispatch`). The experiment engine calls
    /// this once before the run; the default ignores it — appropriate
    /// for policies that never act.
    fn set_tracer(&mut self, _tracer: Tracer) {}

    /// Structured records of emergency shutdowns so far; the engine's
    /// flight recorder turns new entries into red-line incident
    /// bundles. The default has none.
    fn incidents(&self) -> &[IncidentRecord] {
        &[]
    }
}
