//! The paper's policies as thin wrappers over the spec interpreter.
//!
//! Each wrapper builds its [`PolicySpec`](crate::policy::PolicySpec)
//! from the legacy config structs and delegates everything to
//! [`SpecPolicy`], so the historical constructor signatures and
//! accessors keep working while the actual decision logic lives in one
//! interpreter. Construction fails fast: an invalid config (inverted
//! thresholds, zero periods, bad region map) panics with a message
//! naming the offending component and values.

use crate::config::{EcConfig, FreonConfig};
use crate::engine::ServerSnapshot;
use crate::metrics::FreonMetrics;
use crate::policy::actuators::EngineCommand;
use crate::policy::interp::SpecPolicy;
use crate::policy::spec::PolicySpec;
use crate::policy::ThermalPolicy;
use cluster_sim::ClusterSim;
use telemetry::{Registry, Tracer};

fn build(spec: PolicySpec, n: usize) -> SpecPolicy {
    let name = spec.name.clone();
    SpecPolicy::new(spec, n)
        .unwrap_or_else(|e| panic!("invalid `{name}` policy configuration: {e}"))
}

/// A policy that never intervenes — the control for validation runs.
#[derive(Debug, Clone, Default)]
pub struct NoPolicy;

impl ThermalPolicy for NoPolicy {
    fn name(&self) -> &str {
        "none"
    }

    fn control(&mut self, _now_s: u64, _snapshots: &[ServerSnapshot], _sim: &mut ClusterSim) {}
}

/// The traditional approach (§5.1): ignore temperatures until a component
/// crosses its red line, then turn the server off. Servers stay off for
/// the rest of the run (the emergency persists, so they would immediately
/// red-line again).
#[derive(Debug)]
pub struct TraditionalPolicy {
    inner: SpecPolicy,
}

impl TraditionalPolicy {
    /// Creates the baseline for an `n`-server cluster.
    ///
    /// # Panics
    ///
    /// Panics when `config` is invalid, naming the offending component
    /// and values.
    pub fn new(config: FreonConfig, n: usize) -> Self {
        TraditionalPolicy {
            inner: build(PolicySpec::traditional(&config), n),
        }
    }

    /// When each server was turned off (`None` = survived the run).
    pub fn shutdown_times(&self) -> &[Option<u64>] {
        self.inner.shutdown_times()
    }

    /// The policy's telemetry handles.
    pub fn metrics(&self) -> &FreonMetrics {
        self.inner.metrics()
    }
}

impl ThermalPolicy for TraditionalPolicy {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn control(&mut self, now_s: u64, snapshots: &[ServerSnapshot], sim: &mut ClusterSim) {
        self.inner.control(now_s, snapshots, sim);
    }

    fn register_metrics(&self, registry: &Registry) {
        self.inner.register_metrics(registry);
    }

    fn drain_engine_commands(&mut self) -> Vec<EngineCommand> {
        self.inner.drain_engine_commands()
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.inner.set_tracer(tracer);
    }

    fn incidents(&self) -> &[crate::policy::IncidentRecord] {
        ThermalPolicy::incidents(&self.inner)
    }
}

/// The base Freon policy (§4.1): remote throttling via LVS weights and
/// connection caps, driven by per-server PD controllers; red-line
/// shutdown only as the last resort.
#[derive(Debug)]
pub struct FreonPolicy {
    inner: SpecPolicy,
}

impl FreonPolicy {
    /// Creates the policy for an `n`-server cluster.
    ///
    /// # Panics
    ///
    /// Panics when `config` is invalid, naming the offending component
    /// and values.
    pub fn new(config: FreonConfig, n: usize) -> Self {
        FreonPolicy {
            inner: build(PolicySpec::freon(&config), n),
        }
    }

    /// The policy's telemetry handles.
    pub fn metrics(&self) -> &FreonMetrics {
        self.inner.metrics()
    }

    /// How many load-distribution adjustments admd has made.
    pub fn adjustments(&self) -> u64 {
        self.inner.adjustments()
    }

    /// How many servers were lost to red-line shutdowns.
    pub fn red_line_shutdowns(&self) -> u64 {
        self.inner.red_line_shutdowns()
    }

    /// Which servers currently carry restrictions.
    pub fn restricted(&self) -> &[bool] {
        self.inner.restricted()
    }

    /// Structured records of every emergency shutdown so far.
    pub fn incidents(&self) -> &[crate::policy::IncidentRecord] {
        self.inner.incidents()
    }
}

impl ThermalPolicy for FreonPolicy {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn control(&mut self, now_s: u64, snapshots: &[ServerSnapshot], sim: &mut ClusterSim) {
        self.inner.control(now_s, snapshots, sim);
    }

    fn register_metrics(&self, registry: &Registry) {
        self.inner.register_metrics(registry);
    }

    fn drain_engine_commands(&mut self) -> Vec<EngineCommand> {
        self.inner.drain_engine_commands()
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.inner.set_tracer(tracer);
    }

    fn incidents(&self) -> &[crate::policy::IncidentRecord] {
        ThermalPolicy::incidents(&self.inner)
    }
}

/// Freon-EC (§4.2, Figure 10): the base thermal policy plus cluster
/// reconfiguration for energy conservation, with room regions guiding
/// which servers replace which.
#[derive(Debug)]
pub struct FreonEcPolicy {
    inner: SpecPolicy,
}

impl FreonEcPolicy {
    /// Creates Freon-EC for a cluster of `ec.regions.len()` servers.
    ///
    /// # Panics
    ///
    /// Panics when the config is invalid, naming the offending component
    /// and values.
    pub fn new(config: FreonConfig, ec: EcConfig) -> Self {
        let n = ec.regions.len();
        FreonEcPolicy {
            inner: build(PolicySpec::freon_ec(&config, &ec), n),
        }
    }

    /// The policy's telemetry handles.
    pub fn metrics(&self) -> &FreonMetrics {
        self.inner.metrics()
    }

    /// Servers powered on by the policy so far.
    pub fn power_ons(&self) -> u64 {
        self.inner.power_ons()
    }

    /// Servers powered off by the policy so far.
    pub fn power_offs(&self) -> u64 {
        self.inner.power_offs()
    }

    /// Load-distribution adjustments made by the base thermal policy.
    pub fn adjustments(&self) -> u64 {
        self.inner.adjustments()
    }

    /// Current per-region emergency counts.
    pub fn region_emergencies(&self) -> &[i64] {
        self.inner.region_emergencies()
    }
}

impl ThermalPolicy for FreonEcPolicy {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn control(&mut self, now_s: u64, snapshots: &[ServerSnapshot], sim: &mut ClusterSim) {
        self.inner.control(now_s, snapshots, sim);
    }

    fn register_metrics(&self, registry: &Registry) {
        self.inner.register_metrics(registry);
    }

    fn drain_engine_commands(&mut self) -> Vec<EngineCommand> {
        self.inner.drain_engine_commands()
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.inner.set_tracer(tracer);
    }

    fn incidents(&self) -> &[crate::policy::IncidentRecord] {
        ThermalPolicy::incidents(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::ServerConfig;

    fn snapshots(specs: &[(f64, f64, bool)]) -> Vec<ServerSnapshot> {
        // (cpu_temp, cpu_util, powered)
        specs
            .iter()
            .map(|&(temp, util, powered)| ServerSnapshot {
                temps: vec![
                    ("cpu".to_string(), temp),
                    ("disk_platters".to_string(), 40.0),
                ],
                cpu_util: util,
                disk_util: util * 0.2,
                connections: (util * 50.0) as usize,
                powered,
                accepting: powered,
            })
            .collect()
    }

    #[test]
    fn freon_throttles_only_at_monitor_boundaries() {
        let mut policy = FreonPolicy::new(FreonConfig::paper(), 2);
        let mut sim = ClusterSim::homogeneous(2, ServerConfig::default());
        let snaps = snapshots(&[(68.0, 0.7, true), (60.0, 0.7, true)]);
        policy.control(59, &snaps, &mut sim);
        assert_eq!(policy.adjustments(), 0);
        policy.control(60, &snaps, &mut sim);
        assert_eq!(policy.adjustments(), 1);
        assert!(sim.lvs().weight(0) < 1.0);
        assert_eq!(sim.lvs().weight(1), 1.0);
        assert!(policy.restricted()[0]);
    }

    #[test]
    fn freon_releases_after_cooling_below_low() {
        let mut policy = FreonPolicy::new(FreonConfig::paper(), 2);
        let mut sim = ClusterSim::homogeneous(2, ServerConfig::default());
        policy.control(
            60,
            &snapshots(&[(68.0, 0.7, true), (60.0, 0.7, true)]),
            &mut sim,
        );
        assert!(sim.lvs().weight(0) < 1.0);
        // Still warm (between T_l and T_h): restrictions stay.
        policy.control(
            120,
            &snapshots(&[(65.0, 0.5, true), (60.0, 0.7, true)]),
            &mut sim,
        );
        assert!(sim.lvs().weight(0) < 1.0);
        // Cool below T_l=64: released.
        policy.control(
            180,
            &snapshots(&[(63.0, 0.4, true), (60.0, 0.7, true)]),
            &mut sim,
        );
        assert_eq!(sim.lvs().weight(0), 1.0);
        assert!(!policy.restricted()[0]);
    }

    #[test]
    fn freon_red_line_turns_the_server_off() {
        let mut policy = FreonPolicy::new(FreonConfig::paper(), 2);
        let mut sim = ClusterSim::homogeneous(2, ServerConfig::default());
        policy.control(
            60,
            &snapshots(&[(69.5, 0.9, true), (60.0, 0.5, true)]),
            &mut sim,
        );
        assert_eq!(policy.red_line_shutdowns(), 1);
        assert!(!sim.server(0).is_powered());
        assert!(sim.lvs().is_quiesced(0));
        // The shutdown produced a structured incident record.
        assert_eq!(policy.incidents().len(), 1);
        assert_eq!(policy.incidents()[0].component.as_deref(), Some("cpu"));
    }

    #[test]
    fn traditional_ignores_everything_below_red_line() {
        let mut policy = TraditionalPolicy::new(FreonConfig::paper(), 2);
        let mut sim = ClusterSim::homogeneous(2, ServerConfig::default());
        policy.control(
            60,
            &snapshots(&[(68.5, 0.9, true), (60.0, 0.5, true)]),
            &mut sim,
        );
        assert!(sim.server(0).is_powered(), "68.5 < red line 69: no action");
        assert_eq!(sim.lvs().weight(0), 1.0);
        policy.control(
            120,
            &snapshots(&[(69.2, 0.9, true), (60.0, 0.5, true)]),
            &mut sim,
        );
        assert!(!sim.server(0).is_powered());
        assert_eq!(policy.shutdown_times(), &[Some(120), None]);
    }

    #[test]
    fn ec_shrinks_under_light_load() {
        let mut policy = FreonEcPolicy::new(FreonConfig::paper(), EcConfig::paper_four_servers());
        let mut sim = ClusterSim::homogeneous(4, ServerConfig::default());
        let light = snapshots(&[(40.0, 0.1, true); 4]);
        policy.control(60, &light, &mut sim);
        // avg 0.1 over 4 servers -> one server would run at 0.4 < 0.6.
        assert!(
            policy.power_offs() >= 3,
            "power offs: {}",
            policy.power_offs()
        );
        assert_eq!(sim.active_servers(), 1);
    }

    #[test]
    fn ec_grows_on_projected_load() {
        let mut policy = FreonEcPolicy::new(FreonConfig::paper(), EcConfig::paper_four_servers());
        let mut sim = ClusterSim::homogeneous(4, ServerConfig::default());
        // Start with three servers off.
        for i in 1..4 {
            sim.lvs_mut().set_quiesced(i, true);
            sim.server_mut(i).shutdown_hard();
        }
        let mut snaps = snapshots(&[
            (50.0, 0.5, true),
            (30.0, 0.0, false),
            (30.0, 0.0, false),
            (30.0, 0.0, false),
        ]);
        policy.control(60, &snaps, &mut sim);
        // First observation: no history, no projection, 0.5 < 0.7.
        assert_eq!(policy.power_ons(), 0);
        // Load rising: 0.5 -> 0.65, projected 0.65 + 2·0.15 = 0.95 > 0.7.
        snaps[0].cpu_util = 0.65;
        policy.control(120, &snaps, &mut sim);
        assert_eq!(policy.power_ons(), 1);
        assert_eq!(sim.powered_servers(), 2);
    }

    #[test]
    fn ec_replaces_hot_server_from_other_region() {
        let mut policy = FreonEcPolicy::new(FreonConfig::paper(), EcConfig::paper_four_servers());
        let mut sim = ClusterSim::homogeneous(4, ServerConfig::default());
        // Servers 2 and 3 off; servers 0 and 1 at healthy load.
        for i in 2..4 {
            sim.lvs_mut().set_quiesced(i, true);
            sim.server_mut(i).shutdown_hard();
        }
        // Server 0 (region 0) crosses T_h; load too high to just remove it.
        let snaps = snapshots(&[
            (68.0, 0.6, true),
            (55.0, 0.6, true),
            (30.0, 0.0, false),
            (30.0, 0.0, false),
        ]);
        policy.control(60, &snaps, &mut sim);
        assert_eq!(policy.region_emergencies()[0], 1);
        // A replacement was powered on and the hot server taken out.
        assert!(policy.power_ons() >= 1, "no replacement powered on");
        assert!(sim.lvs().is_quiesced(0), "hot server still in rotation");
        // The replacement should come from region 1 (no emergency there):
        // region 1's off server is index 3.
        assert!(sim.server(3).is_powered() || sim.server(1).is_powered());
    }

    #[test]
    fn ec_emergency_counts_decrement_on_cooling() {
        let mut policy = FreonEcPolicy::new(FreonConfig::paper(), EcConfig::paper_four_servers());
        let mut sim = ClusterSim::homogeneous(4, ServerConfig::default());
        let hot = snapshots(&[
            (68.0, 0.8, true),
            (66.0, 0.8, true),
            (60.0, 0.8, true),
            (60.0, 0.8, true),
        ]);
        policy.control(60, &hot, &mut sim);
        assert_eq!(policy.region_emergencies()[0], 1);
        let cool = snapshots(&[
            (63.0, 0.5, true),
            (60.0, 0.5, true),
            (55.0, 0.5, true),
            (55.0, 0.5, true),
        ]);
        policy.control(120, &cool, &mut sim);
        assert_eq!(policy.region_emergencies()[0], 0);
    }

    #[test]
    fn ec_never_removes_the_last_server() {
        let mut policy = FreonEcPolicy::new(
            FreonConfig::paper(),
            EcConfig {
                regions: vec![0],
                ..EcConfig::paper_four_servers()
            },
        );
        let mut sim = ClusterSim::homogeneous(1, ServerConfig::default());
        let idle = snapshots(&[(30.0, 0.0, true)]);
        policy.control(60, &idle, &mut sim);
        policy.control(120, &idle, &mut sim);
        assert_eq!(sim.active_servers(), 1);
        assert_eq!(policy.power_offs(), 0);
    }

    #[test]
    fn policy_decisions_land_in_the_metrics_registry() {
        let mut policy = FreonPolicy::new(FreonConfig::paper(), 2);
        let registry = Registry::new();
        policy.register_metrics(&registry);
        let mut sim = ClusterSim::homogeneous(2, ServerConfig::default());
        // Throttle at 60, release at 120, red-line at 180.
        policy.control(
            60,
            &snapshots(&[(68.0, 0.7, true), (60.0, 0.7, true)]),
            &mut sim,
        );
        policy.control(
            120,
            &snapshots(&[(63.0, 0.4, true), (60.0, 0.7, true)]),
            &mut sim,
        );
        policy.control(
            180,
            &snapshots(&[(60.0, 0.4, true), (69.5, 0.9, true)]),
            &mut sim,
        );
        let m = policy.metrics();
        assert_eq!(m.throttles.get(), 1);
        assert_eq!(m.releases.get(), 1);
        assert_eq!(m.red_line_shutdowns.get(), 1);
        assert_eq!(m.observations.get(), 6);
        assert_eq!(m.activations.get(), 1);
        let text = registry.render_prometheus();
        assert!(text
            .contains("mercury_freon_decisions_total{action=\"shutdown\",reason=\"red_line\"} 1"));
    }

    #[test]
    fn ec_power_decisions_carry_reason_codes() {
        let mut policy = FreonEcPolicy::new(FreonConfig::paper(), EcConfig::paper_four_servers());
        let mut sim = ClusterSim::homogeneous(4, ServerConfig::default());
        let light = snapshots(&[(40.0, 0.1, true); 4]);
        policy.control(60, &light, &mut sim);
        let m = policy.metrics();
        assert_eq!(m.power_offs_energy.get(), policy.power_offs());
        assert!(m.power_offs_energy.get() >= 3);
        assert_eq!(m.power_offs_heat.get(), 0);
    }

    #[test]
    fn no_policy_does_nothing() {
        let mut policy = NoPolicy;
        let mut sim = ClusterSim::homogeneous(2, ServerConfig::default());
        policy.control(
            60,
            &snapshots(&[(90.0, 1.0, true), (90.0, 1.0, true)]),
            &mut sim,
        );
        assert_eq!(sim.active_servers(), 2);
        assert_eq!(policy.name(), "none");
    }

    #[test]
    #[should_panic(expected = "must satisfy low < high < red_line")]
    fn invalid_config_fails_fast_at_construction() {
        let mut config = FreonConfig::paper();
        config.thresholds[0].low = 99.0;
        let _ = FreonPolicy::new(config, 2);
    }
}
