//! The spec interpreter: executes a [`PolicySpec`] against the cluster.
//!
//! [`SpecPolicy`] is the one concrete policy engine in the crate. It
//! walks the spec's ordered rules per gated server at every check
//! boundary (first firing rule wins, mirroring the paper daemons'
//! `if/else if` chains), routes every action through the
//! [`Mediator`](crate::policy::Mediator), and — when the spec carries an
//! `[ec]` section — runs the Figure 10 energy-conservation loop around
//! the rule chain. The legacy policy types
//! ([`FreonPolicy`](crate::FreonPolicy) etc.) are thin wrappers over
//! this interpreter.

use crate::config::FreonConfig;
use crate::engine::ServerSnapshot;
use crate::metrics::FreonMetrics;
use crate::policy::actuators::{ActionRequest, EngineCommand, IncidentRecord};
use crate::policy::mediator::Mediator;
use crate::policy::spec::{ActionSpec, EcSpec, Gate, PolicySpec, ReasonCode, RuleSpec, Trigger};
use crate::policy::ThermalPolicy;
use crate::tempd::{Tempd, TempdReport};
use cluster_sim::ClusterSim;
use std::borrow::Cow;
use telemetry::{Registry, Tracer};

/// Freon-EC bookkeeping (Figure 10) for a spec with an `[ec]` section.
#[derive(Debug)]
struct EcState {
    cfg: EcSpec,
    region_emergencies: Vec<i64>,
    /// Round-robin cursor over regions for turn-on selection.
    next_region: usize,
    /// Previous interval's cluster-average utilization per tracked
    /// component (CPU, disk), for the linear projection.
    prev_avg: Option<(f64, f64)>,
    power_ons: u64,
    power_offs: u64,
}

impl EcState {
    fn new(cfg: EcSpec) -> Self {
        let region_count = cfg.regions.iter().copied().max().map_or(0, |m| m + 1);
        EcState {
            cfg,
            region_emergencies: vec![0; region_count],
            next_region: 0,
            prev_avg: None,
            power_ons: 0,
            power_offs: 0,
        }
    }

    /// Picks a region to take a replacement server from: round-robin over
    /// regions that have at least one off server, preferring regions not
    /// under an emergency. Returns a server index to power on.
    fn select_server_to_turn_on(&mut self, snapshots: &[ServerSnapshot]) -> Option<usize> {
        let region_count = self
            .cfg
            .regions
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m + 1)
            .max(1);
        let has_off = |region: usize| {
            self.cfg
                .regions
                .iter()
                .enumerate()
                .any(|(i, &r)| r == region && !snapshots[i].powered)
        };
        // Two passes: first regions without emergencies, then any region.
        for emergency_ok in [false, true] {
            for offset in 0..region_count {
                let region = (self.next_region + offset) % region_count;
                let under_emergency = self.region_emergencies.get(region).copied().unwrap_or(0) > 0;
                if (under_emergency && !emergency_ok) || !has_off(region) {
                    continue;
                }
                let server = self
                    .cfg
                    .regions
                    .iter()
                    .enumerate()
                    .find(|(i, &r)| r == region && !snapshots[*i].powered)
                    .map(|(i, _)| i);
                if let Some(server) = server {
                    self.next_region = (region + 1) % region_count;
                    return Some(server);
                }
            }
        }
        None
    }
}

/// One gated server's tempd reading plus the id of its `tempd.observe`
/// span — the `cause` every downstream rule and actuation span links
/// back to (0 when untraced).
struct Observation {
    report: TempdReport,
    cause: u64,
}

/// A thermal policy defined entirely by a [`PolicySpec`].
#[derive(Debug)]
pub struct SpecPolicy {
    spec: PolicySpec,
    /// Daemon-side view of the spec (thresholds, periods, gains).
    base: FreonConfig,
    tempds: Vec<Tempd>,
    restricted: Vec<bool>,
    shutdown_times: Vec<Option<u64>>,
    adjustments: u64,
    red_line_shutdowns: u64,
    mediator: Mediator,
    metrics: FreonMetrics,
    ec: Option<EcState>,
    uses_admission: bool,
    tracer: Tracer,
}

impl SpecPolicy {
    /// Builds the interpreter for an `n`-server cluster, validating the
    /// spec first.
    ///
    /// # Errors
    ///
    /// Returns the validation error (naming the offending component and
    /// values) when the spec is inconsistent or does not fit the cluster.
    pub fn new(spec: PolicySpec, n: usize) -> Result<Self, String> {
        spec.validate_for_cluster(n)?;
        let base = spec.base_config();
        let tempds = (0..n).map(|_| Tempd::new(&base)).collect();
        let metrics = FreonMetrics::new();
        let mediator = Mediator::new(
            n,
            spec.frequency_levels.clone(),
            spec.connection_caps,
            metrics.clone(),
        );
        let ec = spec.ec.clone().map(EcState::new);
        let uses_admission = spec.uses_admission();
        Ok(SpecPolicy {
            spec,
            base,
            tempds,
            restricted: vec![false; n],
            shutdown_times: vec![None; n],
            adjustments: 0,
            red_line_shutdowns: 0,
            mediator,
            metrics,
            ec,
            uses_admission,
            tracer: Tracer::default(),
        })
    }

    /// Loads and builds a policy from a TOML spec file.
    ///
    /// # Errors
    ///
    /// Returns read, parse, or validation errors, all naming the file.
    pub fn from_toml_file(path: &std::path::Path, n: usize) -> Result<Self, String> {
        let spec = PolicySpec::from_toml_file(path)?;
        Self::new(spec, n).map_err(|e| format!("in {}: {e}", path.display()))
    }

    /// The spec this policy interprets.
    pub fn spec(&self) -> &PolicySpec {
        &self.spec
    }

    /// The policy's telemetry handles.
    pub fn metrics(&self) -> &FreonMetrics {
        &self.metrics
    }

    /// How many load-distribution adjustments were made (throttles and
    /// sheds).
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// How many servers were lost to red-line shutdowns.
    pub fn red_line_shutdowns(&self) -> u64 {
        self.red_line_shutdowns
    }

    /// Which servers currently carry admission restrictions.
    pub fn restricted(&self) -> &[bool] {
        &self.restricted
    }

    /// When each server was shut down at the red line (`None` =
    /// survived).
    pub fn shutdown_times(&self) -> &[Option<u64>] {
        &self.shutdown_times
    }

    /// Servers powered on by the EC extension so far.
    pub fn power_ons(&self) -> u64 {
        self.ec.as_ref().map_or(0, |e| e.power_ons)
    }

    /// Servers powered off by the EC extension (including red-line
    /// shutdowns under EC) so far.
    pub fn power_offs(&self) -> u64 {
        self.ec.as_ref().map_or(0, |e| e.power_offs)
    }

    /// Current per-region emergency counts (empty without `[ec]`).
    pub fn region_emergencies(&self) -> &[i64] {
        self.ec
            .as_ref()
            .map_or(&[][..], |e| e.region_emergencies.as_slice())
    }

    /// Structured records of every emergency shutdown so far.
    pub fn incidents(&self) -> &[IncidentRecord] {
        self.mediator.incidents()
    }

    /// The current DVFS speed scale of `server`.
    pub fn frequency_scale(&self, server: usize) -> f64 {
        self.mediator.frequency().scale(server)
    }

    /// Total downward DVFS steps taken across the cluster.
    pub fn frequency_steps_down(&self) -> u64 {
        self.mediator.frequency().steps_down()
    }

    fn gate_open(&self, snapshot: &ServerSnapshot) -> bool {
        match self.spec.gate {
            Gate::Powered => snapshot.powered,
            Gate::Accepting => snapshot.accepting,
        }
    }

    fn rule_for(&self, trigger: Trigger) -> Option<RuleSpec> {
        self.spec
            .rules
            .iter()
            .find(|r| r.trigger == trigger)
            .cloned()
    }

    /// Records one server's `tempd.observe` span around the tempd read;
    /// its id becomes the `cause` of every downstream rule and
    /// actuation span for this server at this check boundary.
    fn observe_traced(
        &mut self,
        server: usize,
        now_s: u64,
        snapshot: &ServerSnapshot,
    ) -> Observation {
        let span = self.tracer.start("tempd.observe", "freon");
        let report = self.tempds[server].observe(&snapshot.temps, &self.base);
        let cause = span.id();
        if span.is_live() {
            let mut args = vec![
                (Cow::Borrowed("server"), server.to_string()),
                (Cow::Borrowed("time_s"), now_s.to_string()),
            ];
            if let Some(component) = &report.red_lined {
                args.push((Cow::Borrowed("red_lined"), component.clone()));
            }
            self.tracer.end_with_args(span, args);
        }
        Observation { report, cause }
    }

    /// Dispatches a rule's action for one server, attaching the
    /// triggering component's context for incident records and the
    /// observation span id (`cause`) for the trace.
    fn dispatch_rule(
        &mut self,
        rule: &RuleSpec,
        server: usize,
        obs: &Observation,
        snapshot: &ServerSnapshot,
        now_s: u64,
        sim: &mut ClusterSim,
    ) -> bool {
        if self.tracer.is_active() {
            self.tracer.instant(
                "policy.rule",
                "freon",
                obs.cause,
                vec![
                    (Cow::Borrowed("trigger"), rule.trigger.as_str().to_string()),
                    (Cow::Borrowed("action"), rule.action.name().to_string()),
                    (Cow::Borrowed("server"), server.to_string()),
                ],
            );
        }
        let mut req = ActionRequest::new(server, rule.action.clone(), rule.reason, now_s);
        req.output = obs.report.output;
        req.cause = obs.cause;
        if let Some(component) = &obs.report.red_lined {
            req.component = Some(component.clone());
            req.temperature_c = snapshot
                .temps
                .iter()
                .find(|(c, _)| c == component)
                .map(|(_, t)| *t);
            req.threshold_c = self.base.thresholds_for(component).map(|t| t.red_line);
        }
        self.mediator.dispatch(&req, sim)
    }

    /// Policy-side bookkeeping for an applied action.
    fn bookkeep(&mut self, server: usize, action: &ActionSpec, now_s: u64) {
        match action {
            ActionSpec::Shutdown => {
                self.restricted[server] = false;
                self.shutdown_times[server] = Some(now_s);
                self.red_line_shutdowns += 1;
            }
            ActionSpec::Throttle | ActionSpec::Shed { .. } => {
                self.restricted[server] = true;
                self.adjustments += 1;
            }
            ActionSpec::Release => {
                self.restricted[server] = false;
            }
            _ => {}
        }
    }

    /// The plain rule chain: first firing rule per gated server wins.
    fn rule_monitor(&mut self, now_s: u64, snapshots: &[ServerSnapshot], sim: &mut ClusterSim) {
        let rules = self.spec.rules.clone();
        for (i, snapshot) in snapshots.iter().enumerate() {
            if !self.gate_open(snapshot) {
                continue;
            }
            self.metrics.observations.inc();
            let obs = self.observe_traced(i, now_s, snapshot);
            for rule in &rules {
                let fired = match rule.trigger {
                    Trigger::RedLine => obs.report.red_lined.is_some(),
                    Trigger::AboveHigh => obs.report.output.is_some(),
                    Trigger::BelowLow => obs.report.all_below_low,
                };
                if !fired {
                    continue;
                }
                // Releasing an unrestricted server is a no-op; let later
                // rules (if any) have a look instead.
                if matches!(rule.action, ActionSpec::Release) && !self.restricted[i] {
                    continue;
                }
                if self.dispatch_rule(rule, i, &obs, snapshot, now_s, sim) {
                    self.bookkeep(i, &rule.action, now_s);
                }
                break;
            }
        }
        if self.uses_admission {
            self.mediator.end_interval();
        }
    }

    /// Cluster-average CPU and disk utilization over the servers carrying
    /// load (accepting connections).
    fn average_utilization(snapshots: &[ServerSnapshot]) -> (f64, f64, usize) {
        let mut cpu = 0.0;
        let mut disk = 0.0;
        let mut n = 0usize;
        for s in snapshots.iter().filter(|s| s.accepting) {
            cpu += s.cpu_util;
            disk += s.disk_util;
            n += 1;
        }
        if n == 0 {
            (0.0, 0.0, 0)
        } else {
            (cpu / n as f64, disk / n as f64, n)
        }
    }

    fn ec_turn_on(
        &mut self,
        ec: &mut EcState,
        sim: &mut ClusterSim,
        server: usize,
        reason: ReasonCode,
        now_s: u64,
        cause: u64,
    ) {
        let mut req = ActionRequest::new(server, ActionSpec::PowerOn, reason, now_s);
        req.cause = cause;
        self.mediator.dispatch(&req, sim);
        self.restricted[server] = false;
        ec.power_ons += 1;
    }

    fn ec_turn_off(
        &mut self,
        ec: &mut EcState,
        sim: &mut ClusterSim,
        server: usize,
        reason: ReasonCode,
        now_s: u64,
        cause: u64,
    ) {
        let mut req = ActionRequest::new(server, ActionSpec::PowerOff, reason, now_s);
        req.cause = cause;
        self.mediator.dispatch(&req, sim);
        ec.power_offs += 1;
    }

    /// The Freon-EC loop (Figure 10): grow on projected load, handle
    /// per-server thermal events (replace/remove/throttle), then shrink
    /// for energy.
    fn ec_monitor(&mut self, now_s: u64, snapshots: &[ServerSnapshot], sim: &mut ClusterSim) {
        let mut ec = self.ec.take().expect("ec_monitor requires an [ec] section");

        // --- Figure 10, step 1: grow the configuration on projected load.
        let (cpu_avg, disk_avg, active) = Self::average_utilization(snapshots);
        let (cpu_proj, disk_proj) = match ec.prev_avg {
            Some((pc, pd)) if cpu_avg + disk_avg > pc + pd => {
                let k = ec.cfg.projection_intervals as f64;
                (cpu_avg + k * (cpu_avg - pc), disk_avg + k * (disk_avg - pd))
            }
            _ => (cpu_avg, disk_avg),
        };
        ec.prev_avg = Some((cpu_avg, disk_avg));

        let need_add = cpu_proj > ec.cfg.u_high || disk_proj > ec.cfg.u_high;
        let any_off = snapshots.iter().any(|s| !s.powered);
        if need_add && any_off {
            if let Some(server) = ec.select_server_to_turn_on(snapshots) {
                self.ec_turn_on(&mut ec, sim, server, ReasonCode::ProjectedLoad, now_s, 0);
            }
        }

        // Removal headroom: removing k servers lifts the average to
        // avg·active/(active−k); it must stay below U_l.
        let u_low = ec.cfg.u_low;
        let removable = move |k: usize| {
            active > k
                && cpu_avg * active as f64 / (active - k) as f64 <= u_low
                && disk_avg * active as f64 / (active - k) as f64 <= u_low
        };

        // --- Figure 10, step 2: per-server thermal events.
        let mut observations: Vec<Option<Observation>> = Vec::with_capacity(snapshots.len());
        for (i, snapshot) in snapshots.iter().enumerate() {
            if !snapshot.powered {
                observations.push(None);
                continue;
            }
            self.metrics.observations.inc();
            let obs = self.observe_traced(i, now_s, snapshot);
            observations.push(Some(obs));
        }

        let mut removed_for_heat = 0usize;
        for (i, obs) in observations.iter().enumerate() {
            let obs = match obs {
                Some(o) => o,
                None => continue,
            };
            if obs.report.red_lined.is_some() {
                // Modern CPUs and disks turn themselves off at the red
                // line; Freon extends the action to the entire server.
                if let Some(rule) = self.rule_for(Trigger::RedLine) {
                    if self.dispatch_rule(&rule, i, obs, &snapshots[i], now_s, sim) {
                        self.bookkeep(i, &rule.action, now_s);
                        ec.power_offs += 1;
                    }
                }
                continue;
            }
            let region = ec.cfg.regions[i];
            if !obs.report.crossed_high.is_empty() {
                ec.region_emergencies[region] += 1;
                if !removable(removed_for_heat + 1) {
                    // All remaining servers are needed: fall back to the
                    // base policy — unless we can bring up a replacement.
                    if snapshots.iter().any(|s| !s.powered) {
                        if let Some(replacement) = ec.select_server_to_turn_on(snapshots) {
                            self.ec_turn_on(
                                &mut ec,
                                sim,
                                replacement,
                                ReasonCode::Replacement,
                                now_s,
                                obs.cause,
                            );
                            self.ec_turn_off(&mut ec, sim, i, ReasonCode::Heat, now_s, obs.cause);
                            removed_for_heat += 1;
                            continue;
                        }
                    }
                    if obs.report.output.is_some() {
                        if let Some(rule) = self.rule_for(Trigger::AboveHigh) {
                            if self.dispatch_rule(&rule, i, obs, &snapshots[i], now_s, sim) {
                                self.bookkeep(i, &rule.action, now_s);
                            }
                        }
                    }
                } else {
                    // Capacity to spare: simply turn the hot server off.
                    self.ec_turn_off(&mut ec, sim, i, ReasonCode::Heat, now_s, obs.cause);
                    removed_for_heat += 1;
                }
                continue;
            }
            if !obs.report.crossed_low.is_empty() {
                ec.region_emergencies[region] = (ec.region_emergencies[region] - 1).max(0);
            }
            // Base policy for ongoing episodes / releases.
            if obs.report.output.is_some() {
                if let Some(rule) = self.rule_for(Trigger::AboveHigh) {
                    if self.dispatch_rule(&rule, i, obs, &snapshots[i], now_s, sim) {
                        self.bookkeep(i, &rule.action, now_s);
                    }
                }
            } else if obs.report.all_below_low && self.restricted[i] {
                if let Some(rule) = self.rule_for(Trigger::BelowLow) {
                    if self.dispatch_rule(&rule, i, obs, &snapshots[i], now_s, sim) {
                        self.bookkeep(i, &rule.action, now_s);
                    }
                }
            }
        }

        // --- Figure 10, step 3: energy conservation — turn off as many
        // servers as possible. Prefer servers in regions under emergency
        // (they are the riskiest to keep hot), then higher indices; the
        // paper orders by "current processing capacity", which is uniform
        // in our homogeneous cluster.
        let mut shrink = 0usize;
        loop {
            if !removable(removed_for_heat + shrink + 1) {
                break;
            }
            let candidate = snapshots
                .iter()
                .enumerate()
                .filter(|(i, s)| s.accepting && !sim.lvs().is_quiesced(*i))
                .max_by_key(|(i, _)| {
                    let emergency = ec
                        .region_emergencies
                        .get(ec.cfg.regions[*i])
                        .copied()
                        .unwrap_or(0)
                        > 0;
                    (emergency, *i)
                })
                .map(|(i, _)| i);
            match candidate {
                Some(i) if snapshots.iter().filter(|s| s.accepting).count() > shrink + 1 => {
                    self.ec_turn_off(&mut ec, sim, i, ReasonCode::Energy, now_s, 0);
                    shrink += 1;
                }
                _ => break,
            }
        }

        self.mediator.end_interval();
        self.ec = Some(ec);
    }
}

impl ThermalPolicy for SpecPolicy {
    fn name(&self) -> &str {
        &self.spec.name
    }

    fn control(&mut self, now_s: u64, snapshots: &[ServerSnapshot], sim: &mut ClusterSim) {
        if self.uses_admission && now_s > 0 && now_s.is_multiple_of(self.spec.sample_period_s) {
            self.mediator.sample_connections(sim);
        }
        if now_s > 0 && now_s.is_multiple_of(self.spec.check_period_s) {
            if self.ec.is_some() {
                self.ec_monitor(now_s, snapshots, sim);
            } else {
                self.rule_monitor(now_s, snapshots, sim);
            }
        }
    }

    fn register_metrics(&self, registry: &Registry) {
        self.metrics.register(registry);
    }

    fn drain_engine_commands(&mut self) -> Vec<EngineCommand> {
        self.mediator.take_commands()
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.mediator.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    fn incidents(&self) -> &[IncidentRecord] {
        self.mediator.incidents()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FreonConfig;
    use cluster_sim::ServerConfig;

    fn snapshots(specs: &[(f64, f64, bool)]) -> Vec<ServerSnapshot> {
        // (cpu_temp, cpu_util, powered)
        specs
            .iter()
            .map(|&(temp, util, powered)| ServerSnapshot {
                temps: vec![
                    ("cpu".to_string(), temp),
                    ("disk_platters".to_string(), 40.0),
                ],
                cpu_util: util,
                disk_util: util * 0.2,
                connections: (util * 50.0) as usize,
                powered,
                accepting: powered,
            })
            .collect()
    }

    fn shed_spec() -> PolicySpec {
        let text = "\
name = \"load-shed\"

[[thresholds]]
component = \"cpu\"
high = 67.0
low = 64.0
red_line = 69.0

[[rules]]
trigger = \"red_line\"
action = \"shutdown\"

[[rules]]
trigger = \"above_high\"
action = \"shed\"
factor = 0.5

[[rules]]
trigger = \"below_low\"
action = \"release\"
";
        PolicySpec::from_toml_str(text).unwrap()
    }

    #[test]
    fn toml_only_shed_policy_halves_weight_and_releases() {
        let mut policy = SpecPolicy::new(shed_spec(), 2).unwrap();
        let mut sim = ClusterSim::homogeneous(2, ServerConfig::default());
        policy.control(
            60,
            &snapshots(&[(68.0, 0.7, true), (60.0, 0.7, true)]),
            &mut sim,
        );
        assert!((sim.lvs().weight(0) - 0.5).abs() < 1e-12);
        assert!(policy.restricted()[0]);
        assert_eq!(policy.adjustments(), 1);
        assert_eq!(policy.metrics().sheds.get(), 1);
        // Cooling below T_l releases the shed weight.
        policy.control(
            120,
            &snapshots(&[(63.0, 0.4, true), (60.0, 0.7, true)]),
            &mut sim,
        );
        assert_eq!(sim.lvs().weight(0), 1.0);
        assert!(!policy.restricted()[0]);
        assert_eq!(policy.metrics().releases.get(), 1);
    }

    #[test]
    fn shutdown_rules_emit_incident_records() {
        let mut policy = SpecPolicy::new(shed_spec(), 2).unwrap();
        let mut sim = ClusterSim::homogeneous(2, ServerConfig::default());
        policy.control(
            60,
            &snapshots(&[(69.5, 0.9, true), (60.0, 0.5, true)]),
            &mut sim,
        );
        assert_eq!(policy.red_line_shutdowns(), 1);
        assert_eq!(policy.shutdown_times(), &[Some(60), None]);
        let incidents = policy.incidents();
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].server, 0);
        assert_eq!(incidents[0].component.as_deref(), Some("cpu"));
        assert_eq!(incidents[0].temperature_c, Some(69.5));
        assert_eq!(incidents[0].threshold_c, Some(69.0));
        assert_eq!(incidents[0].reason, "red_line");
    }

    #[test]
    fn fan_rules_queue_engine_commands() {
        let text = "\
name = \"fan-boost\"

[[thresholds]]
component = \"cpu\"
high = 67.0
low = 64.0
red_line = 69.0

[[rules]]
trigger = \"above_high\"
action = \"set_fan\"
cfm = 90.0

[[rules]]
trigger = \"below_low\"
action = \"set_fan\"
cfm = 56.6
reason = \"below_low\"
";
        let spec = PolicySpec::from_toml_str(text).unwrap();
        let mut policy = SpecPolicy::new(spec, 1).unwrap();
        let mut sim = ClusterSim::homogeneous(1, ServerConfig::default());
        policy.control(60, &snapshots(&[(68.0, 0.7, true)]), &mut sim);
        assert_eq!(
            policy.drain_engine_commands(),
            vec![EngineCommand::SetFanCfm {
                server: 0,
                cfm: 90.0
            }]
        );
        // Still hot: same command is deduped.
        policy.control(120, &snapshots(&[(68.2, 0.7, true)]), &mut sim);
        assert!(policy.drain_engine_commands().is_empty());
        // Cooled: fan returns to nominal.
        policy.control(180, &snapshots(&[(63.0, 0.3, true)]), &mut sim);
        assert_eq!(
            policy.drain_engine_commands(),
            vec![EngineCommand::SetFanCfm {
                server: 0,
                cfm: 56.6
            }]
        );
        assert_eq!(policy.metrics().fan_commands.get(), 2);
    }

    #[cfg(feature = "instrument")]
    #[test]
    fn decision_spans_link_back_to_the_observation() {
        let mut policy = SpecPolicy::new(shed_spec(), 2).unwrap();
        let tracer = Tracer::new(1024);
        crate::policy::ThermalPolicy::set_tracer(&mut policy, tracer.clone());
        let mut sim = ClusterSim::homogeneous(2, ServerConfig::default());
        // Server 0 above T_h: observe → rule → shed dispatch.
        policy.control(
            60,
            &snapshots(&[(68.0, 0.7, true), (60.0, 0.7, true)]),
            &mut sim,
        );
        let spans = tracer.drain();
        let observations: Vec<_> = spans.iter().filter(|s| s.name == "tempd.observe").collect();
        assert_eq!(observations.len(), 2, "one observation per gated server");
        let obs0 = observations
            .iter()
            .find(|s| s.args.iter().any(|(k, v)| k == "server" && v == "0"))
            .unwrap();
        let rule = spans.iter().find(|s| s.name == "policy.rule").unwrap();
        assert_eq!(rule.parent, obs0.id);
        assert!(rule.args.iter().any(|(k, v)| k == "action" && v == "shed"));
        let dispatch = spans
            .iter()
            .find(|s| s.name == "mediator.dispatch")
            .unwrap();
        assert_eq!(
            dispatch.parent, obs0.id,
            "actuation links back to the observation that caused it"
        );
        assert!(dispatch
            .args
            .iter()
            .any(|(k, v)| k == "applied" && v == "true"));
    }

    #[test]
    fn invalid_specs_are_rejected_at_construction() {
        let mut spec = PolicySpec::freon(&FreonConfig::paper());
        spec.thresholds[0].low = 70.0;
        let err = SpecPolicy::new(spec, 2).unwrap_err();
        assert!(err.contains("cpu"), "{err}");
        let spec = PolicySpec::freon_ec(
            &FreonConfig::paper(),
            &crate::config::EcConfig::paper_four_servers(),
        );
        assert!(SpecPolicy::new(spec, 3).unwrap_err().contains("region map"));
    }
}
