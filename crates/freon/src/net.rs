//! The networked Freon deployment (Figure 9).
//!
//! In the paper, Freon is "a couple of communicating daemons and LVS": a
//! `tempd` on every server monitors its component temperatures (through
//! Mercury's sensor interface) and, on threshold crossings, sends UDP
//! messages to `admd` at the load-balancer node, which adjusts the LVS
//! request distribution. This module is that deployment over real
//! sockets:
//!
//! * [`TempdDaemon`] — a thread that polls thermal sensors (any closure;
//!   typically [`mercury::net::Sensor`] reads against a solver service)
//!   once per monitoring period and ships [`TempdMessage`]s over UDP;
//! * [`AdmdService`] — a thread that receives those messages and applies
//!   the base-policy actions (throttle / release / red-line shutdown) to
//!   the cluster behind a lock.
//!
//! The in-process [`crate::FreonPolicy`] and this networked pair share
//! all decision logic ([`crate::Tempd`], [`crate::Admd`]), so the two
//! deployments cannot drift apart behaviourally.

use crate::admd::Admd;
use crate::config::FreonConfig;
use crate::policy::PolicySpec;
use crate::tempd::Tempd;
use cluster_sim::ClusterSim;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What a tempd tells admd (the paper sends "the output of a PD feedback
/// controller"; release and red-line notifications travel the same way).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TempdMessage {
    /// A component is above `T_h`; apply the controller output.
    Throttle {
        /// Reporting server's index at the balancer.
        server: usize,
        /// `max{output_c}` from the PD controllers.
        output: f64,
    },
    /// Every monitored component fell below `T_l`; lift restrictions.
    Release {
        /// Reporting server's index.
        server: usize,
    },
    /// A component crossed its red line; the server must go offline.
    RedLine {
        /// Reporting server's index.
        server: usize,
    },
}

impl TempdMessage {
    /// Encodes the message for the wire (JSON — these are a few dozen
    /// bytes once a minute, so readability beats compactness).
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("tempd messages are plain data")
    }

    /// Decodes a wire message.
    ///
    /// # Errors
    ///
    /// Returns the serde error for malformed datagrams.
    pub fn decode(bytes: &[u8]) -> Result<Self, serde_json::Error> {
        serde_json::from_slice(bytes)
    }
}

/// A running admd: receives [`TempdMessage`]s over UDP and actuates the
/// balancer.
#[derive(Debug)]
pub struct AdmdService {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    messages_handled: Arc<Mutex<u64>>,
}

impl AdmdService {
    /// Spawns the service on a loopback port, actuating `sim`. The admd
    /// also samples LVS connection statistics every
    /// [`FreonConfig::sample_period_s`] *scaled* by `time_compression`
    /// (pass e.g. 0.01 to run a sped-up experiment: one wall millisecond
    /// per emulated... your call — the daemons only see durations).
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] when the socket cannot be bound.
    pub fn spawn(
        sim: Arc<Mutex<ClusterSim>>,
        config: FreonConfig,
        time_compression: f64,
    ) -> std::io::Result<Self> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_read_timeout(Some(Duration::from_millis(10)))?;
        let addr = socket.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let messages_handled = Arc::new(Mutex::new(0u64));
        let thread = {
            let stop = Arc::clone(&stop);
            let handled = Arc::clone(&messages_handled);
            std::thread::Builder::new()
                .name("freon-admd".into())
                .spawn(move || {
                    let n = sim.lock().len();
                    let mut admd = Admd::new(n);
                    let sample_every = Duration::from_secs_f64(
                        (config.sample_period_s as f64 * time_compression).max(0.001),
                    );
                    let mut last_sample = std::time::Instant::now();
                    let mut buf = [0u8; 512];
                    while !stop.load(Ordering::Relaxed) {
                        if last_sample.elapsed() >= sample_every {
                            admd.sample_connections(&sim.lock());
                            last_sample = std::time::Instant::now();
                        }
                        let len = match socket.recv(&mut buf) {
                            Ok(len) => len,
                            Err(e)
                                if e.kind() == std::io::ErrorKind::WouldBlock
                                    || e.kind() == std::io::ErrorKind::TimedOut =>
                            {
                                continue
                            }
                            Err(_) => break,
                        };
                        let message = match TempdMessage::decode(&buf[..len]) {
                            Ok(m) => m,
                            Err(_) => continue, // garbage datagrams are dropped
                        };
                        let mut sim = sim.lock();
                        match message {
                            TempdMessage::Throttle { server, output } if server < n => {
                                admd.rescale_weight(&mut sim, server, output);
                                if config.connection_caps {
                                    admd.apply_connection_cap(&mut sim, server);
                                }
                                admd.end_interval();
                            }
                            TempdMessage::Release { server } if server < n => {
                                admd.release(&mut sim, server);
                            }
                            TempdMessage::RedLine { server } if server < n => {
                                sim.lvs_mut().set_quiesced(server, true);
                                sim.server_mut(server).shutdown_hard();
                            }
                            _ => continue,
                        }
                        *handled.lock() += 1;
                    }
                })?
        };
        Ok(AdmdService {
            addr,
            stop,
            thread: Some(thread),
            messages_handled,
        })
    }

    /// Spawns the service from a declarative [`PolicySpec`] instead of a
    /// [`FreonConfig`] — the spec's periods, gains, thresholds, and
    /// connection-cap setting are used; its rules beyond the base
    /// throttle/release/red-line triple do not travel over the wire.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] when the socket cannot be bound;
    /// invalid specs surface as [`std::io::ErrorKind::InvalidInput`].
    pub fn spawn_spec(
        sim: Arc<Mutex<ClusterSim>>,
        spec: &PolicySpec,
        time_compression: f64,
    ) -> std::io::Result<Self> {
        spec.validate()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        Self::spawn(sim, spec.base_config(), time_compression)
    }

    /// The address tempds should send to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Messages applied so far.
    pub fn messages_handled(&self) -> u64 {
        *self.messages_handled.lock()
    }

    /// Stops the service.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for AdmdService {
    fn drop(&mut self) {
        // The receive loop polls the stop flag every 10 ms.
        self.stop_and_join();
    }
}

/// A running tempd: polls temperatures and reports threshold events.
#[derive(Debug)]
pub struct TempdDaemon {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl TempdDaemon {
    /// Spawns a tempd for server `server`. `read_temps` produces
    /// `(component, °C)` pairs each wake-up — typically by reading
    /// Mercury sensors over UDP. The daemon wakes every
    /// [`FreonConfig::monitor_period_s`] scaled by `time_compression`.
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] when the reporting socket cannot be
    /// created.
    pub fn spawn(
        server: usize,
        config: FreonConfig,
        admd_addr: SocketAddr,
        time_compression: f64,
        mut read_temps: impl FnMut() -> Vec<(String, f64)> + Send + 'static,
    ) -> std::io::Result<Self> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.connect(admd_addr)?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("freon-tempd-{server}"))
                .spawn(move || {
                    let mut tempd = Tempd::new(&config);
                    let mut restricted = false;
                    let period = Duration::from_secs_f64(
                        (config.monitor_period_s as f64 * time_compression).max(0.001),
                    );
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(period);
                        let temps = read_temps();
                        let report = tempd.observe(&temps, &config);
                        let message = if report.red_lined.is_some() {
                            Some(TempdMessage::RedLine { server })
                        } else if let Some(output) = report.output {
                            restricted = true;
                            Some(TempdMessage::Throttle { server, output })
                        } else if report.all_below_low && restricted {
                            restricted = false;
                            Some(TempdMessage::Release { server })
                        } else {
                            None
                        };
                        if let Some(message) = message {
                            let _ = socket.send(&message.encode());
                        }
                    }
                })?
        };
        Ok(TempdDaemon {
            stop,
            thread: Some(thread),
        })
    }

    /// Spawns a tempd configured by a declarative [`PolicySpec`] (its
    /// thresholds, gains, and monitor period).
    ///
    /// # Errors
    ///
    /// Returns [`std::io::Error`] when the reporting socket cannot be
    /// created; invalid specs surface as
    /// [`std::io::ErrorKind::InvalidInput`].
    pub fn spawn_spec(
        server: usize,
        spec: &PolicySpec,
        admd_addr: SocketAddr,
        time_compression: f64,
        read_temps: impl FnMut() -> Vec<(String, f64)> + Send + 'static,
    ) -> std::io::Result<Self> {
        spec.validate()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        Self::spawn(
            server,
            spec.base_config(),
            admd_addr,
            time_compression,
            read_temps,
        )
    }

    /// Stops the daemon.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TempdDaemon {
    fn drop(&mut self) {
        // The wake-up period is compressed in tests; joining is quick.
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::ServerConfig;

    #[test]
    fn messages_round_trip() {
        for message in [
            TempdMessage::Throttle {
                server: 2,
                output: 0.35,
            },
            TempdMessage::Release { server: 0 },
            TempdMessage::RedLine { server: 3 },
        ] {
            assert_eq!(TempdMessage::decode(&message.encode()).unwrap(), message);
        }
        assert!(TempdMessage::decode(b"junk").is_err());
    }

    #[test]
    fn networked_loop_throttles_and_releases() {
        let sim = Arc::new(Mutex::new(ClusterSim::homogeneous(
            2,
            ServerConfig::default(),
        )));
        let config = FreonConfig::paper();
        let admd = AdmdService::spawn(Arc::clone(&sim), config.clone(), 0.0005).unwrap();

        // Server 0's CPU runs hot for a while, then cools below T_l.
        let hot_phase = Arc::new(AtomicBool::new(true));
        let hot_flag = Arc::clone(&hot_phase);
        let tempd = TempdDaemon::spawn(0, config, admd.local_addr(), 0.0005, move || {
            let t = if hot_flag.load(Ordering::Relaxed) {
                68.5
            } else {
                62.0
            };
            vec![("cpu".to_string(), t), ("disk_platters".to_string(), 40.0)]
        })
        .unwrap();

        // Wait for a throttle to land.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if sim.lock().lvs().weight(0) < 1.0 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "no throttle arrived");
            std::thread::sleep(Duration::from_millis(5));
        }

        // Cool down; the release must restore the weight.
        hot_phase.store(false, Ordering::Relaxed);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if sim.lock().lvs().weight(0) == 1.0 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "no release arrived");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(admd.messages_handled() >= 2);
        tempd.shutdown();
        admd.shutdown();
    }

    #[test]
    fn networked_red_line_kills_the_server() {
        let sim = Arc::new(Mutex::new(ClusterSim::homogeneous(
            1,
            ServerConfig::default(),
        )));
        let config = FreonConfig::paper();
        let admd = AdmdService::spawn(Arc::clone(&sim), config.clone(), 0.0005).unwrap();
        let tempd = TempdDaemon::spawn(0, config, admd.local_addr(), 0.0005, || {
            vec![("cpu".to_string(), 70.0)]
        })
        .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if !sim.lock().server(0).is_powered() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "red line never landed"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        tempd.shutdown();
        admd.shutdown();
    }

    #[test]
    fn spec_spawned_daemons_match_the_config_path() {
        let sim = Arc::new(Mutex::new(ClusterSim::homogeneous(
            1,
            ServerConfig::default(),
        )));
        let spec = PolicySpec::builtin("freon").unwrap();
        let admd = AdmdService::spawn_spec(Arc::clone(&sim), &spec, 0.0005).unwrap();
        let tempd = TempdDaemon::spawn_spec(0, &spec, admd.local_addr(), 0.0005, || {
            vec![("cpu".to_string(), 68.5)]
        })
        .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if sim.lock().lvs().weight(0) < 1.0 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "no throttle arrived");
            std::thread::sleep(Duration::from_millis(5));
        }
        tempd.shutdown();
        admd.shutdown();

        // An invalid spec is rejected before any socket work.
        let mut bad = PolicySpec::builtin("freon").unwrap();
        bad.check_period_s = 0;
        assert_eq!(
            AdmdService::spawn_spec(sim, &bad, 0.0005)
                .unwrap_err()
                .kind(),
            std::io::ErrorKind::InvalidInput
        );
    }

    #[test]
    fn garbage_datagrams_are_ignored() {
        let sim = Arc::new(Mutex::new(ClusterSim::homogeneous(
            1,
            ServerConfig::default(),
        )));
        let admd = AdmdService::spawn(Arc::clone(&sim), FreonConfig::paper(), 0.001).unwrap();
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        socket.send_to(b"{not json", admd.local_addr()).unwrap();
        socket
            .send_to(
                &TempdMessage::Throttle {
                    server: 99,
                    output: 1.0,
                }
                .encode(),
                admd.local_addr(),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // Neither datagram crashed or actuated anything.
        assert_eq!(sim.lock().lvs().weight(0), 1.0);
        admd.shutdown();
    }
}
