//! The closed experiment loop: workload → cluster → Mercury → policy.
//!
//! Each simulated second the engine
//!
//! 1. applies any due `fiddle` events (the thermal emergencies),
//! 2. feeds the second's arrivals through the LVS model and advances the
//!    servers,
//! 3. plays `monitord`: reports every server's CPU/disk utilization to
//!    the Mercury cluster solver,
//! 4. steps Mercury one tick,
//! 5. hands the policy fresh temperatures and utilizations, and
//! 6. records a log row.
//!
//! The engine also keeps the thermal model honest about power state:
//! while a simulated server is off, its Mercury components are switched
//! to (near-)zero draw, and restored when it boots — so Figure 12's
//! "machines cooled down substantially while off" reproduces.

use crate::log::{ExperimentLog, LogRow};
use crate::metrics::ExperimentMetrics;
use crate::policy::ThermalPolicy;
use cluster_sim::ClusterSim;
use mercury::fiddle::FiddleScript;
use mercury::model::{ClusterModel, NodeSpec, PowerModel};
use mercury::solver::{ClusterSolver, SolverConfig};
use mercury::units::Watts;
use std::borrow::Cow;
use std::sync::Arc;
use telemetry::tsdb::Tsdb;
use telemetry::{
    FlightRecorder, IncidentTrigger, Registry, TickState, Tracer, TrendConfig, TrendDetector,
};
use workload_gen::WorkloadTrace;

/// How many recent spans land in an incident bundle's `spans` section.
const BUNDLE_SPANS: usize = 4096;

/// Embedded time-series history for an experiment run, plus the trend
/// detectors that watch it.
///
/// When attached to an [`ExperimentConfig`], the engine appends every
/// machine's monitored CPU and disk temperature (`temp/<machine>/cpu`,
/// `temp/<machine>/disk`) to the store each sampled simulated second —
/// timestamps are *simulated seconds*, not wall time — and scans each
/// machine's trailing CPU window for developing anomalies. Detected
/// trends fire the flight recorder's `trend_*` triggers, so an incident
/// bundle captures a runaway ramp *before* the reactive red-line
/// trigger would.
#[derive(Debug, Clone)]
pub struct HistoryConfig {
    /// The store appended to. Shared, so harnesses can query it while
    /// the run executes or after it finishes.
    pub tsdb: Arc<Tsdb>,
    /// Append (and scan) every `cadence_s` simulated seconds; 1 samples
    /// every tick. Zero is treated as 1.
    pub cadence_s: u64,
    /// Trend detection over the trailing per-machine CPU window.
    /// `None` records history without watching it.
    pub detect: Option<TrendConfig>,
}

impl HistoryConfig {
    /// History at every tick with the default trend detectors.
    #[must_use]
    pub fn new(tsdb: Arc<Tsdb>) -> Self {
        HistoryConfig {
            tsdb,
            cadence_s: 1,
            detect: Some(TrendConfig::default()),
        }
    }
}

/// What a policy sees about one server each second.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSnapshot {
    /// Component temperatures, as `(component, °C)` pairs — what `tempd`
    /// reads from Mercury's sensor interface.
    pub temps: Vec<(String, f64)>,
    /// CPU utilization over the last second.
    pub cpu_util: f64,
    /// Disk utilization over the last second.
    pub disk_util: f64,
    /// Active connections.
    pub connections: usize,
    /// Whether the server is powered at all.
    pub powered: bool,
    /// Whether the server currently accepts connections.
    pub accepting: bool,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Run length, simulated seconds.
    pub duration_s: u64,
    /// Mercury solver configuration (1 s ticks by default).
    pub solver: SolverConfig,
    /// Mercury component fed with the server's CPU utilization.
    pub cpu_component: String,
    /// Mercury component fed with the server's disk utilization.
    pub disk_component: String,
    /// Residual draw of a powered-off server's monitored components, W
    /// (wake-on-LAN circuitry etc.).
    pub off_watts: f64,
    /// Per-machine variable-speed fan firmware (§7 extension). Cloned for
    /// every machine; `None` keeps fans at their fixed Table 1 speed.
    pub fan_controller: Option<mercury::fan::FanController>,
    /// Telemetry registry the run reports into: the cluster solver's
    /// metric bundle, the policy's `mercury_freon_*` families, and the
    /// engine's own fiddle/power-state counters are all registered here
    /// at the start of [`Experiment::run`]. `None` keeps the counters
    /// updating but unscrapeable.
    pub registry: Option<Arc<Registry>>,
    /// Tracer for the causal chain. The engine attaches it to the
    /// cluster solver and the policy at the start of the run and wraps
    /// each simulated second in an `engine.second` span; a detached
    /// tracer (the default) records nothing.
    pub tracer: Tracer,
    /// Thermal flight recorder, fed one [`TickState`] per
    /// machine-second. Its anomaly triggers — and red-line incidents
    /// reported by the policy — produce JSON incident bundles under
    /// [`ExperimentConfig::incident_dir`]. Detached by default.
    pub recorder: FlightRecorder,
    /// Directory incident bundles are written to (created on demand).
    /// `None` suppresses bundle files; triggers still fire.
    pub incident_dir: Option<std::path::PathBuf>,
    /// Embedded time-series history and trend detection. `None` (the
    /// default) keeps both off.
    pub history: Option<HistoryConfig>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            duration_s: 2000,
            solver: SolverConfig::default(),
            cpu_component: "cpu".to_string(),
            disk_component: "disk_platters".to_string(),
            off_watts: 0.5,
            fan_controller: None,
            registry: None,
            tracer: Tracer::default(),
            recorder: FlightRecorder::disabled(),
            incident_dir: None,
            history: None,
        }
    }
}

/// DVFS power law: at frequency scale `s`, dynamic power scales roughly
/// with `f·V²` and voltage tracks frequency, so `P_dyn ∝ s³`; idle/static
/// power is unaffected.
fn scaled_cpu_power(original: &PowerModel, scale: f64) -> PowerModel {
    match original {
        PowerModel::Linear { base, max } => PowerModel::Linear {
            base: *base,
            max: Watts(base.0 + (max.0 - base.0) * scale.powi(3)),
        },
        other => other.clone(),
    }
}

/// Runs one experiment and returns its log.
///
/// `model` and `sim` must describe the same number of machines; the
/// machine at cluster-model index `i` is driven by simulated server `i`.
#[derive(Debug)]
pub struct Experiment<'a> {
    model: &'a ClusterModel,
    sim: ClusterSim,
    trace: &'a WorkloadTrace,
    script: Option<&'a FiddleScript>,
    config: ExperimentConfig,
}

impl<'a> Experiment<'a> {
    /// Prepares an experiment.
    ///
    /// # Errors
    ///
    /// Returns [`mercury::Error::InvalidInput`] when the cluster model and
    /// simulation disagree on the machine count.
    pub fn new(
        model: &'a ClusterModel,
        sim: ClusterSim,
        trace: &'a WorkloadTrace,
        script: Option<&'a FiddleScript>,
        config: ExperimentConfig,
    ) -> Result<Self, mercury::Error> {
        if model.machines().len() != sim.len() {
            return Err(mercury::Error::invalid_input(format!(
                "thermal model has {} machines but the simulation has {}",
                model.machines().len(),
                sim.len()
            )));
        }
        Ok(Experiment {
            model,
            sim,
            trace,
            script,
            config,
        })
    }

    /// Runs the experiment to completion under the given policy.
    ///
    /// # Errors
    ///
    /// Propagates Mercury solver construction errors and fiddle events
    /// that address unknown machines or nodes.
    pub fn run(mut self, policy: &mut dyn ThermalPolicy) -> Result<ExperimentLog, mercury::Error> {
        let n = self.sim.len();
        let mut solver = ClusterSolver::new(self.model, self.config.solver.clone())?;
        let mut runner = self.script.map(FiddleScript::runner);
        let mut log = ExperimentLog::new(policy.name());
        let metrics = ExperimentMetrics::new();
        if let Some(registry) = &self.config.registry {
            solver.metrics().register(registry);
            policy.register_metrics(registry);
            metrics.register(registry);
            mercury::build::register_build_info(registry);
        }
        let tracer = self.config.tracer.clone();
        solver.set_tracer(tracer.clone());
        policy.set_tracer(tracer.clone());
        let recorder = self.config.recorder.clone();
        let mut seen_incidents = policy.incidents().len();

        // Embedded history: per-machine series handles resolved once,
        // so the per-second appends below are index lookups. The trend
        // window is sized to the largest detector's appetite.
        let history = self.config.history.clone();
        let mut cpu_series = Vec::new();
        let mut cpu_handles = Vec::new();
        let mut disk_handles = Vec::new();
        let mut trend: Option<(TrendDetector, u64)> = None;
        if let Some(h) = &history {
            for i in 0..n {
                let machine = solver.machine_at(i).machine_name().to_string();
                let cpu_name = format!("temp/{machine}/cpu");
                cpu_handles.push(h.tsdb.handle(&cpu_name));
                disk_handles.push(h.tsdb.handle(&format!("temp/{machine}/disk")));
                cpu_series.push(cpu_name);
            }
            if let Some(cfg) = &h.detect {
                let window_samples = cfg.min_samples.max(cfg.flatline_samples) as u64;
                let window_s = h.cadence_s.max(1) * window_samples;
                trend = Some((TrendDetector::new(cfg.clone()), window_s));
            }
        }

        // Original power models, to restore after a power-off episode.
        let original_power: Vec<Vec<(String, PowerModel)>> = self
            .model
            .machines()
            .iter()
            .map(|m| {
                m.nodes()
                    .iter()
                    .filter_map(|node| match node {
                        NodeSpec::Component(c) => Some((c.name.clone(), c.power.clone())),
                        NodeSpec::Air(_) => None,
                    })
                    .collect()
            })
            .collect();
        let mut was_powered = vec![true; n];
        let mut last_scale = vec![1.0_f64; n];
        let mut fans: Vec<Option<mercury::fan::FanController>> =
            vec![self.config.fan_controller.clone(); n];

        // Resolve the monitored component names to dense node indices
        // once; the per-second loop below reads and writes by index.
        let mut cpu_idx = Vec::with_capacity(n);
        let mut disk_idx = Vec::with_capacity(n);
        for i in 0..n {
            let machine = solver.machine_at(i);
            cpu_idx.push(
                machine
                    .node_index(&self.config.cpu_component)
                    .ok_or_else(|| mercury::Error::unknown_node(&self.config.cpu_component))?,
            );
            disk_idx.push(
                machine
                    .node_index(&self.config.disk_component)
                    .ok_or_else(|| mercury::Error::unknown_node(&self.config.disk_component))?,
            );
        }

        for t in 0..self.config.duration_s {
            let sec_span = tracer.start("engine.second", "freon");
            if let Some(r) = runner.as_mut() {
                for command in r.due(mercury::units::Seconds(t as f64)) {
                    command.apply_to_cluster(&mut solver)?;
                    metrics.fiddle_events.inc();
                }
            }

            let arrivals = self.trace.arrivals_at(t);
            let stats = self.sim.tick(arrivals);

            // monitord: utilizations into Mercury, with power-state
            // bookkeeping.
            for i in 0..n {
                let powered = self.sim.server(i).is_powered();
                let scale = self.sim.server(i).speed_scale();
                if powered != was_powered[i] || (powered && scale != last_scale[i]) {
                    if powered != was_powered[i] {
                        metrics.power_state_changes.inc();
                    }
                    let machine = solver.machine_at_mut(i);
                    for (component, model) in &original_power[i] {
                        let desired = if !powered {
                            PowerModel::Constant(Watts(self.config.off_watts))
                        } else if component == &self.config.cpu_component && scale < 1.0 {
                            scaled_cpu_power(model, scale)
                        } else {
                            model.clone()
                        };
                        machine.set_power_model(component, desired)?;
                    }
                    was_powered[i] = powered;
                    last_scale[i] = scale;
                }
                let machine = solver.machine_at_mut(i);
                machine.set_utilization_at(cpu_idx[i], stats.cpu_utilization[i])?;
                machine.set_utilization_at(disk_idx[i], stats.disk_utilization[i])?;
                if let Some(fan) = fans[i].as_mut() {
                    fan.regulate(machine)?;
                }
            }

            solver.step();

            // Policy observation.
            let snapshots: Vec<ServerSnapshot> = (0..n)
                .map(|i| {
                    let machine = solver.machine_at(i);
                    ServerSnapshot {
                        temps: machine
                            .temperatures()
                            .into_iter()
                            .map(|(name, c)| (name, c.0))
                            .collect(),
                        cpu_util: stats.cpu_utilization[i],
                        disk_util: stats.disk_utilization[i],
                        connections: stats.connections[i],
                        powered: self.sim.server(i).is_powered(),
                        accepting: self.sim.server(i).accepts_connections(),
                    }
                })
                .collect();
            policy.control(t, &snapshots, &mut self.sim);

            // Policies can also steer the thermal plant itself (e.g. a
            // fan-CFM rule); those commands drain here, after control.
            let commands = policy.drain_engine_commands();
            for command in &commands {
                match command {
                    crate::policy::EngineCommand::SetFanCfm { server, cfm } => {
                        solver.machine_at_mut(*server).set_fan_cfm(*cfm)?;
                        metrics.policy_fan_commands.inc();
                    }
                }
            }

            let cpu_temp: Vec<f64> = (0..n)
                .map(|i| solver.machine_at(i).temperature_at(cpu_idx[i]).0)
                .collect();
            let disk_temp: Vec<f64> = (0..n)
                .map(|i| solver.machine_at(i).temperature_at(disk_idx[i]).0)
                .collect();

            // Embedded history + trend detection: append this second's
            // monitored temperatures, then scan each machine's trailing
            // CPU window for developing anomalies. A detected trend
            // arms the flight recorder before the reactive red-line
            // trigger would.
            let mut trend_triggers: Vec<IncidentTrigger> = Vec::new();
            if let Some(h) = &history {
                if t % h.cadence_s.max(1) == 0 {
                    for i in 0..n {
                        h.tsdb.append_handle(cpu_handles[i], t, cpu_temp[i]);
                        h.tsdb.append_handle(disk_handles[i], t, disk_temp[i]);
                    }
                    if let Some((detector, window_s)) = &trend {
                        for (i, series) in cpu_series.iter().enumerate() {
                            let window = h.tsdb.query_raw(series, t.saturating_sub(*window_s), t);
                            if let Some(anomaly) = detector.scan(&window) {
                                metrics.trend_anomalies.inc();
                                if let Some(trigger) = recorder.anomaly(
                                    t,
                                    i,
                                    anomaly.kind.as_str(),
                                    anomaly.detail.clone(),
                                ) {
                                    trend_triggers.push(trigger);
                                }
                            }
                        }
                    }
                }
            }

            // Flight recorder: one TickState per machine-second, then
            // bundles for anything that tripped — trend triggers from
            // the history detectors above, anomaly triggers from the
            // recorder itself, or fresh red-line incidents from the
            // policy.
            if recorder.is_attached() {
                let mut triggers: Vec<IncidentTrigger> = trend_triggers;
                for (i, snap) in snapshots.iter().enumerate() {
                    let mut actuations: Vec<String> = policy.incidents()[seen_incidents..]
                        .iter()
                        .filter(|inc| inc.server == i)
                        .map(|inc| format!("{}@{}", inc.action, inc.reason))
                        .collect();
                    actuations.extend(commands.iter().filter_map(|c| match c {
                        crate::policy::EngineCommand::SetFanCfm { server, cfm } if *server == i => {
                            Some(format!("set_fan@{cfm}"))
                        }
                        _ => None,
                    }));
                    let state = TickState {
                        time_s: t,
                        temps: snap.temps.iter().map(|(_, c)| *c).collect(),
                        cpu_util: snap.cpu_util,
                        disk_util: snap.disk_util,
                        powered: snap.powered,
                        accepting: snap.accepting,
                        speed_scale: self.sim.server(i).speed_scale(),
                        actuations,
                    };
                    if let Some(trigger) = recorder.record(i, state) {
                        triggers.push(trigger);
                    }
                }
                for incident in &policy.incidents()[seen_incidents..] {
                    let detail = match (&incident.component, incident.temperature_c) {
                        (Some(c), Some(temp)) => format!("{c} at {temp:.2} C"),
                        _ => incident.reason.clone(),
                    };
                    if let Some(trigger) =
                        recorder.red_line(incident.time_s, incident.server, detail)
                    {
                        triggers.push(trigger);
                    }
                }
                for trigger in &triggers {
                    self.write_bundle(&recorder, &tracer, policy.name(), trigger, &metrics);
                }
            }
            seen_incidents = policy.incidents().len();

            log.push(LogRow {
                time_s: t,
                cpu_temp,
                disk_temp,
                cpu_util: stats.cpu_utilization.clone(),
                weight: (0..n).map(|i| self.sim.lvs().weight(i)).collect(),
                connections: stats.connections.clone(),
                active_servers: self.sim.active_servers(),
                offered: stats.offered,
                dropped: stats.dropped,
                completed: stats.completed,
                request_seconds: stats.request_seconds,
            });
            if sec_span.is_live() {
                tracer.end_with_args(sec_span, vec![(Cow::Borrowed("time_s"), t.to_string())]);
            }
        }
        Ok(log)
    }

    /// Renders and writes one incident bundle under
    /// `config.incident_dir`. Filesystem trouble is reported to stderr
    /// but never aborts the run — the recorder must not be able to kill
    /// an experiment.
    fn write_bundle(
        &self,
        recorder: &FlightRecorder,
        tracer: &Tracer,
        policy: &str,
        trigger: &IncidentTrigger,
        metrics: &ExperimentMetrics,
    ) {
        let dir = match &self.config.incident_dir {
            Some(dir) => dir,
            None => return,
        };
        let mut build: Vec<(String, String)> = mercury::build::build_labels()
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        build.push(("policy".to_string(), policy.to_string()));
        let bundle = recorder.bundle(trigger, &build, &tracer.recent(BUNDLE_SPANS));
        let path = dir.join(format!(
            "incident_t{}_m{}_{}.json",
            trigger.time_s, trigger.machine, trigger.kind
        ));
        let result = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, bundle));
        match result {
            Ok(()) => metrics.incident_bundles.inc(),
            Err(e) => eprintln!("freon: failed to write {}: {e}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FreonConfig;
    use crate::policy::{FreonPolicy, NoPolicy};
    use cluster_sim::ServerConfig;
    use workload_gen::{DiurnalProfile, RequestMix, WorkloadGenerator};

    fn paper_trace(duration: u64) -> WorkloadTrace {
        let mix = RequestMix::paper();
        let peak = mix.rps_for_cpu_utilization(0.7, 4, 1000.0);
        let profile = DiurnalProfile::new(duration as f64, peak * 0.15, peak).with_peak_at(0.65);
        WorkloadGenerator::new(profile, mix, 42).generate(duration)
    }

    #[test]
    fn engine_couples_load_to_temperature() {
        let model = mercury::presets::validation_cluster(4);
        let sim = ClusterSim::homogeneous(4, ServerConfig::default());
        let trace = paper_trace(600);
        let cfg = ExperimentConfig {
            duration_s: 600,
            ..Default::default()
        };
        let log = Experiment::new(&model, sim, &trace, None, cfg)
            .unwrap()
            .run(&mut NoPolicy)
            .unwrap();
        assert_eq!(log.len(), 600);
        // Temperatures rise from ambient as load ramps.
        let first = log.rows()[10].cpu_temp[0];
        let last = log.rows()[599].cpu_temp[0];
        assert!(last > first + 3.0, "no thermal coupling: {first} -> {last}");
        assert_eq!(log.total_dropped(), 0);
    }

    #[test]
    fn engine_applies_fiddle_emergencies() {
        let model = mercury::presets::validation_cluster(2);
        let sim = ClusterSim::homogeneous(2, ServerConfig::default());
        let trace = paper_trace(300);
        let script =
            FiddleScript::parse("sleep 100\nfiddle machine1 temperature inlet 38.6\n").unwrap();
        let cfg = ExperimentConfig {
            duration_s: 300,
            ..Default::default()
        };
        let log = Experiment::new(&model, sim, &trace, Some(&script), cfg)
            .unwrap()
            .run(&mut NoPolicy)
            .unwrap();
        // Machine 1 ends hotter than machine 2.
        let t1 = log.rows().last().unwrap().cpu_temp[0];
        let t2 = log.rows().last().unwrap().cpu_temp[1];
        assert!(t1 > t2 + 5.0, "emergency had no effect: {t1} vs {t2}");
    }

    #[test]
    fn machine_count_mismatch_is_rejected() {
        let model = mercury::presets::validation_cluster(2);
        let sim = ClusterSim::homogeneous(3, ServerConfig::default());
        let trace = paper_trace(10);
        assert!(Experiment::new(&model, sim, &trace, None, Default::default()).is_err());
    }

    #[test]
    fn powered_off_servers_cool_down() {
        let model = mercury::presets::validation_cluster(2);
        let mut sim = ClusterSim::homogeneous(2, ServerConfig::default());
        sim.lvs_mut().set_quiesced(1, true);
        sim.server_mut(1).shutdown_hard();
        let trace = paper_trace(900);
        let cfg = ExperimentConfig {
            duration_s: 900,
            ..Default::default()
        };
        let log = Experiment::new(&model, sim, &trace, None, cfg)
            .unwrap()
            .run(&mut NoPolicy)
            .unwrap();
        let on = log.rows().last().unwrap().cpu_temp[0];
        let off = log.rows().last().unwrap().cpu_temp[1];
        // The off machine sits near ambient; the on machine runs warm.
        assert!(off < 25.0, "off server at {off}");
        assert!(on > off + 8.0, "on {on} vs off {off}");
    }

    #[test]
    #[cfg(feature = "instrument")]
    fn history_trends_flag_a_ramp_before_red_line() {
        use telemetry::RecorderConfig;

        let model = mercury::presets::validation_cluster(2);
        let sim = ClusterSim::homogeneous(2, ServerConfig::default());
        let duration = 520;
        let trace = paper_trace(duration);
        // Ramp machine1's inlet steadily toward the red line. The slope
        // detector should forecast the breach from the trend alone.
        let mut script = String::from("sleep 120\n");
        let mut inlet = 25.0;
        for _ in 0..70 {
            inlet += 0.75;
            script.push_str(&format!(
                "fiddle machine1 temperature inlet {inlet:.2}\nsleep 5\n"
            ));
        }
        let script = FiddleScript::parse(&script).unwrap();

        let dir = std::env::temp_dir().join(format!("freon-trend-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tsdb = Tsdb::shared(Default::default());
        let registry = Arc::new(Registry::new());
        let cfg = ExperimentConfig {
            duration_s: duration,
            registry: Some(Arc::clone(&registry)),
            recorder: FlightRecorder::new(RecorderConfig {
                // Leave headroom so only trend triggers (and the
                // recorder's own band trigger, eventually) fire.
                band_high_c: 200.0,
                max_rate_c_per_s: 50.0,
                ..Default::default()
            }),
            incident_dir: Some(dir.clone()),
            history: Some(HistoryConfig::new(Arc::clone(&tsdb))),
            ..Default::default()
        };
        let log = Experiment::new(&model, sim, &trace, Some(&script), cfg)
            .unwrap()
            .run(&mut NoPolicy)
            .unwrap();
        assert_eq!(log.len(), duration as usize);

        // History: one cpu and one disk series per machine, stamped in
        // simulated seconds.
        let stats = tsdb.stats();
        assert_eq!(stats.series, 4, "series: {:?}", tsdb.series_names());
        assert_eq!(tsdb.latest("temp/machine1/cpu").unwrap().0, duration - 1);
        assert_eq!(
            tsdb.query_raw("temp/machine1/cpu", 0, u64::MAX).len(),
            duration as usize
        );

        // The ramp tripped the forecast detector and the recorder wrote
        // a trend bundle.
        let text = registry.render_prometheus();
        assert!(
            text.contains("mercury_freon_trend_anomalies_total")
                && !text.contains("mercury_freon_trend_anomalies_total 0\n"),
            "no trend anomalies counted:\n{text}"
        );
        let bundles: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            bundles.iter().any(|b| b.contains("trend_redline_eta")),
            "no trend bundle in {bundles:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn freon_policy_runs_in_the_loop() {
        let model = mercury::presets::validation_cluster(4);
        let sim = ClusterSim::homogeneous(4, ServerConfig::default());
        let trace = paper_trace(400);
        let cfg = ExperimentConfig {
            duration_s: 400,
            ..Default::default()
        };
        let mut policy = FreonPolicy::new(FreonConfig::paper(), 4);
        let log = Experiment::new(&model, sim, &trace, None, cfg)
            .unwrap()
            .run(&mut policy)
            .unwrap();
        assert_eq!(log.policy, "freon");
        assert_eq!(log.len(), 400);
    }
}
