//! CPU-local thermal management and the software+hardware combination
//! (§4.3).
//!
//! The paper contrasts Freon's *remote throttling* with techniques that
//! act on the hot CPU itself — clock throttling and voltage/frequency
//! scaling — and argues the best system "should probably be a
//! combination \[...\]; the software being responsible for the
//! higher-level, coarser-grained tasks and the hardware being
//! responsible for fine-grained, immediate-reaction, low-level tasks."
//! This module supplies both sides of that comparison:
//!
//! * [`LocalDvfsPolicy`] — each server manages only itself: when its CPU
//!   crosses `T_h` it steps down through a ladder of frequency scales
//!   (the engine applies the cubic DVFS power law to the thermal model),
//!   stepping back up when the CPU cools below `T_l`. No load balancer
//!   involvement: in a least-connections cluster the slowed server
//!   naturally sheds load, which is the effect the paper observes — at
//!   the cost of slower service for the requests it does take. The
//!   policy is the built-in `local-dvfs` spec run through the
//!   interpreter; the ladder itself is the
//!   [`FrequencyActuator`](crate::policy::FrequencyActuator).
//! * [`CombinedPolicy`] — Freon's remote throttling as the first,
//!   coarse-grained line of defense, with local DVFS engaging only for
//!   servers that stay above `T_h` despite the load-distribution
//!   adjustments.

use crate::config::FreonConfig;
use crate::engine::ServerSnapshot;
use crate::policy::{
    EngineCommand, FreonPolicy, FrequencyActuator, PolicySpec, SpecPolicy, ThermalPolicy,
    DEFAULT_LEVELS,
};
use cluster_sim::ClusterSim;

/// Purely local thermal management: per-CPU DVFS, no balancer changes.
#[derive(Debug)]
pub struct LocalDvfsPolicy {
    inner: SpecPolicy,
}

impl LocalDvfsPolicy {
    /// Creates the policy with the default frequency ladder.
    pub fn new(config: FreonConfig, n: usize) -> Self {
        Self::with_levels(config, n, DEFAULT_LEVELS.to_vec())
    }

    /// Creates the policy with a custom (descending) frequency ladder.
    ///
    /// # Panics
    ///
    /// Panics when the config has no `cpu` thresholds or the ladder is
    /// not strictly descending within `(0, 1]`.
    pub fn with_levels(config: FreonConfig, n: usize, levels: Vec<f64>) -> Self {
        let spec = PolicySpec::local_dvfs(&config, levels);
        LocalDvfsPolicy {
            inner: SpecPolicy::new(spec, n)
                .unwrap_or_else(|e| panic!("invalid `local-dvfs` policy configuration: {e}")),
        }
    }

    /// Total downward frequency steps taken.
    pub fn steps_down(&self) -> u64 {
        self.inner.frequency_steps_down()
    }

    /// A server's current frequency scale.
    pub fn scale(&self, server: usize) -> f64 {
        self.inner.frequency_scale(server)
    }

    /// Servers lost to red-line shutdowns (the CPU's own last resort).
    pub fn red_line_shutdowns(&self) -> u64 {
        self.inner.red_line_shutdowns()
    }
}

impl ThermalPolicy for LocalDvfsPolicy {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn control(&mut self, now_s: u64, snapshots: &[ServerSnapshot], sim: &mut ClusterSim) {
        self.inner.control(now_s, snapshots, sim);
    }

    fn register_metrics(&self, registry: &telemetry::Registry) {
        self.inner.register_metrics(registry);
    }

    fn drain_engine_commands(&mut self) -> Vec<EngineCommand> {
        self.inner.drain_engine_commands()
    }
}

/// Freon plus local DVFS as the second line of defense.
#[derive(Debug)]
pub struct CombinedPolicy {
    freon: FreonPolicy,
    config: FreonConfig,
    ladder: FrequencyActuator,
}

impl CombinedPolicy {
    /// Creates the combined policy.
    ///
    /// # Panics
    ///
    /// Panics when `config` is invalid, naming the offending component
    /// and values.
    pub fn new(config: FreonConfig, n: usize) -> Self {
        CombinedPolicy {
            freon: FreonPolicy::new(config.clone(), n),
            config,
            ladder: FrequencyActuator::new(DEFAULT_LEVELS.to_vec(), n),
        }
    }

    /// The wrapped Freon policy (for its counters).
    pub fn freon(&self) -> &FreonPolicy {
        &self.freon
    }

    /// Total downward DVFS steps the hardware side took.
    pub fn dvfs_steps_down(&self) -> u64 {
        self.ladder.steps_down()
    }

    /// The wrapped Freon policy's telemetry handles.
    pub fn metrics(&self) -> &crate::FreonMetrics {
        self.freon.metrics()
    }
}

impl ThermalPolicy for CombinedPolicy {
    fn name(&self) -> &str {
        "freon+dvfs"
    }

    fn control(&mut self, now_s: u64, snapshots: &[ServerSnapshot], sim: &mut ClusterSim) {
        // Software first: the coarse-grained, cluster-wide decisions.
        self.freon.control(now_s, snapshots, sim);
        if now_s == 0 || !now_s.is_multiple_of(self.config.monitor_period_s) {
            return;
        }
        // Hardware second: servers that are *still* above T_h even though
        // Freon has already restricted them get a frequency step; cool
        // servers recover their frequency before their restrictions lift.
        let thresholds = match self.config.thresholds_for("cpu") {
            Some(t) => t.clone(),
            None => return,
        };
        for (i, snapshot) in snapshots.iter().enumerate() {
            if !snapshot.powered || !sim.server(i).is_powered() {
                continue;
            }
            let temp = match snapshot.temps.iter().find(|(c, _)| c == "cpu") {
                Some((_, t)) => *t,
                None => continue,
            };
            if temp > thresholds.high && self.freon.restricted()[i] {
                self.ladder.step_down(sim, i);
            } else if temp < thresholds.low {
                self.ladder.step_up(sim, i);
            }
        }
    }

    fn register_metrics(&self, registry: &telemetry::Registry) {
        // The software half makes all cluster-level decisions; the DVFS
        // ladder is hardware-internal and has no decision counters.
        self.freon.register_metrics(registry);
    }

    fn drain_engine_commands(&mut self) -> Vec<EngineCommand> {
        self.freon.drain_engine_commands()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::ServerConfig;

    fn snapshot(temp: f64, powered: bool) -> ServerSnapshot {
        ServerSnapshot {
            temps: vec![
                ("cpu".to_string(), temp),
                ("disk_platters".to_string(), 40.0),
            ],
            cpu_util: 0.7,
            disk_util: 0.2,
            connections: 10,
            powered,
            accepting: powered,
        }
    }

    #[test]
    fn dvfs_steps_down_when_hot_and_recovers_when_cool() {
        let mut policy = LocalDvfsPolicy::new(FreonConfig::paper(), 2);
        let mut sim = ClusterSim::homogeneous(2, ServerConfig::default());
        let hot = vec![snapshot(68.0, true), snapshot(60.0, true)];
        policy.control(60, &hot, &mut sim);
        assert_eq!(policy.scale(0), 0.85);
        assert_eq!(policy.scale(1), 1.0);
        assert_eq!(sim.server(0).speed_scale(), 0.85);
        policy.control(120, &hot, &mut sim);
        assert_eq!(policy.scale(0), 0.7);
        assert_eq!(policy.steps_down(), 2);

        let cool = vec![snapshot(63.0, true), snapshot(60.0, true)];
        policy.control(180, &cool, &mut sim);
        assert_eq!(policy.scale(0), 0.85);
        policy.control(240, &cool, &mut sim);
        assert_eq!(policy.scale(0), 1.0);
        assert_eq!(sim.server(0).speed_scale(), 1.0);
    }

    #[test]
    fn dvfs_saturates_at_the_ladder_bottom() {
        let mut policy = LocalDvfsPolicy::with_levels(FreonConfig::paper(), 1, vec![1.0, 0.5]);
        let mut sim = ClusterSim::homogeneous(1, ServerConfig::default());
        let hot = vec![snapshot(68.0, true)];
        policy.control(60, &hot, &mut sim);
        policy.control(120, &hot, &mut sim);
        policy.control(180, &hot, &mut sim);
        assert_eq!(policy.scale(0), 0.5);
        assert_eq!(policy.steps_down(), 1);
    }

    #[test]
    fn dvfs_red_lines_like_real_hardware() {
        let mut policy = LocalDvfsPolicy::new(FreonConfig::paper(), 1);
        let mut sim = ClusterSim::homogeneous(1, ServerConfig::default());
        policy.control(60, &[snapshot(69.5, true)], &mut sim);
        assert_eq!(policy.red_line_shutdowns(), 1);
        assert!(!sim.server(0).is_powered());
    }

    #[test]
    fn dvfs_acts_only_on_monitor_boundaries_and_powered_servers() {
        let mut policy = LocalDvfsPolicy::new(FreonConfig::paper(), 1);
        let mut sim = ClusterSim::homogeneous(1, ServerConfig::default());
        policy.control(59, &[snapshot(68.0, true)], &mut sim);
        assert_eq!(policy.scale(0), 1.0);
        policy.control(60, &[snapshot(68.0, false)], &mut sim);
        assert_eq!(policy.scale(0), 1.0);
    }

    #[test]
    fn combined_engages_dvfs_only_after_freon_restrictions() {
        let mut policy = CombinedPolicy::new(FreonConfig::paper(), 2);
        let mut sim = ClusterSim::homogeneous(2, ServerConfig::default());
        let hot = vec![snapshot(68.0, true), snapshot(60.0, true)];
        // First period: Freon restricts, and since the server is both
        // restricted and still hot, the hardware steps once too.
        policy.control(60, &hot, &mut sim);
        assert!(policy.freon().restricted()[0]);
        assert_eq!(policy.dvfs_steps_down(), 1);
        assert_eq!(sim.server(0).speed_scale(), 0.85);
        // Cooling below T_l recovers the frequency.
        let cool = vec![snapshot(63.0, true), snapshot(60.0, true)];
        policy.control(120, &cool, &mut sim);
        assert_eq!(sim.server(0).speed_scale(), 1.0);
    }
}
