//! The PD feedback controller (§4.1, "Details").

use serde::{Deserialize, Serialize};

/// The paper's proportional gain.
pub const DEFAULT_KP: f64 = 0.1;
/// The paper's derivative gain.
pub const DEFAULT_KD: f64 = 0.2;

/// A proportional-derivative controller for one component's temperature.
///
/// The output is computed only while the temperature exceeds the high
/// threshold and is forced non-negative:
///
/// ```text
/// output_c = max(kp·(T_curr − T_h) + kd·(T_curr − T_last), 0)
/// ```
///
/// ```
/// use freon::PdController;
///
/// let mut pd = PdController::paper();
/// // 2° above threshold and climbing 1°/interval:
/// let first = pd.output(69.0, 67.0);
/// let second = pd.output(70.0, 67.0);
/// assert!(second > first);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdController {
    kp: f64,
    kd: f64,
    last: Option<f64>,
}

impl PdController {
    /// Creates a controller with explicit gains.
    pub fn new(kp: f64, kd: f64) -> Self {
        PdController { kp, kd, last: None }
    }

    /// The paper's controller: kp = 0.1, kd = 0.2.
    pub fn paper() -> Self {
        PdController::new(DEFAULT_KP, DEFAULT_KD)
    }

    /// A proportional-only variant (kd = 0) — used by the ablation
    /// experiments to show what the derivative term buys.
    pub fn proportional_only(kp: f64) -> Self {
        PdController::new(kp, 0.0)
    }

    /// The proportional gain.
    pub fn kp(&self) -> f64 {
        self.kp
    }

    /// The derivative gain.
    pub fn kd(&self) -> f64 {
        self.kd
    }

    /// Computes the controller output for the current temperature against
    /// the high threshold, updating the remembered last observation.
    ///
    /// On the first call the derivative term is zero (there is no
    /// previous observation yet).
    pub fn output(&mut self, t_curr: f64, t_high: f64) -> f64 {
        let derivative = match self.last {
            Some(last) => t_curr - last,
            None => 0.0,
        };
        self.last = Some(t_curr);
        (self.kp * (t_curr - t_high) + self.kd * derivative).max(0.0)
    }

    /// Forgets the controller's history — called when the component drops
    /// below its low threshold and the emergency episode ends.
    pub fn reset(&mut self) {
        self.last = None;
    }

    /// The last observed temperature, if any.
    pub fn last_observation(&self) -> Option<f64> {
        self.last
    }
}

impl Default for PdController {
    fn default() -> Self {
        PdController::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_matches_the_paper_formula() {
        let mut pd = PdController::paper();
        // First observation: T=69, Th=67 -> 0.1·2 + 0 = 0.2.
        assert!((pd.output(69.0, 67.0) - 0.2).abs() < 1e-12);
        // Second: T=70 -> 0.1·3 + 0.2·1 = 0.5.
        assert!((pd.output(70.0, 67.0) - 0.5).abs() < 1e-12);
        // Falling fast: T=67.5, derivative −2.5 -> 0.05 − 0.5 -> clamped 0.
        assert_eq!(pd.output(67.5, 67.0), 0.0);
    }

    #[test]
    fn output_is_never_negative() {
        let mut pd = PdController::paper();
        assert_eq!(pd.output(60.0, 67.0), 0.0);
        assert_eq!(pd.output(50.0, 67.0), 0.0);
    }

    #[test]
    fn reset_clears_the_derivative_history() {
        let mut pd = PdController::paper();
        pd.output(70.0, 67.0);
        assert_eq!(pd.last_observation(), Some(70.0));
        pd.reset();
        assert_eq!(pd.last_observation(), None);
        // After a reset, derivative is zero again.
        assert!((pd.output(70.0, 67.0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn proportional_only_has_no_derivative_kick() {
        let mut pd = PdController::proportional_only(0.1);
        pd.output(68.0, 67.0);
        let out = pd.output(72.0, 67.0); // big jump, no kd
        assert!((out - 0.5).abs() < 1e-12);
        assert_eq!(pd.kd(), 0.0);
        assert_eq!(pd.kp(), 0.1);
    }

    #[test]
    fn rising_temperature_raises_output_via_kd() {
        let mut slow = PdController::paper();
        let mut fast = PdController::paper();
        slow.output(68.0, 67.0);
        fast.output(68.0, 67.0);
        let slow_out = slow.output(68.2, 67.0);
        let fast_out = fast.output(70.0, 67.0);
        assert!(fast_out > slow_out);
    }
}
