//! Freon configuration: thresholds, periods, and Freon-EC settings.

use serde::{Deserialize, Serialize};

/// Per-component temperature thresholds (°C).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentThresholds {
    /// Component name as reported by Mercury (e.g. `"cpu"`).
    pub component: String,
    /// `T_h`: above this, Freon throttles load to the server.
    pub high: f64,
    /// `T_l`: below this, restrictions are lifted.
    pub low: f64,
    /// `T_r`: the red line — the maximum temperature the component can
    /// reach without serious reliability degradation; crossing it turns
    /// the whole server off.
    pub red_line: f64,
}

impl ComponentThresholds {
    /// Creates thresholds, with `red_line` defaulting to `high + 2` — the
    /// paper: "`T_h` should be set just below `T_r`, e.g. 2 °C lower".
    pub fn new(component: impl Into<String>, high: f64, low: f64) -> Self {
        ComponentThresholds {
            component: component.into(),
            high,
            low,
            red_line: high + 2.0,
        }
    }

    /// Overrides the red line.
    pub fn with_red_line(mut self, red_line: f64) -> Self {
        self.red_line = red_line;
        self
    }

    /// Validates ordering: `low < high < red_line`.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.low < self.high && self.high < self.red_line) {
            return Err(format!(
                "thresholds for `{}` must satisfy low < high < red_line, got {} / {} / {}",
                self.component, self.low, self.high, self.red_line
            ));
        }
        Ok(())
    }
}

/// Configuration of the base Freon policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FreonConfig {
    /// Thresholds per monitored component.
    pub thresholds: Vec<ComponentThresholds>,
    /// How often `tempd` wakes to check temperatures, seconds (paper: 60).
    pub monitor_period_s: u64,
    /// How often `admd` samples LVS connection statistics, seconds
    /// (paper: 5).
    pub sample_period_s: u64,
    /// Proportional gain (paper: 0.1).
    pub kp: f64,
    /// Derivative gain (paper: 0.2).
    pub kd: f64,
    /// Whether `admd` also caps a hot server's concurrent connections at
    /// the last interval's average (the paper's second lever). Disabled
    /// only by ablation experiments isolating the weight lever.
    pub connection_caps: bool,
}

impl FreonConfig {
    /// The paper's §5 configuration: `T_h^CPU = 67`, `T_l^CPU = 64`,
    /// `T_h^disk = 65`, `T_l^disk = 62` (°C); red lines 2 °C above the
    /// highs; one-minute monitoring; five-second sampling.
    ///
    /// The disk thresholds attach to Mercury's `disk_platters` node — the
    /// disk's own heat source, whose internal sensor the paper reads.
    pub fn paper() -> Self {
        FreonConfig {
            thresholds: vec![
                ComponentThresholds::new("cpu", 67.0, 64.0),
                ComponentThresholds::new("disk_platters", 65.0, 62.0),
            ],
            monitor_period_s: 60,
            sample_period_s: 5,
            kp: crate::controller::DEFAULT_KP,
            kd: crate::controller::DEFAULT_KD,
            connection_caps: true,
        }
    }

    /// Thresholds for a component, if configured.
    pub fn thresholds_for(&self, component: &str) -> Option<&ComponentThresholds> {
        self.thresholds.iter().find(|t| t.component == component)
    }

    /// Validates every threshold triple and the periods.
    pub fn validate(&self) -> Result<(), String> {
        if self.monitor_period_s == 0 || self.sample_period_s == 0 {
            return Err("freon periods must be positive".to_string());
        }
        if self.thresholds.is_empty() {
            return Err("freon needs at least one monitored component".to_string());
        }
        for t in &self.thresholds {
            t.validate()?;
        }
        Ok(())
    }
}

impl Default for FreonConfig {
    fn default() -> Self {
        FreonConfig::paper()
    }
}

/// Additional configuration for Freon-EC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EcConfig {
    /// Region id per server (index-aligned with the cluster). The paper
    /// groups servers so "common thermal emergencies will likely affect
    /// all servers of a region" — e.g. one region per air conditioner.
    pub regions: Vec<usize>,
    /// `U_h`: add a server when any component's *projected* utilization
    /// exceeds this (paper: 0.70).
    pub u_high: f64,
    /// `U_l`: remove servers while the post-removal average utilization
    /// stays below this (paper: 0.60).
    pub u_low: f64,
    /// How many observation intervals ahead load is projected, assuming
    /// linear growth (paper: 2).
    pub projection_intervals: u32,
}

impl EcConfig {
    /// The paper's §5.2 setup for four servers: regions `{m1, m3}` and
    /// `{m2, m4}` (indices 0,2 vs 1,3), `U_h = 70%`, `U_l = 60%`,
    /// projection two intervals ahead.
    pub fn paper_four_servers() -> Self {
        EcConfig {
            regions: vec![0, 1, 0, 1],
            u_high: 0.70,
            u_low: 0.60,
            projection_intervals: 2,
        }
    }

    /// Number of distinct regions.
    pub fn region_count(&self) -> usize {
        self.regions
            .iter()
            .copied()
            .max()
            .map(|m| m + 1)
            .unwrap_or(0)
    }

    /// Validates utilization bounds and the region map.
    pub fn validate(&self, servers: usize) -> Result<(), String> {
        if self.regions.len() != servers {
            return Err(format!(
                "region map covers {} servers but the cluster has {servers}",
                self.regions.len()
            ));
        }
        if !(0.0 < self.u_low && self.u_low < self.u_high && self.u_high <= 1.0) {
            return Err(format!(
                "utilization thresholds must satisfy 0 < U_l < U_h <= 1, got {} / {}",
                self.u_low, self.u_high
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_encodes_section_5_values() {
        let cfg = FreonConfig::paper();
        assert!(cfg.validate().is_ok());
        let cpu = cfg.thresholds_for("cpu").unwrap();
        assert_eq!((cpu.high, cpu.low, cpu.red_line), (67.0, 64.0, 69.0));
        let disk = cfg.thresholds_for("disk_platters").unwrap();
        assert_eq!((disk.high, disk.low, disk.red_line), (65.0, 62.0, 67.0));
        assert_eq!(cfg.monitor_period_s, 60);
        assert_eq!(cfg.sample_period_s, 5);
        assert_eq!((cfg.kp, cfg.kd), (0.1, 0.2));
        assert!(cfg.thresholds_for("gpu").is_none());
    }

    #[test]
    fn threshold_validation_enforces_ordering() {
        assert!(ComponentThresholds::new("cpu", 67.0, 64.0)
            .validate()
            .is_ok());
        assert!(ComponentThresholds::new("cpu", 60.0, 64.0)
            .validate()
            .is_err());
        let bad = ComponentThresholds::new("cpu", 67.0, 64.0).with_red_line(66.0);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn freon_config_validation() {
        let mut cfg = FreonConfig::paper();
        cfg.monitor_period_s = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = FreonConfig::paper();
        cfg.thresholds.clear();
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn ec_config_paper_regions() {
        let ec = EcConfig::paper_four_servers();
        assert!(ec.validate(4).is_ok());
        assert_eq!(ec.region_count(), 2);
        // m1 and m3 (indices 0, 2) share region 0.
        assert_eq!(ec.regions[0], ec.regions[2]);
        assert_eq!(ec.regions[1], ec.regions[3]);
        assert_ne!(ec.regions[0], ec.regions[1]);
        assert!(ec.validate(3).is_err());
        let bad = EcConfig {
            u_low: 0.8,
            ..EcConfig::paper_four_servers()
        };
        assert!(bad.validate(4).is_err());
    }
}
