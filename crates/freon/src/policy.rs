//! The thermal-management policies: Freon, Freon-EC, and the traditional
//! baseline.

use crate::admd::Admd;
use crate::config::{EcConfig, FreonConfig};
use crate::engine::ServerSnapshot;
use crate::metrics::FreonMetrics;
use crate::tempd::Tempd;
use cluster_sim::ClusterSim;
use telemetry::Registry;

/// A cluster-level thermal-management policy, invoked once per simulated
/// second with fresh temperatures and utilizations. Policies do their own
/// internal scheduling (the paper's daemons wake once per minute and
/// sample LVS every five seconds).
pub trait ThermalPolicy: std::fmt::Debug {
    /// Short name for logs and reports.
    fn name(&self) -> &'static str;

    /// Observes the cluster and optionally actuates the balancer/servers.
    fn control(&mut self, now_s: u64, snapshots: &[ServerSnapshot], sim: &mut ClusterSim);

    /// Registers the policy's `mercury_freon_*` metric families on
    /// `registry`, so a scrape of e.g. a
    /// [`mercury::net::SolverService`] registry includes the control
    /// loop's decision counters. The default registers nothing —
    /// appropriate for policies that never act (like [`NoPolicy`]).
    fn register_metrics(&self, _registry: &Registry) {}
}

/// A policy that never intervenes — the control for validation runs.
#[derive(Debug, Clone, Default)]
pub struct NoPolicy;

impl ThermalPolicy for NoPolicy {
    fn name(&self) -> &'static str {
        "none"
    }

    fn control(&mut self, _now_s: u64, _snapshots: &[ServerSnapshot], _sim: &mut ClusterSim) {}
}

/// The traditional approach (§5.1): ignore temperatures until a component
/// crosses its red line, then turn the server off. Servers stay off for
/// the rest of the run (the emergency persists, so they would immediately
/// red-line again).
#[derive(Debug, Clone)]
pub struct TraditionalPolicy {
    config: FreonConfig,
    /// Seconds at which each server was shut down, if it was.
    shutdown_times: Vec<Option<u64>>,
    metrics: FreonMetrics,
}

impl TraditionalPolicy {
    /// Creates the baseline for an `n`-server cluster.
    pub fn new(config: FreonConfig, n: usize) -> Self {
        TraditionalPolicy {
            config,
            shutdown_times: vec![None; n],
            metrics: FreonMetrics::new(),
        }
    }

    /// When each server was turned off (`None` = survived the run).
    pub fn shutdown_times(&self) -> &[Option<u64>] {
        &self.shutdown_times
    }

    /// The policy's telemetry handles.
    pub fn metrics(&self) -> &FreonMetrics {
        &self.metrics
    }
}

impl ThermalPolicy for TraditionalPolicy {
    fn name(&self) -> &'static str {
        "traditional"
    }

    fn control(&mut self, now_s: u64, snapshots: &[ServerSnapshot], sim: &mut ClusterSim) {
        if now_s == 0 || !now_s.is_multiple_of(self.config.monitor_period_s) {
            return;
        }
        for (i, snapshot) in snapshots.iter().enumerate() {
            if !snapshot.accepting {
                continue;
            }
            self.metrics.observations.inc();
            let red_lined = snapshot.temps.iter().any(|(component, temp)| {
                self.config
                    .thresholds_for(component)
                    .is_some_and(|t| *temp >= t.red_line)
            });
            if red_lined {
                sim.lvs_mut().set_quiesced(i, true);
                sim.server_mut(i).shutdown_hard();
                self.shutdown_times[i] = Some(now_s);
                self.metrics.red_line_shutdowns.inc();
            }
        }
    }

    fn register_metrics(&self, registry: &Registry) {
        self.metrics.register(registry);
    }
}

/// The base Freon policy (§4.1): remote throttling via LVS weights and
/// connection caps, driven by per-server PD controllers; red-line
/// shutdown only as the last resort.
#[derive(Debug, Clone)]
pub struct FreonPolicy {
    config: FreonConfig,
    tempds: Vec<Tempd>,
    admd: Admd,
    restricted: Vec<bool>,
    adjustments: u64,
    red_line_shutdowns: u64,
    metrics: FreonMetrics,
}

impl FreonPolicy {
    /// Creates the policy for an `n`-server cluster.
    pub fn new(config: FreonConfig, n: usize) -> Self {
        let tempds = (0..n).map(|_| Tempd::new(&config)).collect();
        FreonPolicy {
            config,
            tempds,
            admd: Admd::new(n),
            restricted: vec![false; n],
            adjustments: 0,
            red_line_shutdowns: 0,
            metrics: FreonMetrics::new(),
        }
    }

    /// The policy's telemetry handles.
    pub fn metrics(&self) -> &FreonMetrics {
        &self.metrics
    }

    /// How many load-distribution adjustments admd has made.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// How many servers were lost to red-line shutdowns.
    pub fn red_line_shutdowns(&self) -> u64 {
        self.red_line_shutdowns
    }

    /// Which servers currently carry restrictions.
    pub fn restricted(&self) -> &[bool] {
        &self.restricted
    }

    fn monitor(&mut self, now_s: u64, snapshots: &[ServerSnapshot], sim: &mut ClusterSim) {
        for (i, snapshot) in snapshots.iter().enumerate() {
            if !snapshot.powered {
                continue;
            }
            let report = self.tempds[i].observe(&snapshot.temps, &self.config);
            self.metrics.observations.inc();
            if report.red_lined.is_some() {
                // Modern CPUs and disks turn themselves off at the red
                // line; Freon extends the action to the entire server.
                sim.lvs_mut().set_quiesced(i, true);
                sim.server_mut(i).shutdown_hard();
                self.red_line_shutdowns += 1;
                self.restricted[i] = false;
                self.metrics.red_line_shutdowns.inc();
                continue;
            }
            if let Some(output) = report.output {
                self.admd.rescale_weight(sim, i, output);
                if self.config.connection_caps {
                    self.admd.apply_connection_cap(sim, i);
                }
                self.restricted[i] = true;
                self.adjustments += 1;
                self.metrics.record_output(output);
                self.metrics.throttles.inc();
            } else if report.all_below_low && self.restricted[i] {
                self.admd.release(sim, i);
                self.restricted[i] = false;
                self.metrics.releases.inc();
            }
        }
        let _ = now_s;
        self.admd.end_interval();
    }
}

impl ThermalPolicy for FreonPolicy {
    fn name(&self) -> &'static str {
        "freon"
    }

    fn control(&mut self, now_s: u64, snapshots: &[ServerSnapshot], sim: &mut ClusterSim) {
        if now_s > 0 && now_s.is_multiple_of(self.config.sample_period_s) {
            self.admd.sample_connections(sim);
        }
        if now_s > 0 && now_s.is_multiple_of(self.config.monitor_period_s) {
            self.monitor(now_s, snapshots, sim);
        }
    }

    fn register_metrics(&self, registry: &Registry) {
        self.metrics.register(registry);
    }
}

/// Freon-EC (§4.2, Figure 10): the base thermal policy plus cluster
/// reconfiguration for energy conservation, with room regions guiding
/// which servers replace which.
#[derive(Debug, Clone)]
pub struct FreonEcPolicy {
    config: FreonConfig,
    ec: EcConfig,
    tempds: Vec<Tempd>,
    admd: Admd,
    restricted: Vec<bool>,
    region_emergencies: Vec<i64>,
    /// Round-robin cursor over regions for turn-on selection.
    next_region: usize,
    /// Previous interval's cluster-average utilization per tracked
    /// component (CPU, disk), for the linear projection.
    prev_avg: Option<(f64, f64)>,
    power_ons: u64,
    power_offs: u64,
    adjustments: u64,
    metrics: FreonMetrics,
}

impl FreonEcPolicy {
    /// Creates Freon-EC for a cluster of `regions.len()` servers.
    pub fn new(config: FreonConfig, ec: EcConfig) -> Self {
        let n = ec.regions.len();
        let tempds = (0..n).map(|_| Tempd::new(&config)).collect();
        let region_count = ec.region_count();
        FreonEcPolicy {
            config,
            ec,
            tempds,
            admd: Admd::new(n),
            restricted: vec![false; n],
            region_emergencies: vec![0; region_count],
            next_region: 0,
            prev_avg: None,
            power_ons: 0,
            power_offs: 0,
            adjustments: 0,
            metrics: FreonMetrics::new(),
        }
    }

    /// The policy's telemetry handles.
    pub fn metrics(&self) -> &FreonMetrics {
        &self.metrics
    }

    /// Servers powered on by the policy so far.
    pub fn power_ons(&self) -> u64 {
        self.power_ons
    }

    /// Servers powered off by the policy so far.
    pub fn power_offs(&self) -> u64 {
        self.power_offs
    }

    /// Load-distribution adjustments made by the base thermal policy.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Current per-region emergency counts.
    pub fn region_emergencies(&self) -> &[i64] {
        &self.region_emergencies
    }

    /// Cluster-average CPU and disk utilization over the servers carrying
    /// load (accepting connections).
    fn average_utilization(snapshots: &[ServerSnapshot]) -> (f64, f64, usize) {
        let mut cpu = 0.0;
        let mut disk = 0.0;
        let mut n = 0usize;
        for s in snapshots.iter().filter(|s| s.accepting) {
            cpu += s.cpu_util;
            disk += s.disk_util;
            n += 1;
        }
        if n == 0 {
            (0.0, 0.0, 0)
        } else {
            (cpu / n as f64, disk / n as f64, n)
        }
    }

    /// Picks a region to take a replacement server from: round-robin over
    /// regions that have at least one off server, preferring regions not
    /// under an emergency. Returns a server index to power on.
    fn select_server_to_turn_on(&mut self, snapshots: &[ServerSnapshot]) -> Option<usize> {
        let region_count = self.ec.region_count().max(1);
        let has_off = |region: usize| {
            self.ec
                .regions
                .iter()
                .enumerate()
                .any(|(i, &r)| r == region && !snapshots[i].powered)
        };
        // Two passes: first regions without emergencies, then any region.
        for emergency_ok in [false, true] {
            for offset in 0..region_count {
                let region = (self.next_region + offset) % region_count;
                let under_emergency = self.region_emergencies.get(region).copied().unwrap_or(0) > 0;
                if (under_emergency && !emergency_ok) || !has_off(region) {
                    continue;
                }
                let server = self
                    .ec
                    .regions
                    .iter()
                    .enumerate()
                    .find(|(i, &r)| r == region && !snapshots[*i].powered)
                    .map(|(i, _)| i);
                if let Some(server) = server {
                    self.next_region = (region + 1) % region_count;
                    return Some(server);
                }
            }
        }
        None
    }

    fn turn_on(&mut self, sim: &mut ClusterSim, server: usize) {
        sim.server_mut(server).power_on();
        sim.lvs_mut().set_quiesced(server, false);
        sim.lvs_mut().clear_restrictions(server);
        self.restricted[server] = false;
        self.power_ons += 1;
    }

    fn turn_off(&mut self, sim: &mut ClusterSim, server: usize) {
        sim.lvs_mut().set_quiesced(server, true);
        sim.server_mut(server).shutdown_graceful();
        self.power_offs += 1;
    }

    fn monitor(&mut self, snapshots: &[ServerSnapshot], sim: &mut ClusterSim) {
        // --- Figure 10, step 1: grow the configuration on projected load.
        let (cpu_avg, disk_avg, active) = Self::average_utilization(snapshots);
        let (cpu_proj, disk_proj) = match self.prev_avg {
            Some((pc, pd)) if cpu_avg + disk_avg > pc + pd => {
                let k = self.ec.projection_intervals as f64;
                (cpu_avg + k * (cpu_avg - pc), disk_avg + k * (disk_avg - pd))
            }
            _ => (cpu_avg, disk_avg),
        };
        self.prev_avg = Some((cpu_avg, disk_avg));

        let need_add = cpu_proj > self.ec.u_high || disk_proj > self.ec.u_high;
        let any_off = snapshots.iter().any(|s| !s.powered);
        if need_add && any_off {
            if let Some(server) = self.select_server_to_turn_on(snapshots) {
                self.turn_on(sim, server);
                self.metrics.power_ons_load.inc();
            }
        }

        // Removal headroom: removing k servers lifts the average to
        // avg·active/(active−k); it must stay below U_l.
        let u_low = self.ec.u_low;
        let removable = move |k: usize| {
            active > k
                && cpu_avg * active as f64 / (active - k) as f64 <= u_low
                && disk_avg * active as f64 / (active - k) as f64 <= u_low
        };

        // --- Figure 10, step 2: per-server thermal events.
        let mut reports = Vec::with_capacity(snapshots.len());
        for (i, snapshot) in snapshots.iter().enumerate() {
            if !snapshot.powered {
                reports.push(None);
                continue;
            }
            self.metrics.observations.inc();
            reports.push(Some(self.tempds[i].observe(&snapshot.temps, &self.config)));
        }

        let mut removed_for_heat = 0usize;
        for (i, report) in reports.iter().enumerate() {
            let report = match report {
                Some(r) => r,
                None => continue,
            };
            if report.red_lined.is_some() {
                sim.lvs_mut().set_quiesced(i, true);
                sim.server_mut(i).shutdown_hard();
                self.power_offs += 1;
                self.restricted[i] = false;
                self.metrics.red_line_shutdowns.inc();
                continue;
            }
            let region = self.ec.regions[i];
            if !report.crossed_high.is_empty() {
                self.region_emergencies[region] += 1;
                if !removable(removed_for_heat + 1) {
                    // All remaining servers are needed: fall back to the
                    // base policy — unless we can bring up a replacement.
                    if snapshots.iter().any(|s| !s.powered) {
                        if let Some(replacement) = self.select_server_to_turn_on(snapshots) {
                            self.turn_on(sim, replacement);
                            self.turn_off(sim, i);
                            removed_for_heat += 1;
                            self.metrics.power_ons_replacement.inc();
                            self.metrics.power_offs_heat.inc();
                            continue;
                        }
                    }
                    if let Some(output) = report.output {
                        self.admd.rescale_weight(sim, i, output);
                        if self.config.connection_caps {
                            self.admd.apply_connection_cap(sim, i);
                        }
                        self.restricted[i] = true;
                        self.adjustments += 1;
                        self.metrics.record_output(output);
                        self.metrics.throttles.inc();
                    }
                } else {
                    // Capacity to spare: simply turn the hot server off.
                    self.turn_off(sim, i);
                    removed_for_heat += 1;
                    self.metrics.power_offs_heat.inc();
                }
                continue;
            }
            if !report.crossed_low.is_empty() {
                self.region_emergencies[region] = (self.region_emergencies[region] - 1).max(0);
            }
            // Base policy for ongoing episodes / releases.
            if let Some(output) = report.output {
                self.admd.rescale_weight(sim, i, output);
                if self.config.connection_caps {
                    self.admd.apply_connection_cap(sim, i);
                }
                self.restricted[i] = true;
                self.adjustments += 1;
                self.metrics.record_output(output);
                self.metrics.throttles.inc();
            } else if report.all_below_low && self.restricted[i] {
                self.admd.release(sim, i);
                self.restricted[i] = false;
                self.metrics.releases.inc();
            }
        }

        // --- Figure 10, step 3: energy conservation — turn off as many
        // servers as possible. Prefer servers in regions under emergency
        // (they are the riskiest to keep hot), then higher indices; the
        // paper orders by "current processing capacity", which is uniform
        // in our homogeneous cluster.
        let mut shrink = 0usize;
        loop {
            if !removable(removed_for_heat + shrink + 1) {
                break;
            }
            let candidate = snapshots
                .iter()
                .enumerate()
                .filter(|(i, s)| s.accepting && !sim.lvs().is_quiesced(*i))
                .max_by_key(|(i, _)| {
                    let emergency = self
                        .region_emergencies
                        .get(self.ec.regions[*i])
                        .copied()
                        .unwrap_or(0)
                        > 0;
                    (emergency, *i)
                })
                .map(|(i, _)| i);
            match candidate {
                Some(i) if snapshots.iter().filter(|s| s.accepting).count() > shrink + 1 => {
                    self.turn_off(sim, i);
                    shrink += 1;
                    self.metrics.power_offs_energy.inc();
                }
                _ => break,
            }
        }

        self.admd.end_interval();
    }
}

impl ThermalPolicy for FreonEcPolicy {
    fn name(&self) -> &'static str {
        "freon-ec"
    }

    fn control(&mut self, now_s: u64, snapshots: &[ServerSnapshot], sim: &mut ClusterSim) {
        if now_s > 0 && now_s.is_multiple_of(self.config.sample_period_s) {
            self.admd.sample_connections(sim);
        }
        if now_s > 0 && now_s.is_multiple_of(self.config.monitor_period_s) {
            self.monitor(snapshots, sim);
        }
    }

    fn register_metrics(&self, registry: &Registry) {
        self.metrics.register(registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::ServerConfig;

    fn snapshots(specs: &[(f64, f64, bool)]) -> Vec<ServerSnapshot> {
        // (cpu_temp, cpu_util, powered)
        specs
            .iter()
            .map(|&(temp, util, powered)| ServerSnapshot {
                temps: vec![
                    ("cpu".to_string(), temp),
                    ("disk_platters".to_string(), 40.0),
                ],
                cpu_util: util,
                disk_util: util * 0.2,
                connections: (util * 50.0) as usize,
                powered,
                accepting: powered,
            })
            .collect()
    }

    #[test]
    fn freon_throttles_only_at_monitor_boundaries() {
        let mut policy = FreonPolicy::new(FreonConfig::paper(), 2);
        let mut sim = ClusterSim::homogeneous(2, ServerConfig::default());
        let snaps = snapshots(&[(68.0, 0.7, true), (60.0, 0.7, true)]);
        policy.control(59, &snaps, &mut sim);
        assert_eq!(policy.adjustments(), 0);
        policy.control(60, &snaps, &mut sim);
        assert_eq!(policy.adjustments(), 1);
        assert!(sim.lvs().weight(0) < 1.0);
        assert_eq!(sim.lvs().weight(1), 1.0);
        assert!(policy.restricted()[0]);
    }

    #[test]
    fn freon_releases_after_cooling_below_low() {
        let mut policy = FreonPolicy::new(FreonConfig::paper(), 2);
        let mut sim = ClusterSim::homogeneous(2, ServerConfig::default());
        policy.control(
            60,
            &snapshots(&[(68.0, 0.7, true), (60.0, 0.7, true)]),
            &mut sim,
        );
        assert!(sim.lvs().weight(0) < 1.0);
        // Still warm (between T_l and T_h): restrictions stay.
        policy.control(
            120,
            &snapshots(&[(65.0, 0.5, true), (60.0, 0.7, true)]),
            &mut sim,
        );
        assert!(sim.lvs().weight(0) < 1.0);
        // Cool below T_l=64: released.
        policy.control(
            180,
            &snapshots(&[(63.0, 0.4, true), (60.0, 0.7, true)]),
            &mut sim,
        );
        assert_eq!(sim.lvs().weight(0), 1.0);
        assert!(!policy.restricted()[0]);
    }

    #[test]
    fn freon_red_line_turns_the_server_off() {
        let mut policy = FreonPolicy::new(FreonConfig::paper(), 2);
        let mut sim = ClusterSim::homogeneous(2, ServerConfig::default());
        policy.control(
            60,
            &snapshots(&[(69.5, 0.9, true), (60.0, 0.5, true)]),
            &mut sim,
        );
        assert_eq!(policy.red_line_shutdowns(), 1);
        assert!(!sim.server(0).is_powered());
        assert!(sim.lvs().is_quiesced(0));
    }

    #[test]
    fn traditional_ignores_everything_below_red_line() {
        let mut policy = TraditionalPolicy::new(FreonConfig::paper(), 2);
        let mut sim = ClusterSim::homogeneous(2, ServerConfig::default());
        policy.control(
            60,
            &snapshots(&[(68.5, 0.9, true), (60.0, 0.5, true)]),
            &mut sim,
        );
        assert!(sim.server(0).is_powered(), "68.5 < red line 69: no action");
        assert_eq!(sim.lvs().weight(0), 1.0);
        policy.control(
            120,
            &snapshots(&[(69.2, 0.9, true), (60.0, 0.5, true)]),
            &mut sim,
        );
        assert!(!sim.server(0).is_powered());
        assert_eq!(policy.shutdown_times(), &[Some(120), None]);
    }

    #[test]
    fn ec_shrinks_under_light_load() {
        let mut policy = FreonEcPolicy::new(FreonConfig::paper(), EcConfig::paper_four_servers());
        let mut sim = ClusterSim::homogeneous(4, ServerConfig::default());
        let light = snapshots(&[(40.0, 0.1, true); 4]);
        policy.control(60, &light, &mut sim);
        // avg 0.1 over 4 servers -> one server would run at 0.4 < 0.6.
        assert!(
            policy.power_offs() >= 3,
            "power offs: {}",
            policy.power_offs()
        );
        assert_eq!(sim.active_servers(), 1);
    }

    #[test]
    fn ec_grows_on_projected_load() {
        let mut policy = FreonEcPolicy::new(FreonConfig::paper(), EcConfig::paper_four_servers());
        let mut sim = ClusterSim::homogeneous(4, ServerConfig::default());
        // Start with three servers off.
        for i in 1..4 {
            sim.lvs_mut().set_quiesced(i, true);
            sim.server_mut(i).shutdown_hard();
        }
        let mut snaps = snapshots(&[
            (50.0, 0.5, true),
            (30.0, 0.0, false),
            (30.0, 0.0, false),
            (30.0, 0.0, false),
        ]);
        policy.control(60, &snaps, &mut sim);
        // First observation: no history, no projection, 0.5 < 0.7.
        assert_eq!(policy.power_ons(), 0);
        // Load rising: 0.5 -> 0.65, projected 0.65 + 2·0.15 = 0.95 > 0.7.
        snaps[0].cpu_util = 0.65;
        policy.control(120, &snaps, &mut sim);
        assert_eq!(policy.power_ons(), 1);
        assert_eq!(sim.powered_servers(), 2);
    }

    #[test]
    fn ec_replaces_hot_server_from_other_region() {
        let mut policy = FreonEcPolicy::new(FreonConfig::paper(), EcConfig::paper_four_servers());
        let mut sim = ClusterSim::homogeneous(4, ServerConfig::default());
        // Servers 2 and 3 off; servers 0 and 1 at healthy load.
        for i in 2..4 {
            sim.lvs_mut().set_quiesced(i, true);
            sim.server_mut(i).shutdown_hard();
        }
        // Server 0 (region 0) crosses T_h; load too high to just remove it.
        let snaps = snapshots(&[
            (68.0, 0.6, true),
            (55.0, 0.6, true),
            (30.0, 0.0, false),
            (30.0, 0.0, false),
        ]);
        policy.control(60, &snaps, &mut sim);
        assert_eq!(policy.region_emergencies()[0], 1);
        // A replacement was powered on and the hot server taken out.
        assert!(policy.power_ons() >= 1, "no replacement powered on");
        assert!(sim.lvs().is_quiesced(0), "hot server still in rotation");
        // The replacement should come from region 1 (no emergency there):
        // region 1's off server is index 3.
        assert!(sim.server(3).is_powered() || sim.server(1).is_powered());
    }

    #[test]
    fn ec_emergency_counts_decrement_on_cooling() {
        let mut policy = FreonEcPolicy::new(FreonConfig::paper(), EcConfig::paper_four_servers());
        let mut sim = ClusterSim::homogeneous(4, ServerConfig::default());
        let hot = snapshots(&[
            (68.0, 0.8, true),
            (66.0, 0.8, true),
            (60.0, 0.8, true),
            (60.0, 0.8, true),
        ]);
        policy.control(60, &hot, &mut sim);
        assert_eq!(policy.region_emergencies()[0], 1);
        let cool = snapshots(&[
            (63.0, 0.5, true),
            (60.0, 0.5, true),
            (55.0, 0.5, true),
            (55.0, 0.5, true),
        ]);
        policy.control(120, &cool, &mut sim);
        assert_eq!(policy.region_emergencies()[0], 0);
    }

    #[test]
    fn ec_never_removes_the_last_server() {
        let mut policy = FreonEcPolicy::new(
            FreonConfig::paper(),
            EcConfig {
                regions: vec![0],
                ..EcConfig::paper_four_servers()
            },
        );
        let mut sim = ClusterSim::homogeneous(1, ServerConfig::default());
        let idle = snapshots(&[(30.0, 0.0, true)]);
        policy.control(60, &idle, &mut sim);
        policy.control(120, &idle, &mut sim);
        assert_eq!(sim.active_servers(), 1);
        assert_eq!(policy.power_offs(), 0);
    }

    #[test]
    fn policy_decisions_land_in_the_metrics_registry() {
        let mut policy = FreonPolicy::new(FreonConfig::paper(), 2);
        let registry = Registry::new();
        policy.register_metrics(&registry);
        let mut sim = ClusterSim::homogeneous(2, ServerConfig::default());
        // Throttle at 60, release at 120, red-line at 180.
        policy.control(
            60,
            &snapshots(&[(68.0, 0.7, true), (60.0, 0.7, true)]),
            &mut sim,
        );
        policy.control(
            120,
            &snapshots(&[(63.0, 0.4, true), (60.0, 0.7, true)]),
            &mut sim,
        );
        policy.control(
            180,
            &snapshots(&[(60.0, 0.4, true), (69.5, 0.9, true)]),
            &mut sim,
        );
        let m = policy.metrics();
        assert_eq!(m.throttles.get(), 1);
        assert_eq!(m.releases.get(), 1);
        assert_eq!(m.red_line_shutdowns.get(), 1);
        assert_eq!(m.observations.get(), 6);
        assert_eq!(m.activations.get(), 1);
        let text = registry.render_prometheus();
        assert!(text
            .contains("mercury_freon_decisions_total{action=\"shutdown\",reason=\"red_line\"} 1"));
    }

    #[test]
    fn ec_power_decisions_carry_reason_codes() {
        let mut policy = FreonEcPolicy::new(FreonConfig::paper(), EcConfig::paper_four_servers());
        let mut sim = ClusterSim::homogeneous(4, ServerConfig::default());
        let light = snapshots(&[(40.0, 0.1, true); 4]);
        policy.control(60, &light, &mut sim);
        let m = policy.metrics();
        assert_eq!(m.power_offs_energy.get(), policy.power_offs());
        assert!(m.power_offs_energy.get() >= 3);
        assert_eq!(m.power_offs_heat.get(), 0);
    }

    #[test]
    fn no_policy_does_nothing() {
        let mut policy = NoPolicy;
        let mut sim = ClusterSim::homogeneous(2, ServerConfig::default());
        policy.control(
            60,
            &snapshots(&[(90.0, 1.0, true), (90.0, 1.0, true)]),
            &mut sim,
        );
        assert_eq!(sim.active_servers(), 2);
        assert_eq!(policy.name(), "none");
    }
}
