//! # freon — thermal-emergency management for server clusters
//!
//! Freon (the paper's §4) manages component temperatures in a web-server
//! cluster fronted by an LVS load balancer, **without** the traditional
//! approach of turning affected servers off (which needlessly degrades
//! throughput under high load). Its pieces:
//!
//! * [`PdController`] — the proportional-derivative feedback controller
//!   `output = max(kp·(T − T_h) + kd·(T − T_last), 0)` with the paper's
//!   constants kp = 0.1, kd = 0.2;
//! * [`Tempd`] — the per-server temperature daemon: wakes once a minute,
//!   compares each component against its high/low/red-line thresholds,
//!   and reports controller outputs to `admd`;
//! * [`Admd`] — the admission-control daemon at the balancer: on a report
//!   it rescales the hot server's LVS weight so the server receives only
//!   `1/(output+1)` of its current load share, and caps its concurrent
//!   connections at the last minute's average ("remote throttling");
//! * [`FreonPolicy`] — the base policy wiring tempd + admd together, plus
//!   red-line shutdown as the last resort;
//! * [`FreonEcPolicy`] — Freon-EC (§4.2, Figure 10): energy conservation
//!   by shrinking/growing the active server set, with room *regions* so
//!   replacements come from parts of the room unaffected by the
//!   emergency;
//! * [`TraditionalPolicy`] — the baseline the paper compares against:
//!   do nothing until a component red-lines, then turn the server off;
//! * [`LocalDvfsPolicy`] / [`CombinedPolicy`] — the §4.3 comparison:
//!   CPU-local voltage/frequency scaling, and Freon combined with it as
//!   the paper's suggested software+hardware split;
//! * [`Experiment`] — the closed loop: workload trace → cluster sim →
//!   utilizations → Mercury → temperatures → policy → LVS, with fiddle
//!   scripts injecting thermal emergencies (this regenerates Figures 11
//!   and 12).
//!
//! ## The policy framework
//!
//! All of the above are thin wrappers over a three-layer framework in
//! [`policy`]:
//!
//! * [`PolicySpec`] — a declarative description of a policy (monitored
//!   components and thresholds, check/sample periods, PD gains, ordered
//!   trigger → action rules with reason codes) that serializes to and
//!   from TOML. The built-in behaviors ship as specs
//!   (`crates/freon/policies/*.toml`) loadable by name via
//!   [`PolicySpec::builtin`], and new policies need no Rust at all:
//!   write a TOML file and run it with [`SpecPolicy::from_toml_file`].
//! * [`Actuator`]s — composable knobs a policy can turn: LVS admission
//!   weights, DVFS frequency ladders, machine fan CFM, and power state
//!   (emergency shutdown emits a structured [`IncidentRecord`]).
//! * [`Mediator`] — dispatches each [`ActionRequest`] to its actuator in
//!   a fixed dependency order and counts every *applied* actuation under
//!   `mercury_freon_decisions_total{action, reason}`.
//!
//! Specs are validated eagerly — [`SpecPolicy::new`] and the wrapper
//! constructors reject inverted thresholds, zero periods, and unknown
//! actuator names with an error naming the offender — so a bad config
//! fails at construction, not mid-experiment.
//!
//! Every policy meters its decisions through always-on [`telemetry`]
//! handles ([`FreonMetrics`]): `mercury_freon_decisions_total` labelled
//! by `{action, reason}`, tempd observation counts, and PD-controller
//! activation/saturation counters. Register them on any
//! [`telemetry::Registry`] — e.g. a scraped
//! [`mercury::net::SolverService`] registry — via
//! [`ThermalPolicy::register_metrics`], or let [`Experiment`] do it by
//! setting [`ExperimentConfig::registry`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod admd;
mod config;
mod controller;
mod engine;
mod local;
mod log;
mod metrics;
pub mod net;
pub mod policy;
mod tempd;

pub use admd::Admd;
pub use config::{ComponentThresholds, EcConfig, FreonConfig};
pub use controller::PdController;
pub use engine::{Experiment, ExperimentConfig, HistoryConfig, ServerSnapshot};
pub use local::{CombinedPolicy, LocalDvfsPolicy};
pub use log::ExperimentLog;
pub use metrics::{ExperimentMetrics, FreonMetrics};
pub use net::{AdmdService, TempdDaemon, TempdMessage};
pub use policy::{
    ActionRequest, ActionSpec, Actuator, EngineCommand, FreonEcPolicy, FreonPolicy, Gate,
    IncidentRecord, Mediator, NoPolicy, PolicySpec, ReasonCode, RuleSpec, SpecPolicy,
    ThermalPolicy, TraditionalPolicy, Trigger, BUILTIN_NAMES, DEFAULT_LEVELS,
};
pub use tempd::{Tempd, TempdReport};
