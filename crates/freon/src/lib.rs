//! # freon — thermal-emergency management for server clusters
//!
//! Freon (the paper's §4) manages component temperatures in a web-server
//! cluster fronted by an LVS load balancer, **without** the traditional
//! approach of turning affected servers off (which needlessly degrades
//! throughput under high load). Its pieces:
//!
//! * [`PdController`] — the proportional-derivative feedback controller
//!   `output = max(kp·(T − T_h) + kd·(T − T_last), 0)` with the paper's
//!   constants kp = 0.1, kd = 0.2;
//! * [`Tempd`] — the per-server temperature daemon: wakes once a minute,
//!   compares each component against its high/low/red-line thresholds,
//!   and reports controller outputs to `admd`;
//! * [`Admd`] — the admission-control daemon at the balancer: on a report
//!   it rescales the hot server's LVS weight so the server receives only
//!   `1/(output+1)` of its current load share, and caps its concurrent
//!   connections at the last minute's average ("remote throttling");
//! * [`FreonPolicy`] — the base policy wiring tempd + admd together, plus
//!   red-line shutdown as the last resort;
//! * [`FreonEcPolicy`] — Freon-EC (§4.2, Figure 10): energy conservation
//!   by shrinking/growing the active server set, with room *regions* so
//!   replacements come from parts of the room unaffected by the
//!   emergency;
//! * [`TraditionalPolicy`] — the baseline the paper compares against:
//!   do nothing until a component red-lines, then turn the server off;
//! * [`LocalDvfsPolicy`] / [`CombinedPolicy`] — the §4.3 comparison:
//!   CPU-local voltage/frequency scaling, and Freon combined with it as
//!   the paper's suggested software+hardware split;
//! * [`Experiment`] — the closed loop: workload trace → cluster sim →
//!   utilizations → Mercury → temperatures → policy → LVS, with fiddle
//!   scripts injecting thermal emergencies (this regenerates Figures 11
//!   and 12).
//!
//! Every policy meters its decisions through always-on [`telemetry`]
//! handles ([`FreonMetrics`]): `mercury_freon_decisions_total` labelled
//! by `{action, reason}`, tempd observation counts, and PD-controller
//! activation/saturation counters. Register them on any
//! [`telemetry::Registry`] — e.g. a scraped
//! [`mercury::net::SolverService`] registry — via
//! [`ThermalPolicy::register_metrics`], or let [`Experiment`] do it by
//! setting [`ExperimentConfig::registry`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod admd;
mod config;
mod controller;
mod engine;
mod local;
mod log;
mod metrics;
pub mod net;
mod policy;
mod tempd;

pub use admd::Admd;
pub use config::{ComponentThresholds, EcConfig, FreonConfig};
pub use controller::PdController;
pub use engine::{Experiment, ExperimentConfig, ServerSnapshot};
pub use local::{CombinedPolicy, LocalDvfsPolicy, DEFAULT_LEVELS};
pub use log::ExperimentLog;
pub use metrics::{ExperimentMetrics, FreonMetrics};
pub use net::{AdmdService, TempdDaemon, TempdMessage};
pub use policy::{FreonEcPolicy, FreonPolicy, NoPolicy, ThermalPolicy, TraditionalPolicy};
pub use tempd::{Tempd, TempdReport};
