//! Always-on telemetry for Freon's control plane.
//!
//! [`FreonMetrics`] counts policy decisions by `{action, reason}` pair
//! (the `mercury_freon_decisions_total` family), tempd observations, and
//! PD-controller activations/saturations. Every policy owns one bundle
//! and exposes it through [`ThermalPolicy::register_metrics`]
//! (`crate::ThermalPolicy`), so an experiment — or a scraped
//! [`mercury::net::SolverService`] registry — sees the control loop and
//! the thermal solver through the same exposition.
//!
//! [`ExperimentMetrics`] is the engine-side companion: fiddle events
//! applied and server power-state transitions, counted by
//! [`Experiment::run`](crate::Experiment) when
//! [`ExperimentConfig::registry`](crate::ExperimentConfig) is set.

use telemetry::{Counter, Registry};

/// Metric handles shared by a policy and whoever scrapes it.
///
/// Handles are cheap atomic clones: a policy clones the bundle freely and
/// every clone feeds the same registered family.
#[derive(Debug, Clone, Default)]
pub struct FreonMetrics {
    /// `mercury_freon_observations_total` — per-server tempd
    /// observations processed at monitoring boundaries.
    pub observations: Counter,
    /// `mercury_freon_controller_activations_total` — PD-controller
    /// reports with a positive output.
    pub activations: Counter,
    /// `mercury_freon_controller_saturations_total` — PD-controller
    /// reports clamped to zero (temperature above `T_h` but falling fast
    /// enough that the derivative term cancels the proportional one).
    pub saturations: Counter,
    /// `mercury_freon_decisions_total{action="throttle",reason="above_high"}`.
    pub throttles: Counter,
    /// `mercury_freon_decisions_total{action="release",reason="below_low"}`.
    pub releases: Counter,
    /// `mercury_freon_decisions_total{action="shutdown",reason="red_line"}`.
    pub red_line_shutdowns: Counter,
    /// `mercury_freon_decisions_total{action="power_on",reason="projected_load"}`.
    pub power_ons_load: Counter,
    /// `mercury_freon_decisions_total{action="power_on",reason="replacement"}`.
    pub power_ons_replacement: Counter,
    /// `mercury_freon_decisions_total{action="power_off",reason="heat"}`.
    pub power_offs_heat: Counter,
    /// `mercury_freon_decisions_total{action="power_off",reason="energy"}`.
    pub power_offs_energy: Counter,
    /// `mercury_freon_decisions_total{action="shed",reason="above_high"}`.
    pub sheds: Counter,
    /// `mercury_freon_decisions_total{action="step_down_frequency",reason="above_high"}`.
    pub frequency_steps_down: Counter,
    /// `mercury_freon_decisions_total{action="step_up_frequency",reason="below_low"}`.
    pub frequency_steps_up: Counter,
    /// `mercury_freon_decisions_total{action="set_fan",reason="rule"}`.
    pub fan_commands: Counter,
}

impl FreonMetrics {
    /// Fresh, detached handles (all zero).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the `mercury_freon_*` families on `registry`.
    pub fn register(&self, registry: &Registry) {
        registry.register_counter(
            "mercury_freon_observations_total",
            "Per-server tempd observations processed by the policy",
            &[],
            &self.observations,
        );
        registry.register_counter(
            "mercury_freon_controller_activations_total",
            "PD-controller reports with a positive output",
            &[],
            &self.activations,
        );
        registry.register_counter(
            "mercury_freon_controller_saturations_total",
            "PD-controller reports clamped to zero output",
            &[],
            &self.saturations,
        );
        const DECISIONS: &str = "mercury_freon_decisions_total";
        const HELP: &str = "Policy decisions, by action and reason code";
        for (action, reason, handle) in [
            ("throttle", "above_high", &self.throttles),
            ("release", "below_low", &self.releases),
            ("shutdown", "red_line", &self.red_line_shutdowns),
            ("power_on", "projected_load", &self.power_ons_load),
            ("power_on", "replacement", &self.power_ons_replacement),
            ("power_off", "heat", &self.power_offs_heat),
            ("power_off", "energy", &self.power_offs_energy),
            ("shed", "above_high", &self.sheds),
            (
                "step_down_frequency",
                "above_high",
                &self.frequency_steps_down,
            ),
            ("step_up_frequency", "below_low", &self.frequency_steps_up),
            ("set_fan", "rule", &self.fan_commands),
        ] {
            registry.register_counter(
                DECISIONS,
                HELP,
                &[("action", action), ("reason", reason)],
                handle,
            );
        }
    }

    /// Total decisions across every `{action, reason}` pair.
    #[must_use]
    pub fn decisions(&self) -> u64 {
        self.throttles.get()
            + self.releases.get()
            + self.red_line_shutdowns.get()
            + self.power_ons_load.get()
            + self.power_ons_replacement.get()
            + self.power_offs_heat.get()
            + self.power_offs_energy.get()
            + self.sheds.get()
            + self.frequency_steps_down.get()
            + self.frequency_steps_up.get()
            + self.fan_commands.get()
    }

    /// Books one PD-controller report: positive outputs are activations,
    /// zero outputs (clamped negatives) are saturations.
    pub(crate) fn record_output(&self, output: f64) {
        if output > 0.0 {
            self.activations.inc();
        } else {
            self.saturations.inc();
        }
    }
}

/// Engine-side counters kept by one [`Experiment`](crate::Experiment) run.
#[derive(Debug, Clone, Default)]
pub struct ExperimentMetrics {
    /// `mercury_freon_fiddle_events_total` — fiddle commands applied to
    /// the cluster solver (the injected thermal emergencies).
    pub fiddle_events: Counter,
    /// `mercury_freon_power_state_changes_total` — server power flips
    /// mirrored into the thermal model (off → residual draw, on →
    /// restored power models).
    pub power_state_changes: Counter,
    /// `mercury_freon_policy_fan_commands_total` — fan-CFM commands a
    /// policy issued that the engine applied to the thermal model.
    pub policy_fan_commands: Counter,
    /// `mercury_freon_incident_bundles_total` — flight-recorder incident
    /// bundles written to disk.
    pub incident_bundles: Counter,
    /// `mercury_freon_trend_anomalies_total` — developing anomalies the
    /// history trend detectors flagged (red-line ETAs, z-score spikes,
    /// flatlined sensors), before any recorder cooldown.
    pub trend_anomalies: Counter,
}

impl ExperimentMetrics {
    /// Fresh, detached handles (all zero).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the engine families on `registry`.
    pub fn register(&self, registry: &Registry) {
        registry.register_counter(
            "mercury_freon_fiddle_events_total",
            "Fiddle commands applied to the cluster solver",
            &[],
            &self.fiddle_events,
        );
        registry.register_counter(
            "mercury_freon_power_state_changes_total",
            "Server power-state flips mirrored into the thermal model",
            &[],
            &self.power_state_changes,
        );
        registry.register_counter(
            "mercury_freon_policy_fan_commands_total",
            "Policy fan-CFM commands applied to the thermal model",
            &[],
            &self.policy_fan_commands,
        );
        registry.register_counter(
            "mercury_freon_incident_bundles_total",
            "Flight-recorder incident bundles written to disk",
            &[],
            &self.incident_bundles,
        );
        registry.register_counter(
            "mercury_freon_trend_anomalies_total",
            "Developing anomalies flagged by the history trend detectors",
            &[],
            &self.trend_anomalies,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_family_renders_with_action_and_reason() {
        let registry = Registry::new();
        let m = FreonMetrics::new();
        m.register(&registry);
        m.throttles.add(3);
        m.red_line_shutdowns.inc();
        let text = registry.render_prometheus();
        assert!(text.contains(
            "mercury_freon_decisions_total{action=\"throttle\",reason=\"above_high\"} 3"
        ));
        assert!(text
            .contains("mercury_freon_decisions_total{action=\"shutdown\",reason=\"red_line\"} 1"));
        assert_eq!(m.decisions(), 4);
    }

    #[test]
    fn outputs_split_into_activations_and_saturations() {
        let m = FreonMetrics::new();
        m.record_output(0.4);
        m.record_output(0.0);
        m.record_output(0.1);
        assert_eq!(m.activations.get(), 2);
        assert_eq!(m.saturations.get(), 1);
    }

    #[test]
    fn experiment_metrics_register_engine_families() {
        let registry = Registry::new();
        let m = ExperimentMetrics::new();
        m.register(&registry);
        m.fiddle_events.inc();
        m.power_state_changes.add(2);
        let text = registry.render_prometheus();
        assert!(text.contains("mercury_freon_fiddle_events_total 1"));
        assert!(text.contains("mercury_freon_power_state_changes_total 2"));
    }
}
