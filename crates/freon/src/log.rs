//! Experiment time-series logs.

use serde::{Deserialize, Serialize};
use std::io::Write;

/// One recorded second of an experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogRow {
    /// Simulated time, seconds.
    pub time_s: u64,
    /// Per-server CPU temperature, °C.
    pub cpu_temp: Vec<f64>,
    /// Per-server disk temperature, °C.
    pub disk_temp: Vec<f64>,
    /// Per-server CPU utilization over the second.
    pub cpu_util: Vec<f64>,
    /// Per-server LVS weight.
    pub weight: Vec<f64>,
    /// Per-server active connections.
    pub connections: Vec<usize>,
    /// Servers accepting connections.
    pub active_servers: usize,
    /// Requests offered this second.
    pub offered: usize,
    /// Requests dropped this second.
    pub dropped: usize,
    /// Requests completed this second.
    pub completed: usize,
    /// Request-seconds accumulated this second (for Little's-law response
    /// times).
    pub request_seconds: f64,
}

/// The full record of one experiment run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ExperimentLog {
    /// Policy name the run used.
    pub policy: String,
    rows: Vec<LogRow>,
}

impl ExperimentLog {
    /// Creates an empty log for the named policy.
    pub fn new(policy: impl Into<String>) -> Self {
        ExperimentLog {
            policy: policy.into(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: LogRow) {
        self.rows.push(row);
    }

    /// All rows, in time order.
    pub fn rows(&self) -> &[LogRow] {
        &self.rows
    }

    /// Number of recorded seconds.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total offered requests.
    pub fn total_offered(&self) -> u64 {
        self.rows.iter().map(|r| r.offered as u64).sum()
    }

    /// Total dropped requests.
    pub fn total_dropped(&self) -> u64 {
        self.rows.iter().map(|r| r.dropped as u64).sum()
    }

    /// Mean response time of completed requests over the run, seconds
    /// (Little's law). Zero when nothing completed.
    pub fn mean_response_time_s(&self) -> f64 {
        let completed: u64 = self.rows.iter().map(|r| r.completed as u64).sum();
        if completed == 0 {
            return 0.0;
        }
        let request_seconds: f64 = self.rows.iter().map(|r| r.request_seconds).sum();
        request_seconds / completed as f64
    }

    /// Fraction of offered requests that were dropped.
    pub fn drop_rate(&self) -> f64 {
        let offered = self.total_offered();
        if offered == 0 {
            0.0
        } else {
            self.total_dropped() as f64 / offered as f64
        }
    }

    /// Peak CPU temperature reached by one server over the run.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range for the recorded rows.
    pub fn max_cpu_temp(&self, server: usize) -> f64 {
        self.rows
            .iter()
            .map(|r| r.cpu_temp[server])
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Seconds one server's CPU spent above a temperature.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range for the recorded rows.
    pub fn seconds_above(&self, server: usize, celsius: f64) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.cpu_temp[server] > celsius)
            .count() as u64
    }

    /// The first time a server's CPU exceeded a temperature, if ever.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range for the recorded rows.
    pub fn first_crossing(&self, server: usize, celsius: f64) -> Option<u64> {
        self.rows
            .iter()
            .find(|r| r.cpu_temp[server] > celsius)
            .map(|r| r.time_s)
    }

    /// Mean number of active servers over the run (Freon-EC's thick line).
    pub fn mean_active_servers(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows
            .iter()
            .map(|r| r.active_servers as f64)
            .sum::<f64>()
            / self.rows.len() as f64
    }

    /// Writes the log as CSV: time, then per-server temp/util/weight
    /// blocks, then cluster-wide columns.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        let n = self.rows.first().map(|r| r.cpu_temp.len()).unwrap_or(0);
        write!(w, "time")?;
        for i in 0..n {
            write!(
                w,
                ",cpu_temp_m{0},disk_temp_m{0},cpu_util_m{0},weight_m{0},conns_m{0}",
                i + 1
            )?;
        }
        writeln!(w, ",active_servers,offered,dropped,completed")?;
        for r in &self.rows {
            write!(w, "{}", r.time_s)?;
            for i in 0..n {
                write!(
                    w,
                    ",{:.3},{:.3},{:.4},{:.4},{}",
                    r.cpu_temp[i], r.disk_temp[i], r.cpu_util[i], r.weight[i], r.connections[i]
                )?;
            }
            writeln!(
                w,
                ",{},{},{},{}",
                r.active_servers, r.offered, r.dropped, r.completed
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(t: u64, temp: f64, dropped: usize) -> LogRow {
        LogRow {
            time_s: t,
            cpu_temp: vec![temp, 50.0],
            disk_temp: vec![40.0, 40.0],
            cpu_util: vec![0.5, 0.5],
            weight: vec![1.0, 1.0],
            connections: vec![3, 4],
            active_servers: 2,
            offered: 100,
            dropped,
            completed: 100 - dropped,
            request_seconds: (100 - dropped) as f64 * 0.03,
        }
    }

    #[test]
    fn aggregates() {
        let mut log = ExperimentLog::new("freon");
        log.push(row(0, 60.0, 0));
        log.push(row(1, 68.0, 10));
        log.push(row(2, 66.0, 0));
        assert_eq!(log.len(), 3);
        assert_eq!(log.total_offered(), 300);
        assert_eq!(log.total_dropped(), 10);
        assert!((log.drop_rate() - 10.0 / 300.0).abs() < 1e-12);
        assert_eq!(log.max_cpu_temp(0), 68.0);
        assert_eq!(log.seconds_above(0, 65.0), 2);
        assert_eq!(log.first_crossing(0, 67.0), Some(1));
        assert_eq!(log.first_crossing(1, 67.0), None);
        assert_eq!(log.mean_active_servers(), 2.0);
        assert!((log.mean_response_time_s() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn empty_log_is_harmless() {
        let log = ExperimentLog::new("x");
        assert!(log.is_empty());
        assert_eq!(log.drop_rate(), 0.0);
        assert_eq!(log.mean_active_servers(), 0.0);
        assert_eq!(log.mean_response_time_s(), 0.0);
        let mut out = Vec::new();
        log.write_csv(&mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap().lines().count(), 1);
    }

    #[test]
    fn csv_has_per_server_blocks() {
        let mut log = ExperimentLog::new("freon");
        log.push(row(0, 60.0, 0));
        let mut out = Vec::new();
        log.write_csv(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let header = text.lines().next().unwrap();
        assert!(header.contains("cpu_temp_m1"));
        assert!(header.contains("weight_m2"));
        assert!(header.ends_with("active_servers,offered,dropped,completed"));
        assert_eq!(text.lines().count(), 2);
    }
}
