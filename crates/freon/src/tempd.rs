//! `tempd` — the per-server temperature daemon (§4.1, Figure 9).

use crate::config::FreonConfig;
use crate::controller::PdController;
use std::collections::HashMap;

/// What one `tempd` observation produced.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TempdReport {
    /// The overall controller output, `max{output_c}` over components
    /// above their high threshold. `None` when no component is above
    /// `T_h` (the daemons stay silent between `T_l` and `T_h`).
    pub output: Option<f64>,
    /// Components that crossed above `T_h` *on this observation*.
    pub crossed_high: Vec<String>,
    /// Components that crossed below `T_l` on this observation.
    pub crossed_low: Vec<String>,
    /// True when every monitored component is below its `T_l` — the
    /// signal to lift all load restrictions.
    pub all_below_low: bool,
    /// The first component found above its red line, if any.
    pub red_lined: Option<String>,
}

/// The temperature daemon for one server: tracks per-component episode
/// state and PD controllers, and turns raw temperatures into a
/// [`TempdReport`] once per monitoring period.
#[derive(Debug, Clone)]
pub struct Tempd {
    controllers: HashMap<String, PdController>,
    above_high: HashMap<String, bool>,
    kp: f64,
    kd: f64,
}

impl Tempd {
    /// Creates a daemon using the gains from `config`.
    pub fn new(config: &FreonConfig) -> Self {
        Tempd {
            controllers: HashMap::new(),
            above_high: HashMap::new(),
            kp: config.kp,
            kd: config.kd,
        }
    }

    /// Whether any component is currently in an above-`T_h` episode.
    pub fn in_emergency(&self) -> bool {
        self.above_high.values().any(|&b| b)
    }

    /// Processes one observation of `(component, temperature)` pairs
    /// against the thresholds in `config`.
    ///
    /// Components without configured thresholds are ignored (tempd only
    /// monitors the CPU(s) and disk(s) it was told about).
    pub fn observe(&mut self, temps: &[(String, f64)], config: &FreonConfig) -> TempdReport {
        let mut report = TempdReport::default();
        let mut any_monitored = false;
        let mut all_below_low = true;

        for (component, temp) in temps {
            let thresholds = match config.thresholds_for(component) {
                Some(t) => t,
                None => continue,
            };
            any_monitored = true;

            if *temp >= thresholds.red_line && report.red_lined.is_none() {
                report.red_lined = Some(component.clone());
            }
            if *temp >= thresholds.low {
                all_below_low = false;
            }

            let was_above = self.above_high.get(component).copied().unwrap_or(false);
            if *temp > thresholds.high {
                if !was_above {
                    report.crossed_high.push(component.clone());
                    self.above_high.insert(component.clone(), true);
                }
                let controller = self
                    .controllers
                    .entry(component.clone())
                    .or_insert_with(|| PdController::new(self.kp, self.kd));
                let output = controller.output(*temp, thresholds.high);
                report.output = Some(report.output.map_or(output, |o: f64| o.max(output)));
            } else if was_above && *temp < thresholds.low {
                // The episode ends only when the component falls below
                // T_l; between T_l and T_h tempd stays quiet but keeps the
                // episode open.
                report.crossed_low.push(component.clone());
                self.above_high.insert(component.clone(), false);
                if let Some(c) = self.controllers.get_mut(component) {
                    c.reset();
                }
            }
        }

        report.all_below_low = any_monitored && all_below_low;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temps(cpu: f64, disk: f64) -> Vec<(String, f64)> {
        vec![
            ("cpu".to_string(), cpu),
            ("disk_platters".to_string(), disk),
        ]
    }

    #[test]
    fn silent_below_high_threshold() {
        let cfg = FreonConfig::paper();
        let mut tempd = Tempd::new(&cfg);
        let report = tempd.observe(&temps(60.0, 50.0), &cfg);
        assert_eq!(report.output, None);
        assert!(report.crossed_high.is_empty());
        assert!(report.all_below_low);
        assert!(!tempd.in_emergency());
    }

    #[test]
    fn crossing_high_triggers_output_and_episode() {
        let cfg = FreonConfig::paper();
        let mut tempd = Tempd::new(&cfg);
        let report = tempd.observe(&temps(68.0, 50.0), &cfg);
        assert_eq!(report.crossed_high, vec!["cpu".to_string()]);
        // kp·(68−67) + kd·0 = 0.1.
        assert!((report.output.unwrap() - 0.1).abs() < 1e-12);
        assert!(tempd.in_emergency());
        // Next observation, still hot and rising: output grows, but no new
        // crossing event.
        let report = tempd.observe(&temps(69.0, 50.0), &cfg);
        assert!(report.crossed_high.is_empty());
        assert!((report.output.unwrap() - (0.2 + 0.2)).abs() < 1e-12);
    }

    #[test]
    fn between_low_and_high_keeps_quiet_but_episode_open() {
        let cfg = FreonConfig::paper();
        let mut tempd = Tempd::new(&cfg);
        tempd.observe(&temps(68.0, 50.0), &cfg);
        // Drops to 65: between T_l=64 and T_h=67 -> no output, no release.
        let report = tempd.observe(&temps(65.0, 50.0), &cfg);
        assert_eq!(report.output, None);
        assert!(report.crossed_low.is_empty());
        assert!(!report.all_below_low);
        assert!(tempd.in_emergency());
    }

    #[test]
    fn falling_below_low_ends_the_episode() {
        let cfg = FreonConfig::paper();
        let mut tempd = Tempd::new(&cfg);
        tempd.observe(&temps(68.0, 50.0), &cfg);
        let report = tempd.observe(&temps(63.0, 50.0), &cfg);
        assert_eq!(report.crossed_low, vec!["cpu".to_string()]);
        assert!(report.all_below_low);
        assert!(!tempd.in_emergency());
    }

    #[test]
    fn output_is_max_over_components() {
        let cfg = FreonConfig::paper();
        let mut tempd = Tempd::new(&cfg);
        // CPU 1° over (0.1), disk 3° over its 65 threshold (0.3).
        let report = tempd.observe(&temps(68.0, 68.0), &cfg);
        assert!((report.output.unwrap() - 0.3).abs() < 1e-12);
        assert_eq!(report.crossed_high.len(), 2);
    }

    #[test]
    fn red_line_detection() {
        let cfg = FreonConfig::paper();
        let mut tempd = Tempd::new(&cfg);
        let report = tempd.observe(&temps(69.5, 50.0), &cfg);
        assert_eq!(report.red_lined.as_deref(), Some("cpu"));
        let report = tempd.observe(&temps(60.0, 67.5), &cfg);
        assert_eq!(report.red_lined.as_deref(), Some("disk_platters"));
    }

    #[test]
    fn unmonitored_components_are_ignored() {
        let cfg = FreonConfig::paper();
        let mut tempd = Tempd::new(&cfg);
        let report = tempd.observe(&[("psu".to_string(), 500.0)], &cfg);
        assert_eq!(report.output, None);
        assert!(report.red_lined.is_none());
        // No monitored component at all -> all_below_low is false (we
        // cannot claim anything cooled down).
        assert!(!report.all_below_low);
    }
}
