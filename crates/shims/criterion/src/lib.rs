//! Offline stand-in for the `criterion` crate.
//!
//! A wall-clock harness with criterion's API shape: `Criterion`,
//! `Bencher::iter`, benchmark groups with `bench_with_input`, and the
//! `criterion_group!`/`criterion_main!` macros. Like the real crate it
//! detects how it was invoked: under `cargo bench` (a `--bench` argument
//! is present) each benchmark is timed and a `time/iter` line is
//! printed; under `cargo test` each benchmark body runs exactly once so
//! bench targets double as smoke tests.
//!
//! Statistics are deliberately simple — median of `sample_size` samples,
//! no outlier analysis, no HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness state and configuration.
pub struct Criterion {
    sample_size: usize,
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            bench_mode: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Sets how many timing samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, self.bench_mode, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A parameterized benchmark label (`group/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Label made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Label made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(&label, samples, self.criterion.bench_mode, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(
            &label,
            samples,
            self.criterion.bench_mode,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    mode: BenchMode,
    /// Median seconds per iteration, filled in by `iter` in bench mode.
    result_s: Option<f64>,
}

enum BenchMode {
    /// `cargo test`: run the body once, no timing.
    Smoke,
    /// `cargo bench`: collect this many timed samples.
    Timed { samples: usize },
}

impl Bencher {
    /// Calls `routine` repeatedly and records its median time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            BenchMode::Smoke => {
                black_box(routine());
            }
            BenchMode::Timed { samples } => {
                // Warm up and size the per-sample batch so one sample
                // takes roughly a millisecond.
                let start = Instant::now();
                black_box(routine());
                let once = start.elapsed().max(Duration::from_nanos(1));
                let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos())
                    .clamp(1, 1_000_000) as usize;

                let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
                for _ in 0..samples {
                    let t0 = Instant::now();
                    for _ in 0..batch {
                        black_box(routine());
                    }
                    per_iter.push(t0.elapsed().as_secs_f64() / batch as f64);
                }
                per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
                self.result_s = Some(per_iter[per_iter.len() / 2]);
            }
        }
    }
}

fn run_one(label: &str, samples: usize, bench_mode: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        mode: if bench_mode {
            BenchMode::Timed { samples }
        } else {
            BenchMode::Smoke
        },
        result_s: None,
    };
    f(&mut bencher);
    if bench_mode {
        match bencher.result_s {
            Some(s) => println!("{label:<50} time: {}", format_time(s)),
            None => println!("{label:<50} (no iter() call)"),
        }
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s/iter")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms/iter", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs/iter", seconds * 1e6)
    } else {
        format!("{:.1} ns/iter", seconds * 1e9)
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            sample_size: 10,
            bench_mode: false,
        };
        let mut runs = 0;
        c.bench_function("probe", |b| {
            b.iter(|| runs += 1);
        });
        assert_eq!(runs, 1);
    }

    #[test]
    fn timed_mode_collects_samples() {
        let mut c = Criterion {
            sample_size: 5,
            bench_mode: true,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
    }
}
