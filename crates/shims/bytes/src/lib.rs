//! Offline stand-in for the `bytes` crate.
//!
//! Supplies the two traits the wire protocol uses: [`Buf`] for cursored
//! reads from `&[u8]` and [`BufMut`] for appends to `Vec<u8>`. All
//! multi-byte accessors are big-endian (network order), matching the
//! real crate's `get_*`/`put_*` defaults. Reads past the end panic, as
//! they do upstream; protocol code checks `remaining()` first.

/// Cursored read access to a contiguous byte buffer.
pub trait Buf {
    /// Bytes left between the cursor and the end.
    fn remaining(&self) -> usize;

    /// Returns the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Moves the cursor forward `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    /// Reads a big-endian `f32`.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Append access to a growable byte buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f32`.
    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_big_endian() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u16(0xBEEF);
        buf.put_f32(1.5);
        buf.put_f64(-2.25);
        buf.put_slice(b"ok");

        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_f32(), 1.5);
        assert_eq!(r.get_f64(), -2.25);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.chunk(), b"ok");
        r.advance(2);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn u16_is_network_order() {
        let mut buf = Vec::new();
        buf.put_u16(0x0102);
        assert_eq!(buf, vec![0x01, 0x02]);
    }
}
