//! Offline stand-in for `serde_derive`.
//!
//! The real crate depends on `syn`/`quote`, which are unavailable in this
//! build environment, so the derives here are built on a small hand-rolled
//! token walker. They cover exactly the shapes this workspace uses:
//! non-generic structs (named, tuple/newtype, unit) and enums whose
//! variants are unit, newtype, tuple, or struct-like. Attributes are
//! accepted and ignored (`#[serde(transparent)]` on newtypes coincides
//! with the default newtype representation, so ignoring it is correct).
//!
//! Generated impls target the sibling `serde` stand-in: `Serialize`
//! lowers into `::serde::Value`, `Deserialize` rebuilds from one, with
//! serde's externally-tagged enum representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or of one enum variant.
enum Fields {
    /// No payload (`struct S;` or `Variant`).
    Unit,
    /// Positional fields (`struct S(A, B)` or `Variant(A, B)`), by count.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

enum ItemKind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("derive(Serialize): generated code failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("derive(Deserialize): generated code failed to parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and the visibility qualifier.
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);

    let keyword = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;

    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected type name, found {other:?}"),
    };
    i += 1;

    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive: generic type `{name}` is not supported by the offline serde stand-in");
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("derive: unexpected struct body for `{name}`: {other:?}"),
            };
            Item {
                name,
                kind: ItemKind::Struct(fields),
            }
        }
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("derive: expected enum body for `{name}`, found {other:?}"),
            };
            Item {
                name,
                kind: ItemKind::Enum(parse_variants(body)),
            }
        }
        other => panic!("derive: expected `struct` or `enum`, found `{other}`"),
    }
}

fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // `#`
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1; // `[...]`
        }
    }
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        // `pub(crate)` / `pub(super)` / `pub(in ...)`
        if matches!(
            toks.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

/// Advances past a type, stopping at a `,` outside any `<...>` nesting.
/// Consumes the trailing comma if present.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0i64;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("derive: expected field name, found {other:?}"),
        };
        i += 1; // name
        i += 1; // `:`
        skip_type(&toks, &mut i);
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        if i >= toks.len() {
            break; // trailing comma
        }
        skip_type(&toks, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<(String, Fields)> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while i < toks.len() && !matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
            }
        }
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => match fields {
            Fields::Unit => "::serde::Value::Null".to_string(),
            Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect();
                format!("::serde::Value::Arr(vec![{}])", items.join(", "))
            }
            Fields::Named(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!("(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))")
                    })
                    .collect();
                format!("::serde::Value::Obj(vec![{}])", entries.join(", "))
            }
        },
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    Fields::Unit => format!(
                        "Self::{vname} => ::serde::Value::Str(String::from(\"{vname}\")),"
                    ),
                    Fields::Tuple(1) => format!(
                        "Self::{vname}(x0) => ::serde::Value::Obj(vec![(String::from(\"{vname}\"), ::serde::Serialize::to_value(x0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::to_value(x{k})"))
                            .collect();
                        format!(
                            "Self::{vname}({}) => ::serde::Value::Obj(vec![(String::from(\"{vname}\"), ::serde::Value::Arr(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "Self::{vname} {{ {binds} }} => ::serde::Value::Obj(vec![(String::from(\"{vname}\"), ::serde::Value::Obj(vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Expression that deserializes field `f` out of the object value `src`.
fn named_field_expr(owner: &str, f: &str, src: &str) -> String {
    format!(
        "{f}: ::serde::Deserialize::from_value({src}.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
             .map_err(|e| ::serde::DeError::msg(format!(\"{owner}.{f}: {{}}\", e.0)))?"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => match fields {
            Fields::Unit => format!(
                "match v {{\n\
                     ::serde::Value::Null => Ok(Self),\n\
                     other => Err(::serde::DeError::msg(format!(\"expected null for {name}, found {{:?}}\", other))),\n\
                 }}"
            ),
            Fields::Tuple(1) => {
                "Ok(Self(::serde::Deserialize::from_value(v)?))".to_string()
            }
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                    .collect();
                format!(
                    "match v {{\n\
                         ::serde::Value::Arr(items) if items.len() == {n} => Ok(Self({})),\n\
                         other => Err(::serde::DeError::msg(format!(\"expected {n}-element array for {name}, found {{:?}}\", other))),\n\
                     }}",
                    items.join(", ")
                )
            }
            Fields::Named(fields) => {
                let inits: Vec<String> =
                    fields.iter().map(|f| named_field_expr(name, f, "v")).collect();
                format!(
                    "match v {{\n\
                         ::serde::Value::Obj(_) => Ok(Self {{ {} }}),\n\
                         other => Err(::serde::DeError::msg(format!(\"expected object for {name}, found {{:?}}\", other))),\n\
                     }}",
                    inits.join(", ")
                )
            }
        },
        ItemKind::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push(format!(
                            "::serde::Value::Str(s) if s == \"{vname}\" => Ok(Self::{vname}),"
                        ));
                    }
                    Fields::Tuple(1) => {
                        tagged_arms.push(format!(
                            "\"{vname}\" => Ok(Self::{vname}(::serde::Deserialize::from_value(inner)?)),"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vname}\" => match inner {{\n\
                                 ::serde::Value::Arr(items) if items.len() == {n} => Ok(Self::{vname}({})),\n\
                                 other => Err(::serde::DeError::msg(format!(\"expected {n}-element array for {name}::{vname}, found {{:?}}\", other))),\n\
                             }},",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| named_field_expr(&format!("{name}::{vname}"), f, "inner"))
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vname}\" => Ok(Self::{vname} {{ {} }}),",
                            inits.join(", ")
                        ));
                    }
                }
            }
            let tagged_match = if tagged_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Obj(entries) if entries.len() == 1 => {{\n\
                         let (tag, inner) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {}\n\
                             other => Err(::serde::DeError::msg(format!(\"unknown variant `{{}}` for {name}\", other))),\n\
                         }}\n\
                     }}",
                    tagged_arms.join("\n")
                )
            };
            format!(
                "match v {{\n\
                     {}\n\
                     {}\n\
                     other => Err(::serde::DeError::msg(format!(\"unexpected value for {name}: {{:?}}\", other))),\n\
                 }}",
                unit_arms.join("\n"),
                tagged_match
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
