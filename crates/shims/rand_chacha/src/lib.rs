//! Offline stand-in for `rand_chacha`.
//!
//! Implements a genuine ChaCha stream cipher keystream (8 rounds) behind
//! the [`rand::RngCore`]/[`rand::SeedableRng`] traits from the sibling
//! `rand` stand-in. The word stream does not bit-match the real
//! `rand_chacha` crate (block-to-word serialization differs), but it has
//! the same statistical quality and the same property the workspace
//! depends on: one seed, one reproducible stream.

use rand::{RngCore, SeedableRng};

/// Re-export path compatibility: the real crate re-exports `rand_core`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha8-based random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 8 key words, 64-bit counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill needed".
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, inp)) in self
            .buf
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*inp);
        }
        // Increment the 64-bit block counter (words 12–13).
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn keystream_looks_uniform() {
        // Crude sanity check: mean of many uniform draws is near 0.5.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..5 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
