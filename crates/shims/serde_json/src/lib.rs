//! Offline stand-in for `serde_json`.
//!
//! Renders the sibling `serde` stand-in's [`Value`] tree to JSON text and
//! parses JSON text back into one. The entry points mirror the real
//! crate: [`to_string`], [`to_vec`], [`from_str`], [`from_slice`], and an
//! [`Error`] type. Output is compact (no whitespace); numbers that are
//! exact integers print without a fractional part, everything else uses
//! Rust's shortest round-trip formatting.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(Error::from)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    // Integers in the exactly-representable range print like serde_json
    // prints integer types: no fractional part.
    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{:?}` is Rust's shortest round-trip float formatting.
        out.push_str(&format!("{n:?}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error::msg("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is validated UTF-8).
                    let s = std::str::from_utf8(rest).map_err(|_| Error::msg("bad utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::msg("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::msg("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::msg(format!("invalid number `{s}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("cpu \"hot\"\n".into())),
            (
                "temps".into(),
                Value::Arr(vec![Value::Num(21.6), Value::Num(-3.0)]),
            ),
            ("on".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&Value::Num(42.0)).unwrap(), "42");
        assert_eq!(to_string(&Value::Num(21.6)).unwrap(), "21.6");
    }

    #[test]
    fn parses_escapes_and_exponents() {
        let v: Value = from_str(r#"{"s": "aé\t", "n": 1.5e3}"#).unwrap();
        assert_eq!(v.get("s"), Some(&Value::Str("aé\t".into())));
        assert_eq!(v.get("n"), Some(&Value::Num(1500.0)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2,,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
    }
}
