//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this workspace ships a minimal self-describing serialization
//! framework under the same crate name. The API surface intentionally
//! mirrors the subset of serde the workspace uses: `Serialize` /
//! `Deserialize` traits plus `#[derive(Serialize, Deserialize)]`.
//!
//! Instead of serde's visitor architecture, both traits go through a
//! simple tree [`Value`]: serializers lower data into a `Value`, and
//! format crates (the sibling `serde_json` stand-in) render or parse that
//! tree. Enum representation follows serde's externally-tagged default
//! (`"Variant"` for unit variants, `{"Variant": ...}` otherwise), so data
//! written by the real serde_json for these types reads back fine and
//! vice versa for the common shapes used here.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree — the meeting point between `Serialize`
/// and data formats.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number (stored as `f64`; all numeric data in this workspace
    /// fits in 53 bits of mantissa).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Arr(Vec<Value>),
    /// A map with insertion-ordered string keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks a key up in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    /// Lowers `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, found {other:?}"))),
        }
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(DeError::msg(format!(
                        concat!("expected ", stringify!($t), ", found {:?}"),
                        other
                    ))),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<[T]> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(std::sync::Arc::from)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic.
        let mut entries: Vec<_> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::msg(format!("expected object, found {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::msg(format!("expected object, found {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const N: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Arr(items) if items.len() == N => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::msg(format!(
                        "expected {N}-tuple, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        let v = vec![(1u8, 2.0f64), (3, 4.0)];
        assert_eq!(Vec::<(u8, f64)>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(bool::from_value(&Value::Num(1.0)).is_err());
        assert!(Vec::<u8>::from_value(&Value::Str("no".into())).is_err());
    }
}
