//! Offline stand-in for the `rand` crate.
//!
//! Provides the trait surface this workspace uses — [`RngCore`],
//! [`SeedableRng`], and the extension trait [`Rng`] with `gen`,
//! `gen_range`, and `gen_bool` — without any platform entropy sources.
//! Generators are always explicitly seeded (the sibling `rand_chacha`
//! stand-in supplies the concrete ChaCha8 generator), which matches how
//! the workspace uses randomness: reproducible streams keyed by a seed.
//!
//! The sampling algorithms are deliberately simple (53-bit mantissa
//! floats, modulo reduction for integer ranges). They do not reproduce
//! the real crate's bit streams, only its API and its per-seed
//! determinism, which is what the test suites rely on.

use std::ops::{Range, RangeInclusive};

/// A source of random `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed material, e.g. `[u8; 32]`.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded to a full seed with
    /// SplitMix64 (deterministic, well-distributed).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from a generator's raw output
/// (the stand-in for `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
              usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
              i64 => next_u64, isize => next_u64);

/// Types drawable uniformly from a bounded range (the stand-in for
/// `SampleUniform`). The blanket [`SampleRange`] impls below are generic
/// over this trait — mirroring the real crate's structure matters for
/// type inference: `rng.gen_range(30..=120)` must let the literals'
/// integer type be pinned by how the result is used.
pub trait SampleUniform: Sized {
    /// Draws from `[lo, hi)` if `inclusive` is false, `[lo, hi]` otherwise.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                let span = (hi as i128 - lo as i128 + inclusive as i128) as u128;
                assert!(span > 0, "gen_range: empty range");
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "gen_range: empty range");
                let u = <$t as Standard>::draw(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Ranges a uniform value can be drawn from (the stand-in for
/// `SampleRange<T>`).
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] just like the real crate's `Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny xorshift generator for exercising the traits.
    struct XorShift(u64);

    impl RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    impl SeedableRng for XorShift {
        type Seed = [u8; 8];
        fn from_seed(seed: [u8; 8]) -> Self {
            XorShift(u64::from_le_bytes(seed).max(1))
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = XorShift::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(30..=120);
            assert!((30..=120).contains(&i));
            let f = rng.gen_range(-0.45..0.45);
            assert!((-0.45..0.45).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = XorShift::seed_from_u64(42);
        let mut b = XorShift::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
