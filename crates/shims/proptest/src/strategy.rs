//! Strategies: value generators with combinators.

use crate::regex_gen;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// The RNG handed to strategies during generation.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws from
    /// it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying the predicate, retrying otherwise.
    /// `reason` is reported if no value passes after many attempts.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter: no value passed after 1000 attempts ({})",
            self.reason
        );
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Object-safe mirror of [`Strategy`] for boxing.
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Uniform choice between boxed strategies (what `prop_oneof!` builds).
#[derive(Clone)]
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Creates a union over the given alternatives.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (the stand-in for
/// `Arbitrary`, covering the primitives this workspace uses).
pub trait ArbitraryValue: Sized {
    /// Generates a value uniformly over the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy for the full domain of `T` (`any::<u8>()` etc.).
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// Returns the whole-domain strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// Numeric ranges are strategies.
macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// String literals are regex strategies.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regex_gen::generate(self, rng)
    }
}

// Tuples of strategies are strategies over tuples of values.
macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
}
