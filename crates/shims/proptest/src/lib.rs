//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy/combinator/runner surface this workspace's
//! property tests use — `Strategy` with `prop_map`/`prop_flat_map`/
//! `prop_filter`, tuple and range strategies, `collection::vec`,
//! `option::of`, regex-subset string strategies, `prop_oneof!`, and the
//! `proptest!` macro with `prop_assert!`/`prop_assert_eq!`/`prop_assume!`.
//!
//! Differences from the real crate, by design:
//! - **No shrinking.** A failing case reports the generated inputs via
//!   `Debug` and the assertion message, unminimized.
//! - **Deterministic seeding.** Each test's RNG is seeded from the test
//!   name, so failures reproduce across runs by default.
//! - **Regex strategies** support the subset used here: literals, char
//!   classes (ranges, escapes), `(a|b)` alternation, `{m,n}`/`{n}`/`?`/
//!   `*`/`+` repetition, and `\PC` (any non-control char).

pub mod strategy;
pub mod test_runner;

mod regex_gen;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::option` — strategies for `Option`.
pub mod option {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing `Option`s of an inner strategy's values.
    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    /// Generates `None` about a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    // Macros are exported at the crate root; re-list them so both
    // `prop_assert!` and `proptest::prelude::prop_assert!` resolve.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Builds a strategy choosing uniformly between the given strategies
/// (which must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fails the current test case with a message if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case if the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                left, right
            )));
        }
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                left
            )));
        }
    }};
}

/// Discards the current test case (does not count toward the case
/// budget) if the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config = $config;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            let strategy = ($($strategy,)+);
            let outcome = runner.run(&strategy, |($($pat,)+)| {
                $body
                ::std::result::Result::Ok(())
            });
            if let ::std::result::Result::Err(message) = outcome {
                panic!("{}", message);
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs(
            xs in crate::collection::vec(0.5f64..2.0, 1..10),
            n in 3usize..=7,
            flag in crate::option::of(0u32..5),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 10);
            prop_assert!(xs.iter().all(|x| (0.5..2.0).contains(x)));
            prop_assert!((3..=7).contains(&n));
            if let Some(f) = flag {
                prop_assert!(f < 5);
            }
        }

        #[test]
        fn regex_strategies_match_shape(
            name in "[a-z][a-z0-9_]{0,8}",
            keyword in "(machine|cluster|widget)",
            garbage in "\\PC{0,40}",
        ) {
            prop_assert!(!name.is_empty() && name.len() <= 9);
            prop_assert!(name.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!(["machine", "cluster", "widget"].contains(&keyword.as_str()));
            prop_assert!(garbage.chars().all(|c| !c.is_control()));
        }

        #[test]
        fn combinators_compose(
            v in (1usize..5).prop_flat_map(|n| crate::collection::vec(Just(n), n..=n)),
            s in prop_oneof!["[a-z]{3}", "[0-9]{3}"]
                .prop_filter("letters only start", |s| !s.is_empty())
                .prop_map(|s| s.len()),
        ) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x == v.len()));
            prop_assert_eq!(s, 3);
        }

        #[test]
        fn assume_rejects_do_not_fail(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn failures_report_and_panic() {
        let mut runner = crate::test_runner::TestRunner::new(
            crate::test_runner::ProptestConfig::with_cases(8),
            "failures_report_and_panic",
        );
        let result = runner.run(&(0u32..10,), |(x,)| {
            prop_assert!(x < 3, "x too big: {x}");
            Ok(())
        });
        let message = result.expect_err("a case with x >= 3 must fail");
        assert!(
            message.contains("x too big"),
            "unexpected message: {message}"
        );
    }
}
