//! The case runner behind the `proptest!` macro.

use crate::strategy::{Strategy, TestRng};
use rand::SeedableRng;
use std::fmt::Debug;

/// Per-test configuration (the subset the workspace sets).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Cap on discarded cases (`prop_assume!` and filter rejections)
    /// before the run aborts.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion: the whole test fails.
    Fail(String),
    /// The case was discarded (`prop_assume!`): draw a replacement.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Drives a strategy through the configured number of cases.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner whose RNG is seeded from the test name, so each
    /// test sees a stable but distinct input stream.
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            config,
            rng: TestRng::seed_from_u64(seed),
        }
    }

    /// Runs `test` over generated inputs until `cases` successes, a
    /// failure, or the rejection cap. Returns a report on failure.
    pub fn run<S, F>(&mut self, strategy: &S, test: F) -> Result<(), String>
    where
        S: Strategy,
        S::Value: Debug,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < self.config.cases {
            let input = strategy.generate(&mut self.rng);
            let shown = format!("{input:?}");
            match test(input) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        return Err(format!(
                            "too many rejected cases ({rejected}) after {passed} passes"
                        ));
                    }
                }
                Err(TestCaseError::Fail(message)) => {
                    return Err(format!(
                        "property failed after {passed} passing case(s): {message}\n\
                         input: {shown}"
                    ));
                }
            }
        }
        Ok(())
    }
}
