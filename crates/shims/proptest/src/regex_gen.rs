//! Generation of random strings matching a small regex subset.
//!
//! Supported syntax — exactly what the workspace's string strategies use:
//! literals, `[...]` character classes (ranges, `\`-escapes, leading or
//! trailing literal `-`), `(a|b|c)` alternation groups, the quantifiers
//! `{n}`, `{m,n}`, `?`, `*`, `+` (unbounded forms capped at 8 extra
//! repetitions), and `\PC` for "any non-control character".

use crate::strategy::TestRng;
use rand::Rng;

enum Node {
    /// A literal character.
    Lit(char),
    /// One character drawn from an expanded set.
    Class(Vec<char>),
    /// Any printable (non-control) character.
    AnyPrintable,
    /// Alternation: one of the sequences.
    Group(Vec<Vec<Node>>),
    /// The inner node repeated between `min` and `max` times.
    Repeat(Box<Node>, usize, usize),
}

/// Generates a string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let alternatives = parse_alternatives(&chars, &mut pos, pattern);
    assert!(
        pos == chars.len(),
        "regex strategy: unexpected `{}` at offset {pos} in `{pattern}`",
        chars[pos]
    );
    let mut out = String::new();
    emit(&Node::Group(alternatives), rng, &mut out);
    out
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class(set) => out.push(set[rng.gen_range(0..set.len())]),
        Node::AnyPrintable => out.push(printable_char(rng)),
        Node::Group(alternatives) => {
            let seq = &alternatives[rng.gen_range(0..alternatives.len())];
            for n in seq {
                emit(n, rng, out);
            }
        }
        Node::Repeat(inner, min, max) => {
            let count = rng.gen_range(*min..=*max);
            for _ in 0..count {
                emit(inner, rng, out);
            }
        }
    }
}

fn printable_char(rng: &mut TestRng) -> char {
    // Mostly ASCII printable, occasionally multi-byte, to exercise UTF-8
    // handling without drowning parsers in exotic codepoints.
    const WIDE: &[char] = &['é', 'ß', 'λ', 'Ω', '中', '→', '🦀'];
    if rng.gen_bool(0.9) {
        char::from_u32(rng.gen_range(0x20u32..0x7F)).unwrap()
    } else {
        WIDE[rng.gen_range(0..WIDE.len())]
    }
}

fn parse_alternatives(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<Vec<Node>> {
    let mut alternatives = vec![parse_sequence(chars, pos, pattern)];
    while chars.get(*pos) == Some(&'|') {
        *pos += 1;
        alternatives.push(parse_sequence(chars, pos, pattern));
    }
    alternatives
}

fn parse_sequence(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<Node> {
    let mut seq = Vec::new();
    while let Some(&c) = chars.get(*pos) {
        if c == '|' || c == ')' {
            break;
        }
        let atom = parse_atom(chars, pos, pattern);
        seq.push(parse_quantifier(atom, chars, pos, pattern));
    }
    seq
}

fn parse_atom(chars: &[char], pos: &mut usize, pattern: &str) -> Node {
    match chars[*pos] {
        '[' => {
            *pos += 1;
            Node::Class(parse_class(chars, pos, pattern))
        }
        '(' => {
            *pos += 1;
            let alternatives = parse_alternatives(chars, pos, pattern);
            assert!(
                chars.get(*pos) == Some(&')'),
                "regex strategy: unclosed group in `{pattern}`"
            );
            *pos += 1;
            Node::Group(alternatives)
        }
        '\\' => {
            *pos += 1;
            let c = *chars
                .get(*pos)
                .unwrap_or_else(|| panic!("regex strategy: dangling `\\` in `{pattern}`"));
            *pos += 1;
            match c {
                // `\PC`: any char not in the "control" category.
                'P' => {
                    assert!(
                        chars.get(*pos) == Some(&'C'),
                        "regex strategy: only `\\PC` is supported in `{pattern}`"
                    );
                    *pos += 1;
                    Node::AnyPrintable
                }
                'n' => Node::Lit('\n'),
                't' => Node::Lit('\t'),
                'r' => Node::Lit('\r'),
                other => Node::Lit(other),
            }
        }
        '.' => {
            *pos += 1;
            Node::AnyPrintable
        }
        c => {
            *pos += 1;
            Node::Lit(c)
        }
    }
}

fn parse_quantifier(atom: Node, chars: &[char], pos: &mut usize, pattern: &str) -> Node {
    match chars.get(*pos) {
        Some('{') => {
            *pos += 1;
            let min = parse_int(chars, pos, pattern);
            let max = if chars.get(*pos) == Some(&',') {
                *pos += 1;
                parse_int(chars, pos, pattern)
            } else {
                min
            };
            assert!(
                chars.get(*pos) == Some(&'}'),
                "regex strategy: unclosed `{{` in `{pattern}`"
            );
            *pos += 1;
            assert!(
                min <= max,
                "regex strategy: bad repeat bounds in `{pattern}`"
            );
            Node::Repeat(Box::new(atom), min, max)
        }
        Some('?') => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, 1)
        }
        Some('*') => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, 8)
        }
        Some('+') => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 1, 8)
        }
        _ => atom,
    }
}

fn parse_int(chars: &[char], pos: &mut usize, pattern: &str) -> usize {
    let start = *pos;
    while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
        *pos += 1;
    }
    assert!(
        *pos > start,
        "regex strategy: expected a number in `{pattern}`"
    );
    chars[start..*pos]
        .iter()
        .collect::<String>()
        .parse()
        .unwrap()
}

fn parse_class(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    // A literal `]` right after `[` would need escaping; the workspace
    // always escapes it, so `]` here always closes the class.
    while let Some(&c) = chars.get(*pos) {
        if c == ']' {
            *pos += 1;
            assert!(
                !set.is_empty(),
                "regex strategy: empty class in `{pattern}`"
            );
            return set;
        }
        let lo = if c == '\\' {
            *pos += 1;
            let esc = *chars
                .get(*pos)
                .unwrap_or_else(|| panic!("regex strategy: dangling `\\` in `{pattern}`"));
            *pos += 1;
            match esc {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            }
        } else {
            *pos += 1;
            c
        };
        // A `-` forms a range unless it is the last char in the class.
        if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&n| n != ']') {
            *pos += 1; // `-`
            let mut hi = chars[*pos];
            *pos += 1;
            if hi == '\\' {
                hi = chars[*pos];
                *pos += 1;
            }
            assert!(lo <= hi, "regex strategy: inverted range in `{pattern}`");
            for u in lo as u32..=hi as u32 {
                if let Some(ch) = char::from_u32(u) {
                    set.push(ch);
                }
            }
        } else {
            set.push(lo);
        }
    }
    panic!("regex strategy: unclosed `[` in `{pattern}`");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(11)
    }

    #[test]
    fn classes_and_repeats() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z][a-z0-9_]{0,8}", &mut r);
            assert!((1..=9).contains(&s.len()));
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn alternation_groups() {
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let s = generate("(machine|cluster|widget)", &mut r);
            assert!(["machine", "cluster", "widget"].contains(&s.as_str()));
            seen.insert(s);
        }
        assert_eq!(seen.len(), 3, "all alternatives should appear");
    }

    #[test]
    fn escaped_class_members() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z{}\\[\\]=;>, -]{0,80}", &mut r);
            assert!(s.len() <= 80);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || "{}[]=;>, -".contains(c)));
        }
    }

    #[test]
    fn any_printable_is_not_control() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate("\\PC{0,200}", &mut r);
            assert!(s.len() <= 800); // multi-byte chars inflate byte length
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn literal_dash_at_class_end() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[a-zA-Z0-9_.-]{0,30}", &mut r);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)));
        }
    }
}
