//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's signatures: `lock()`
//! returns the guard directly instead of a `Result`. Poisoning is
//! ignored (parking_lot has no poisoning), so a panic while holding the
//! lock does not wedge later lockers.

use std::fmt;
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning its contents.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock whose acquisition methods never fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the next lock() succeeds.
        assert_eq!(*m.lock(), 0);
    }
}
