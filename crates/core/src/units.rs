//! Typed physical quantities used throughout the suite.
//!
//! Mercury deals in a handful of physical units; mixing them up is the
//! classic catastrophic-but-silent bug in thermal code (a `k` in W/K added
//! to a temperature in °C type-checks fine if everything is `f64`). The
//! newtypes in this module make those mistakes compile errors while staying
//! zero-cost: each is a transparent wrapper around `f64` with only the
//! dimensionally meaningful arithmetic defined.
//!
//! ```
//! use mercury::units::{Celsius, Kelvin};
//!
//! let inlet = Celsius(21.6);
//! let hot = Celsius(38.6);
//! let delta: Kelvin = hot - inlet; // temperature differences are Kelvin
//! assert!((delta.0 - 17.0).abs() < 1e-9);
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(pub f64);

        impl $name {
            /// Returns the wrapped value as a raw `f64`.
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` if the wrapped value is finite (not NaN or ±∞).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match f.precision() {
                    Some(p) => write!(f, "{:.*} {}", p, self.0, $suffix),
                    None => write!(f, "{} {}", self.0, $suffix),
                }
            }
        }

        impl From<f64> for $name {
            fn from(v: f64) -> Self {
                $name(v)
            }
        }

        impl From<$name> for f64 {
            fn from(v: $name) -> f64 {
                v.0
            }
        }
    };
}

unit!(
    /// A temperature in degrees Celsius.
    Celsius,
    "°C"
);
unit!(
    /// A temperature *difference* in Kelvin (identical magnitude to a
    /// Celsius difference; kept distinct so that absolute temperatures and
    /// deltas cannot be confused).
    Kelvin,
    "K"
);
unit!(
    /// Power in Watts.
    Watts,
    "W"
);
unit!(
    /// Energy (heat) in Joules.
    Joules,
    "J"
);
unit!(
    /// Mass in kilograms.
    Kilograms,
    "kg"
);
unit!(
    /// Specific heat capacity in J/(kg·K).
    JoulesPerKgKelvin,
    "J/(kg·K)"
);
unit!(
    /// Heat capacity (mass × specific heat) in J/K.
    JoulesPerKelvin,
    "J/K"
);
unit!(
    /// A heat-transfer coefficient (the paper's `k`) in W/K — it already
    /// embodies the surface area of the object.
    WattsPerKelvin,
    "W/K"
);
unit!(
    /// A duration in seconds.
    Seconds,
    "s"
);
unit!(
    /// Volumetric air flow in m³/s.
    CubicMetersPerSecond,
    "m³/s"
);
unit!(
    /// Mass flow in kg/s.
    KilogramsPerSecond,
    "kg/s"
);

/// Density of air at ~25 °C and sea-level pressure, kg/m³.
pub const AIR_DENSITY: f64 = 1.184;

/// Specific heat capacity of air at constant pressure, J/(kg·K).
pub const AIR_SPECIFIC_HEAT: JoulesPerKgKelvin = JoulesPerKgKelvin(1005.0);

/// One cubic foot per minute expressed in m³/s.
pub const CFM_TO_M3S: f64 = 0.000_471_947_443;

impl CubicMetersPerSecond {
    /// Creates a volumetric flow from cubic feet per minute, the unit used
    /// for fan speeds in the paper's Table 1 (e.g. `38.6 ft³/min`).
    pub fn from_cfm(cfm: f64) -> Self {
        CubicMetersPerSecond(cfm * CFM_TO_M3S)
    }

    /// Converts this flow back to cubic feet per minute.
    pub fn to_cfm(self) -> f64 {
        self.0 / CFM_TO_M3S
    }

    /// The air mass flow corresponding to this volumetric flow at standard
    /// air density.
    pub fn mass_flow(self) -> KilogramsPerSecond {
        KilogramsPerSecond(self.0 * AIR_DENSITY)
    }
}

// --- Temperature arithmetic -------------------------------------------------

impl Sub for Celsius {
    type Output = Kelvin;
    fn sub(self, rhs: Celsius) -> Kelvin {
        Kelvin(self.0 - rhs.0)
    }
}

impl Add<Kelvin> for Celsius {
    type Output = Celsius;
    fn add(self, rhs: Kelvin) -> Celsius {
        Celsius(self.0 + rhs.0)
    }
}

impl Sub<Kelvin> for Celsius {
    type Output = Celsius;
    fn sub(self, rhs: Kelvin) -> Celsius {
        Celsius(self.0 - rhs.0)
    }
}

impl AddAssign<Kelvin> for Celsius {
    fn add_assign(&mut self, rhs: Kelvin) {
        self.0 += rhs.0;
    }
}

impl SubAssign<Kelvin> for Celsius {
    fn sub_assign(&mut self, rhs: Kelvin) {
        self.0 -= rhs.0;
    }
}

impl Add for Kelvin {
    type Output = Kelvin;
    fn add(self, rhs: Kelvin) -> Kelvin {
        Kelvin(self.0 + rhs.0)
    }
}

impl Sub for Kelvin {
    type Output = Kelvin;
    fn sub(self, rhs: Kelvin) -> Kelvin {
        Kelvin(self.0 - rhs.0)
    }
}

impl Neg for Kelvin {
    type Output = Kelvin;
    fn neg(self) -> Kelvin {
        Kelvin(-self.0)
    }
}

impl Mul<f64> for Kelvin {
    type Output = Kelvin;
    fn mul(self, rhs: f64) -> Kelvin {
        Kelvin(self.0 * rhs)
    }
}

// --- Heat / power arithmetic -------------------------------------------------

impl Mul<Seconds> for Watts {
    type Output = Joules;
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Kelvin> for WattsPerKelvin {
    type Output = Watts;
    fn mul(self, rhs: Kelvin) -> Watts {
        Watts(self.0 * rhs.0)
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        Watts(iter.map(|w| w.0).sum())
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl Sub for Joules {
    type Output = Joules;
    fn sub(self, rhs: Joules) -> Joules {
        Joules(self.0 - rhs.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl SubAssign for Joules {
    fn sub_assign(&mut self, rhs: Joules) {
        self.0 -= rhs.0;
    }
}

impl Neg for Joules {
    type Output = Joules;
    fn neg(self) -> Joules {
        Joules(-self.0)
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        Joules(iter.map(|j| j.0).sum())
    }
}

impl Div<JoulesPerKelvin> for Joules {
    type Output = Kelvin;
    fn div(self, rhs: JoulesPerKelvin) -> Kelvin {
        Kelvin(self.0 / rhs.0)
    }
}

impl Mul<JoulesPerKgKelvin> for Kilograms {
    type Output = JoulesPerKelvin;
    fn mul(self, rhs: JoulesPerKgKelvin) -> JoulesPerKelvin {
        JoulesPerKelvin(self.0 * rhs.0)
    }
}

/// A component utilization in the closed interval `[0, 1]`.
///
/// Construction clamps NaN to 0 and saturates out-of-range values, because
/// utilizations arrive from noisy sources (`/proc`, UDP messages, traces)
/// and the solver must never be poisoned by a bad sample.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Utilization(f64);

impl Utilization {
    /// Fully idle.
    pub const IDLE: Utilization = Utilization(0.0);
    /// Fully busy.
    pub const FULL: Utilization = Utilization(1.0);

    /// Creates a utilization, clamping to `[0, 1]` and mapping NaN to 0.
    pub fn new(value: f64) -> Self {
        if value.is_nan() {
            Utilization(0.0)
        } else {
            Utilization(value.clamp(0.0, 1.0))
        }
    }

    /// Creates a utilization from a percentage in `[0, 100]`.
    pub fn from_percent(pct: f64) -> Self {
        Utilization::new(pct / 100.0)
    }

    /// The utilization as a fraction in `[0, 1]`.
    pub fn fraction(self) -> f64 {
        self.0
    }

    /// The utilization as a percentage in `[0, 100]`.
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.percent())
    }
}

impl From<f64> for Utilization {
    fn from(v: f64) -> Self {
        Utilization::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_difference_is_kelvin() {
        let d = Celsius(38.6) - Celsius(21.6);
        assert!((d.0 - 17.0).abs() < 1e-12);
    }

    #[test]
    fn celsius_plus_kelvin_round_trips() {
        let t = Celsius(20.0) + Kelvin(5.5);
        assert_eq!(t, Celsius(25.5));
        let t2 = t - Kelvin(5.5);
        assert!((t2.0 - 20.0).abs() < 1e-12);
    }

    #[test]
    fn power_times_time_is_energy() {
        let q = Watts(31.0) * Seconds(2.0);
        assert_eq!(q, Joules(62.0));
    }

    #[test]
    fn conductance_times_delta_is_power() {
        let p = WattsPerKelvin(0.75) * Kelvin(40.0);
        assert!((p.0 - 30.0).abs() < 1e-12);
    }

    #[test]
    fn heat_over_capacity_is_delta_t() {
        let cap = Kilograms(0.151) * JoulesPerKgKelvin(896.0);
        let dt = Joules(135.296) / cap;
        assert!((dt.0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cfm_conversion_matches_table_1_fan() {
        let flow = CubicMetersPerSecond::from_cfm(38.6);
        assert!((flow.0 - 0.018217).abs() < 1e-4);
        assert!((flow.to_cfm() - 38.6).abs() < 1e-9);
        // Mass flow of the paper's fan is about 21.6 g/s.
        let m = flow.mass_flow();
        assert!((m.0 - 0.02157).abs() < 5e-4, "mass flow was {m}");
    }

    #[test]
    fn utilization_clamps_and_rejects_nan() {
        assert_eq!(Utilization::new(-0.5).fraction(), 0.0);
        assert_eq!(Utilization::new(1.5).fraction(), 1.0);
        assert_eq!(Utilization::new(f64::NAN).fraction(), 0.0);
        assert_eq!(Utilization::from_percent(70.0).fraction(), 0.7);
    }

    #[test]
    fn display_includes_units() {
        assert_eq!(format!("{:.1}", Celsius(21.64)), "21.6 °C");
        assert_eq!(format!("{}", Watts(40.0)), "40 W");
        assert_eq!(format!("{}", Utilization::from_percent(12.34)), "12.3%");
    }

    #[test]
    fn joules_sum_and_assign_ops() {
        let mut q = Joules(1.0);
        q += Joules(2.0);
        q -= Joules(0.5);
        assert_eq!(q, Joules(2.5));
        let total: Joules = vec![Joules(1.0), Joules(2.0)].into_iter().sum();
        assert_eq!(total, Joules(3.0));
    }

    #[test]
    fn units_are_serde_transparent() {
        let t = Celsius(21.6);
        let json = serde_json_like(&t);
        assert_eq!(json, "21.6");
    }

    /// Minimal serde check without pulling serde_json into the core crate:
    /// uses the `Serialize` impl through a tiny float writer.
    fn serde_json_like(t: &Celsius) -> String {
        // Celsius is #[serde(transparent)], so serializing it must behave
        // exactly like serializing the inner f64.
        format!("{}", t.0)
    }
}
