//! Always-on telemetry for the UDP front end.
//!
//! [`NetMetrics`] counts datagrams, per-kind requests, replies, and
//! malformed packets, and keeps an inter-arrival histogram — the
//! network-side mirror of the solver bundles in `solver::metrics`.
//! [`SolverService::spawn`](super::SolverService) owns one bundle,
//! registers it on the service registry, and updates it from the request
//! thread; [`Monitord`](super::Monitord) keeps its own client-side
//! [`MonitordStats`].

use super::proto::{Reply, Request};
use telemetry::{Counter, Histogram, Registry};

/// Metric handles updated by the service's request thread.
#[derive(Debug, Clone, Default)]
pub struct NetMetrics {
    /// `mercury_net_datagrams_total` — datagrams received, well-formed
    /// or not.
    pub datagrams: Counter,
    /// `mercury_net_malformed_total` — datagrams that failed to decode.
    pub malformed: Counter,
    /// `mercury_net_replies_total` — reply datagrams sent (a multi-part
    /// scrape counts each part).
    pub replies: Counter,
    /// `mercury_net_interarrival_seconds` — time between consecutive
    /// datagram arrivals, recorded in nanoseconds.
    pub interarrival_nanos: Histogram,
    /// `mercury_net_requests_total{kind="utilization"}`.
    pub requests_utilization: Counter,
    /// `mercury_net_requests_total{kind="read"}`.
    pub requests_read: Counter,
    /// `mercury_net_requests_total{kind="fiddle"}`.
    pub requests_fiddle: Counter,
    /// `mercury_net_requests_total{kind="list"}`.
    pub requests_list: Counter,
    /// `mercury_net_requests_total{kind="ping"}`.
    pub requests_ping: Counter,
    /// `mercury_net_requests_total{kind="scrape"}`.
    pub requests_scrape: Counter,
    /// `mercury_net_requests_total{kind="trace"}`.
    pub requests_trace: Counter,
    /// `mercury_net_requests_total{kind="series"}`.
    pub requests_series: Counter,
}

impl NetMetrics {
    /// Fresh, detached handles (all zero).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the `mercury_net_*` families on `registry`.
    pub fn register(&self, registry: &Registry) {
        registry.register_counter(
            "mercury_net_datagrams_total",
            "UDP datagrams received by the solver service",
            &[],
            &self.datagrams,
        );
        registry.register_counter(
            "mercury_net_malformed_total",
            "Datagrams that failed protocol decoding",
            &[],
            &self.malformed,
        );
        registry.register_counter(
            "mercury_net_replies_total",
            "Reply datagrams sent by the solver service",
            &[],
            &self.replies,
        );
        registry.register_histogram(
            "mercury_net_interarrival_seconds",
            "Time between consecutive received datagrams",
            &[],
            &self.interarrival_nanos,
            1e-9,
        );
        const REQS: &str = "mercury_net_requests_total";
        const HELP: &str = "Well-formed requests handled, by request kind";
        for (kind, handle) in [
            ("utilization", &self.requests_utilization),
            ("read", &self.requests_read),
            ("fiddle", &self.requests_fiddle),
            ("list", &self.requests_list),
            ("ping", &self.requests_ping),
            ("scrape", &self.requests_scrape),
            ("trace", &self.requests_trace),
            ("series", &self.requests_series),
        ] {
            registry.register_counter(REQS, HELP, &[("kind", kind)], handle);
        }
    }

    /// The per-kind counter for a decoded request.
    #[must_use]
    pub fn request_counter(&self, request: &Request) -> &Counter {
        match request {
            Request::UtilizationUpdate { .. } => &self.requests_utilization,
            Request::ReadTemperature { .. } => &self.requests_read,
            Request::Fiddle { .. } => &self.requests_fiddle,
            Request::ListNodes { .. } => &self.requests_list,
            Request::Ping => &self.requests_ping,
            Request::Scrape => &self.requests_scrape,
            Request::TraceDump => &self.requests_trace,
            Request::SeriesQuery { .. } => &self.requests_series,
        }
    }
}

/// Client-side counters kept by one [`Monitord`](super::Monitord)
/// reporting loop.
#[derive(Debug, Clone, Default)]
pub struct MonitordStats {
    /// `mercury_monitord_updates_total` — utilization updates sent.
    pub updates: Counter,
    /// `mercury_monitord_acks_total` — positive acknowledgements
    /// received.
    pub acks: Counter,
    /// `mercury_monitord_malformed_total` — replies that failed to
    /// decode or were not an ack.
    pub malformed: Counter,
    /// `mercury_monitord_send_errors_total` — socket send/receive
    /// failures (including reply timeouts).
    pub send_errors: Counter,
}

impl MonitordStats {
    /// Fresh, detached handles (all zero).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the `mercury_monitord_*` families on `registry`,
    /// labelled with the reporting machine's name.
    pub fn register(&self, registry: &Registry, machine: &str) {
        let labels = [("machine", machine)];
        registry.register_counter(
            "mercury_monitord_updates_total",
            "Utilization updates sent to the solver service",
            &labels,
            &self.updates,
        );
        registry.register_counter(
            "mercury_monitord_acks_total",
            "Acknowledgements received for utilization updates",
            &labels,
            &self.acks,
        );
        registry.register_counter(
            "mercury_monitord_malformed_total",
            "Replies that failed to decode or were unexpected",
            &labels,
            &self.malformed,
        );
        registry.register_counter(
            "mercury_monitord_send_errors_total",
            "Socket errors (send failures and reply timeouts)",
            &labels,
            &self.send_errors,
        );
    }

    /// Books one round-trip outcome. `Ok(ack-or-error-reply)` and
    /// `Err(io)` both come from `Monitord`'s report step.
    pub(crate) fn record_reply(&self, reply: &Reply) {
        match reply {
            Reply::Ack => self.acks.inc(),
            _ => self.malformed.inc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_kinds_map_to_their_counters() {
        let m = NetMetrics::new();
        m.request_counter(&Request::Ping).inc();
        m.request_counter(&Request::Scrape).inc();
        m.request_counter(&Request::Scrape).inc();
        assert_eq!(m.requests_ping.get(), 1);
        assert_eq!(m.requests_scrape.get(), 2);
        assert_eq!(m.requests_read.get(), 0);
    }

    #[test]
    fn registered_families_render_with_kind_labels() {
        let registry = Registry::new();
        let m = NetMetrics::new();
        m.register(&registry);
        m.datagrams.add(7);
        m.requests_ping.inc();
        let text = registry.render_prometheus();
        assert!(text.contains("mercury_net_datagrams_total 7"));
        assert!(text.contains("mercury_net_requests_total{kind=\"ping\"} 1"));
        assert!(text.contains("mercury_net_interarrival_seconds_count"));
    }

    #[test]
    fn monitord_stats_classify_replies() {
        let stats = MonitordStats::new();
        stats.record_reply(&Reply::Ack);
        stats.record_reply(&Reply::Pong);
        assert_eq!(stats.acks.get(), 1);
        assert_eq!(stats.malformed.get(), 1);

        let registry = Registry::new();
        stats.register(&registry, "machine1");
        let text = registry.render_prometheus();
        assert!(text.contains("mercury_monitord_acks_total{machine=\"machine1\"} 1"));
    }
}
