//! The solver service: Mercury's long-running network front end.

use super::metrics::NetMetrics;
use super::proto::{self, Reply, Request};
use crate::error::Error;
use crate::model::{ClusterModel, MachineModel};
use crate::solver::{ClusterSolver, Solver, SolverConfig};
use crate::units::Utilization;
use parking_lot::Mutex;
use std::borrow::Cow;
use std::collections::HashSet;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use telemetry::tsdb::{self, Tsdb, TsdbConfig};
use telemetry::{Registry, Sampler, Severity, Tracer};

/// Most recent spans a [`Request::TraceDump`] answers with. Bounded so a
/// dump stays a few hundred datagrams even when the tracer's ring is at
/// full capacity.
const TRACE_DUMP_SPANS: usize = 2048;

/// A trace dump is a one-shot burst with no flow control, and at a few
/// hundred datagrams it overruns the receiver's socket buffer (~208 KiB
/// by default on Linux) long before the client can drain it. Yielding
/// for a moment every `TRACE_BURST` parts keeps the in-flight window
/// well under that buffer.
const TRACE_BURST: usize = 32;
const TRACE_BURST_PAUSE: Duration = Duration::from_millis(2);

/// Series matched by one [`Request::SeriesQuery`] pattern, at most. A
/// registry snapshot plus per-component temperatures is a few hundred
/// series even for a large room, so the cap only bites on `*` against
/// pathological label cardinality.
const SERIES_QUERY_MAX_SERIES: usize = 512;

/// The emulated system behind a service: one machine or a whole room.
///
/// The variants differ a lot in size, but exactly one instance exists
/// per service thread, so boxing would only add indirection.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum EmulatedSystem {
    /// A single machine.
    Single(Solver),
    /// A cluster with an inter-machine air graph.
    Cluster(ClusterSolver),
}

impl EmulatedSystem {
    fn step(&mut self) {
        match self {
            EmulatedSystem::Single(s) => s.step(),
            EmulatedSystem::Cluster(c) => c.step(),
        }
    }

    fn time(&self) -> f64 {
        match self {
            EmulatedSystem::Single(s) => s.time().0,
            EmulatedSystem::Cluster(c) => c.time().0,
        }
    }

    fn resolve_machine(&mut self, machine: &str) -> Result<&mut Solver, Error> {
        match self {
            EmulatedSystem::Single(s) => {
                if machine.is_empty() || machine == s.machine_name() {
                    Ok(s)
                } else {
                    Err(Error::UnknownMachine {
                        name: machine.to_string(),
                    })
                }
            }
            EmulatedSystem::Cluster(c) => {
                if machine.is_empty() {
                    if c.is_empty() {
                        Err(Error::UnknownMachine {
                            name: String::new(),
                        })
                    } else {
                        Ok(c.machine_at_mut(0))
                    }
                } else {
                    c.machine_mut(machine)
                }
            }
        }
    }

    fn handle(&mut self, request: Request) -> Reply {
        let result = self.try_handle(request);
        match result {
            Ok(reply) => reply,
            Err(e) => Reply::Error {
                message: e.to_string(),
            },
        }
    }

    fn try_handle(&mut self, request: Request) -> Result<Reply, Error> {
        match request {
            Request::Ping => Ok(Reply::Pong),
            Request::ReadTemperature { machine, node } => {
                let time = self.time();
                let solver = self.resolve_machine(&machine)?;
                let t = solver.temperature(&node)?;
                Ok(Reply::Temperature { celsius: t.0, time })
            }
            Request::ListNodes { machine } => {
                let solver = self.resolve_machine(&machine)?;
                Ok(Reply::Nodes {
                    names: solver.node_names().map(str::to_string).collect(),
                })
            }
            Request::UtilizationUpdate {
                machine,
                utilizations,
            } => {
                let solver = self.resolve_machine(&machine)?;
                for (component, util) in utilizations {
                    solver.set_utilization(&component, Utilization::new(util as f64))?;
                }
                Ok(Reply::Ack)
            }
            Request::Fiddle { command } => {
                match self {
                    EmulatedSystem::Single(s) => command.apply(s)?,
                    EmulatedSystem::Cluster(c) => command.apply_to_cluster(c)?,
                }
                Ok(Reply::Ack)
            }
            // Scrapes and trace dumps are answered by the UDP front end
            // straight from the registry/tracer (no solver lock);
            // reaching here means a caller bypassed it.
            Request::Scrape => Err(Error::invalid_input(
                "scrape requests are answered by the service front end, not the solver",
            )),
            Request::TraceDump => Err(Error::invalid_input(
                "trace dumps are answered by the service front end, not the solver",
            )),
            Request::SeriesQuery { .. } => Err(Error::invalid_input(
                "series queries are answered by the service front end, not the solver",
            )),
        }
    }
}

/// Configuration of a [`SolverService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Address to bind the UDP socket to. Use port 0 to pick a free port
    /// (the actual address is available from
    /// [`SolverService::local_addr`]). The paper's example uses port 8367.
    pub bind: SocketAddr,
    /// Wall-clock duration of one emulated tick. One second matches the
    /// paper's real-time deployment; tests and experiments shrink it to
    /// fast-forward.
    pub tick_wall: Duration,
    /// Solver configuration (tick length in *emulated* seconds, etc.).
    pub solver: SolverConfig,
    /// Span tracer shared by the service: the request thread records
    /// the request lifecycle (`net.request` → `net.decode` /
    /// `net.handle` / `net.reply`), a cluster solver records its tick
    /// phases into it, and [`Request::TraceDump`] answers from it. The
    /// default detached tracer makes every span site a no-op.
    pub tracer: Tracer,
    /// Cadence of the background history sampler. `Some(period)` spawns
    /// a [`telemetry::Sampler`] that snapshots the registry and every
    /// monitored component temperature into an embedded time-series
    /// store, which [`Request::SeriesQuery`] answers from. `None` (the
    /// default) keeps history off: no sampling thread runs and series
    /// queries are answered with an error.
    pub sample_every: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            bind: "127.0.0.1:0".parse().expect("valid literal address"),
            tick_wall: Duration::from_secs(1),
            solver: SolverConfig::default(),
            tracer: Tracer::default(),
            sample_every: None,
        }
    }
}

impl ServiceConfig {
    /// A configuration suited to tests: loopback, free port, 1 ms per
    /// emulated second (a 2000 s experiment runs in 2 s of wall time).
    pub fn fast() -> Self {
        ServiceConfig {
            tick_wall: Duration::from_millis(1),
            ..ServiceConfig::default()
        }
    }
}

/// A running solver service: background ticker + UDP request handler.
///
/// ```no_run
/// use mercury::net::{Sensor, ServiceConfig, SolverService};
/// use mercury::presets;
///
/// # fn main() -> Result<(), mercury::Error> {
/// let service = SolverService::spawn_machine(&presets::validation_machine(), ServiceConfig::default())?;
/// let sensor = Sensor::open(service.local_addr(), "", "disk_shell")?;
/// let temp = sensor.read()?;
/// println!("disk is at {temp}");
/// sensor.close();
/// service.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SolverService {
    addr: SocketAddr,
    system: Arc<Mutex<EmulatedSystem>>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    /// The scrape surface: solver and net metrics register here at
    /// spawn; callers may add their own before scraping.
    registry: Arc<Registry>,
    /// The span tracer from [`ServiceConfig::tracer`].
    tracer: Tracer,
    /// The embedded time-series store behind [`Request::SeriesQuery`],
    /// present when [`ServiceConfig::sample_every`] was set.
    history: Option<Arc<Tsdb>>,
    /// The background sampling thread feeding `history`; stopped before
    /// the service threads at shutdown.
    sampler: Option<Sampler>,
}

impl SolverService {
    /// Spawns a service emulating a single machine.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the socket cannot be bound and solver
    /// construction errors for an unusable configuration.
    pub fn spawn_machine(model: &MachineModel, cfg: ServiceConfig) -> Result<Self, Error> {
        let solver = Solver::new(model, cfg.solver.clone())?;
        Self::spawn(EmulatedSystem::Single(solver), cfg)
    }

    /// Spawns a service emulating a cluster.
    ///
    /// # Errors
    ///
    /// As [`SolverService::spawn_machine`].
    pub fn spawn_cluster(model: &ClusterModel, cfg: ServiceConfig) -> Result<Self, Error> {
        let solver = ClusterSolver::new(model, cfg.solver.clone())?;
        Self::spawn(EmulatedSystem::Cluster(solver), cfg)
    }

    fn spawn(mut system: EmulatedSystem, cfg: ServiceConfig) -> Result<Self, Error> {
        let socket = UdpSocket::bind(cfg.bind)?;
        socket.set_read_timeout(Some(Duration::from_millis(20)))?;
        let addr = socket.local_addr()?;

        // Build the scrape surface before the system disappears behind
        // its mutex: the solver's always-on handles register here, so a
        // scrape needs no solver lock. Cluster solvers also adopt the
        // service tracer so tick-phase spans land in the same dump as
        // the request lifecycle.
        let registry = Registry::shared();
        match &mut system {
            EmulatedSystem::Single(s) => s.metrics().register(&registry),
            EmulatedSystem::Cluster(c) => {
                c.metrics().register(&registry);
                c.set_tracer(cfg.tracer.clone());
            }
        }
        let net = NetMetrics::new();
        net.register(&registry);
        crate::build::register_build_info(&registry);

        // Temperature probe list for the history sampler, also built
        // while the system is still in hand: (series, machine index,
        // node index) triples let the sampling thread read temperatures
        // positionally under a brief lock, with no name lookups.
        let probes: Vec<(String, usize, usize)> = if cfg.sample_every.is_some() {
            let mut probes = Vec::new();
            let mut add = |machine_idx: usize, solver: &Solver| {
                for component in solver.monitored_components() {
                    if let Some(node) = solver.node_index(component) {
                        let series = format!("temp/{}/{component}", solver.machine_name());
                        probes.push((series, machine_idx, node));
                    }
                }
            };
            match &system {
                EmulatedSystem::Single(s) => add(0, s),
                EmulatedSystem::Cluster(c) => {
                    for i in 0..c.len() {
                        add(i, c.machine_at(i));
                    }
                }
            }
            probes
        } else {
            Vec::new()
        };

        let system = Arc::new(Mutex::new(system));
        let stop = Arc::new(AtomicBool::new(false));

        // History sampler: at the configured cadence, snapshot every
        // registry metric plus the probed component temperatures into
        // the embedded time-series store. The solver lock is held only
        // while the temperature values are copied out.
        let (history, sampler) = match cfg.sample_every {
            Some(period) => {
                let tsdb = Tsdb::shared(TsdbConfig::default());
                let sys = Arc::clone(&system);
                let extra: telemetry::sampler::ExtraSource = Box::new(move |out| {
                    let sys = sys.lock();
                    out.push(("mercury_emulated_time_seconds".to_string(), sys.time()));
                    for (series, machine, node) in &probes {
                        let celsius = match &*sys {
                            EmulatedSystem::Single(s) => s.temperature_at(*node),
                            EmulatedSystem::Cluster(c) => {
                                c.machine_at(*machine).temperature_at(*node)
                            }
                        };
                        out.push((series.clone(), celsius.0));
                    }
                });
                let sampler =
                    Sampler::spawn(period, Arc::clone(&tsdb), Arc::clone(&registry), extra);
                (Some(tsdb), Some(sampler))
            }
            None => (None, None),
        };

        // Ticker thread: advances emulated time at the configured pace.
        let ticker = {
            let system = Arc::clone(&system);
            let stop = Arc::clone(&stop);
            let pace = cfg.tick_wall;
            std::thread::Builder::new()
                .name("mercury-ticker".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(pace);
                        system.lock().step();
                    }
                })
                .map_err(Error::Io)?
        };

        // Request thread: answers datagrams until shutdown.
        let handler = {
            let system = Arc::clone(&system);
            let stop = Arc::clone(&stop);
            let registry = Arc::clone(&registry);
            let net = net.clone();
            let tracer = cfg.tracer.clone();
            let history = history.clone();
            std::thread::Builder::new()
                .name("mercury-udp".into())
                .spawn(move || {
                    let mut buf = [0u8; proto::MAX_DATAGRAM];
                    let mut last_arrival: Option<Instant> = None;
                    // Malformed traffic is counted per packet but logged
                    // once per distinct peer, so one chattering client
                    // cannot wash everything else out of the event ring.
                    let mut malformed_peers: HashSet<SocketAddr> = HashSet::new();
                    while !stop.load(Ordering::Relaxed) {
                        let (n, peer) = match socket.recv_from(&mut buf) {
                            Ok(ok) => ok,
                            Err(e)
                                if e.kind() == std::io::ErrorKind::WouldBlock
                                    || e.kind() == std::io::ErrorKind::TimedOut =>
                            {
                                continue
                            }
                            Err(_) => break,
                        };
                        net.datagrams.inc();
                        let now = Instant::now();
                        if let Some(prev) = last_arrival.replace(now) {
                            let nanos = u64::try_from(now.duration_since(prev).as_nanos())
                                .unwrap_or(u64::MAX);
                            net.interarrival_nanos.observe(nanos);
                        }
                        let req_span = tracer.start("net.request", "net");
                        let decode_span = tracer.start_child("net.decode", "net", req_span.id());
                        let decoded = proto::decode_request(&buf[..n]);
                        tracer.end(decode_span);
                        match decoded {
                            Ok(Request::Scrape) => {
                                // Answered from the registry alone — a
                                // scrape never blocks on the solver.
                                net.requests_scrape.inc();
                                let text = registry.render_prometheus();
                                for reply in proto::metrics_replies(&text) {
                                    net.replies.inc();
                                    let _ = socket.send_to(&proto::encode_reply(&reply), peer);
                                }
                            }
                            Ok(Request::TraceDump) => {
                                // Answered from the tracer alone. A
                                // detached tracer dumps a single empty
                                // part.
                                net.requests_trace.inc();
                                let spans = tracer.recent(TRACE_DUMP_SPANS);
                                let text = telemetry::trace::to_jsonl(&spans);
                                for (i, reply) in proto::trace_replies(&text).iter().enumerate() {
                                    if i > 0 && i % TRACE_BURST == 0 {
                                        std::thread::sleep(TRACE_BURST_PAUSE);
                                    }
                                    net.replies.inc();
                                    let _ = socket.send_to(&proto::encode_reply(reply), peer);
                                }
                            }
                            Ok(Request::SeriesQuery {
                                pattern,
                                start,
                                end,
                                step,
                                kind,
                            }) => {
                                // Answered from the history store alone
                                // — a series query never blocks on the
                                // solver (the sampler does the locking,
                                // briefly, on its own thread).
                                net.requests_series.inc();
                                let replies = match &history {
                                    Some(db) => {
                                        let mut names = db.match_names(&pattern);
                                        names.truncate(SERIES_QUERY_MAX_SERIES);
                                        let results: Vec<_> = names
                                            .iter()
                                            .map(|n| tsdb::run_query(db, n, kind, start, end, step))
                                            .collect();
                                        proto::series_replies(&tsdb::render_results(&results))
                                    }
                                    None => vec![Reply::Error {
                                        message: "series history is disabled on this service \
                                                  (spawn it with sample_every set)"
                                            .to_string(),
                                    }],
                                };
                                for (i, reply) in replies.iter().enumerate() {
                                    if i > 0 && i % TRACE_BURST == 0 {
                                        std::thread::sleep(TRACE_BURST_PAUSE);
                                    }
                                    net.replies.inc();
                                    let _ = socket.send_to(&proto::encode_reply(reply), peer);
                                }
                            }
                            Ok(request) => {
                                net.request_counter(&request).inc();
                                let handle_span =
                                    tracer.start_child("net.handle", "net", req_span.id());
                                let reply = system.lock().handle(request);
                                tracer.end(handle_span);
                                let reply_span =
                                    tracer.start_child("net.reply", "net", req_span.id());
                                net.replies.inc();
                                let _ = socket.send_to(&proto::encode_reply(&reply), peer);
                                tracer.end(reply_span);
                            }
                            Err(e) => {
                                net.malformed.inc();
                                if tracer.is_active() {
                                    tracer.instant(
                                        "net.malformed",
                                        "net",
                                        req_span.id(),
                                        vec![(Cow::Borrowed("error"), e.to_string())],
                                    );
                                }
                                if malformed_peers.insert(peer) {
                                    let peer_s = peer.to_string();
                                    let error_s = e.to_string();
                                    registry.event(
                                        Severity::Warn,
                                        "malformed datagram",
                                        &[("peer", &peer_s), ("error", &error_s)],
                                    );
                                }
                                let reply = Reply::Error {
                                    message: e.to_string(),
                                };
                                net.replies.inc();
                                let _ = socket.send_to(&proto::encode_reply(&reply), peer);
                            }
                        }
                        if req_span.is_live() {
                            let args = vec![(Cow::Borrowed("peer"), peer.to_string())];
                            tracer.end_with_args(req_span, args);
                        }
                    }
                })
                .map_err(Error::Io)?
        };

        Ok(SolverService {
            addr,
            system,
            stop,
            threads: vec![ticker, handler],
            registry,
            tracer: cfg.tracer,
            history,
            sampler,
        })
    }

    /// The service's telemetry registry — the document a
    /// [`Request::Scrape`] renders. The solver's and the UDP front
    /// end's metric families are registered at spawn; callers (Freon
    /// policies, experiment harnesses) may register more at any time
    /// and they appear in subsequent scrapes.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The service's span tracer (from [`ServiceConfig::tracer`]) — the
    /// store a [`Request::TraceDump`] answers from. Detached unless one
    /// was supplied at spawn.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The address the service is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The embedded time-series store behind [`Request::SeriesQuery`] —
    /// `Some` when the service was spawned with
    /// [`ServiceConfig::sample_every`] set. In-process callers (tests,
    /// experiment harnesses) can query it directly without the wire.
    pub fn history(&self) -> Option<&Arc<Tsdb>> {
        self.history.as_ref()
    }

    /// Runs a closure with exclusive access to the emulated system —
    /// useful for tests and for in-process experiment harnesses that also
    /// expose the system over the network.
    pub fn with_system<R>(&self, f: impl FnOnce(&mut EmulatedSystem) -> R) -> R {
        f(&mut self.system.lock())
    }

    /// Stops the background threads and waits for them to finish.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        // The sampler goes first: it locks the emulated system on its
        // own cadence, and there is no point sampling a stopping
        // service.
        if let Some(sampler) = self.sampler.take() {
            sampler.stop();
        }
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for SolverService {
    fn drop(&mut self) {
        // Both threads poll the stop flag with short timeouts, so joining
        // here never blocks longer than one poll interval.
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fiddle::FiddleCommand;
    use crate::presets;

    fn send(addr: SocketAddr, req: &Request) -> Reply {
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        socket.connect(addr).unwrap();
        socket
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        socket.send(&proto::encode_request(req)).unwrap();
        let mut buf = [0u8; proto::MAX_DATAGRAM];
        let n = socket.recv(&mut buf).unwrap();
        proto::decode_reply(&buf[..n]).unwrap()
    }

    #[test]
    fn ping_pong() {
        let service =
            SolverService::spawn_machine(&presets::validation_machine(), ServiceConfig::fast())
                .unwrap();
        assert_eq!(send(service.local_addr(), &Request::Ping), Reply::Pong);
        service.shutdown();
    }

    #[test]
    fn read_temperature_and_list_nodes() {
        let service =
            SolverService::spawn_machine(&presets::validation_machine(), ServiceConfig::fast())
                .unwrap();
        let addr = service.local_addr();
        let reply = send(
            addr,
            &Request::ReadTemperature {
                machine: String::new(),
                node: "cpu".into(),
            },
        );
        match reply {
            Reply::Temperature { celsius, .. } => assert!(celsius > 0.0),
            other => panic!("unexpected {other:?}"),
        }
        match send(
            addr,
            &Request::ListNodes {
                machine: String::new(),
            },
        ) {
            Reply::Nodes { names } => {
                assert!(names.contains(&"cpu".to_string()));
                assert!(names.contains(&"disk_shell".to_string()));
            }
            other => panic!("unexpected {other:?}"),
        }
        match send(
            addr,
            &Request::ReadTemperature {
                machine: String::new(),
                node: "gpu".into(),
            },
        ) {
            Reply::Error { message } => assert!(message.contains("gpu")),
            other => panic!("unexpected {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn utilization_updates_heat_the_cpu() {
        let service =
            SolverService::spawn_machine(&presets::validation_machine(), ServiceConfig::fast())
                .unwrap();
        let addr = service.local_addr();
        let reply = send(
            addr,
            &Request::UtilizationUpdate {
                machine: String::new(),
                utilizations: vec![("cpu".into(), 1.0)],
            },
        );
        assert_eq!(reply, Reply::Ack);
        // Give the fast ticker a few hundred emulated seconds.
        std::thread::sleep(Duration::from_millis(400));
        match send(
            addr,
            &Request::ReadTemperature {
                machine: String::new(),
                node: "cpu".into(),
            },
        ) {
            Reply::Temperature { celsius, time } => {
                assert!(time > 100.0, "only {time}s elapsed");
                assert!(celsius > 30.0, "cpu only reached {celsius}");
            }
            other => panic!("unexpected {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn fiddle_over_the_wire() {
        let model = presets::validation_machine_named("machine1");
        let service = SolverService::spawn_machine(&model, ServiceConfig::fast()).unwrap();
        let addr = service.local_addr();
        super::super::send_fiddle(
            addr,
            &FiddleCommand::Temperature {
                machine: "machine1".into(),
                node: "inlet".into(),
                celsius: 38.6,
            },
        )
        .unwrap();
        match send(
            addr,
            &Request::ReadTemperature {
                machine: String::new(),
                node: "inlet".into(),
            },
        ) {
            Reply::Temperature { celsius, .. } => assert!((celsius - 38.6).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
        // A fiddle against an unknown machine is a remote error.
        let err = super::super::send_fiddle(
            addr,
            &FiddleCommand::FanSpeed {
                machine: "ghost".into(),
                cfm: 1.0,
            },
        )
        .unwrap_err();
        assert!(matches!(err, Error::Remote { .. }));
        service.shutdown();
    }

    #[test]
    fn cluster_service_routes_by_machine_name() {
        let cluster = presets::validation_cluster(2);
        let service = SolverService::spawn_cluster(&cluster, ServiceConfig::fast()).unwrap();
        let addr = service.local_addr();
        for machine in ["machine1", "machine2"] {
            match send(
                addr,
                &Request::ReadTemperature {
                    machine: machine.into(),
                    node: "cpu".into(),
                },
            ) {
                Reply::Temperature { .. } => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        match send(
            addr,
            &Request::ReadTemperature {
                machine: "machine9".into(),
                node: "cpu".into(),
            },
        ) {
            Reply::Error { message } => assert!(message.contains("machine9")),
            other => panic!("unexpected {other:?}"),
        }
        service.shutdown();
    }

    /// Sends one scrape request and reassembles the multi-part reply.
    fn scrape(addr: SocketAddr) -> String {
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        socket.connect(addr).unwrap();
        socket
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        socket
            .send(&proto::encode_request(&Request::Scrape))
            .unwrap();
        let mut buf = [0u8; proto::MAX_DATAGRAM];
        let mut received = std::collections::BTreeMap::new();
        loop {
            let n = socket.recv(&mut buf).unwrap();
            match proto::decode_reply(&buf[..n]).unwrap() {
                Reply::Metrics { part, parts, text } => {
                    received.insert(part, text);
                    if received.len() == parts as usize {
                        break;
                    }
                }
                other => panic!("unexpected scrape reply {other:?}"),
            }
        }
        received.into_values().collect()
    }

    #[test]
    #[cfg(feature = "instrument")]
    fn scrape_exposes_solver_and_net_families() {
        let service =
            SolverService::spawn_machine(&presets::validation_machine(), ServiceConfig::fast())
                .unwrap();
        let addr = service.local_addr();
        assert_eq!(send(addr, &Request::Ping), Reply::Pong);

        // A malformed datagram is counted, answered with an error, and
        // logged once per peer.
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        socket.connect(addr).unwrap();
        socket
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        socket.send(&[0xEE, 0x01, 0x02]).unwrap();
        let mut buf = [0u8; proto::MAX_DATAGRAM];
        let n = socket.recv(&mut buf).unwrap();
        assert!(matches!(
            proto::decode_reply(&buf[..n]).unwrap(),
            Reply::Error { .. }
        ));

        std::thread::sleep(Duration::from_millis(50));
        let text = scrape(addr);
        let samples = telemetry::text::parse_exposition(&text).unwrap();
        let value = |name: &str| {
            samples
                .iter()
                .filter(|s| s.name == name)
                .map(|s| s.value)
                .sum::<f64>()
        };
        assert!(value("mercury_solver_ticks_total") >= 1.0);
        assert!(value("mercury_net_datagrams_total") >= 3.0);
        assert!(value("mercury_net_malformed_total") >= 1.0);
        assert!(value("mercury_net_requests_total") >= 2.0);

        let events = service.registry().events().recent(16);
        assert!(
            events.iter().any(|e| e.message == "malformed datagram"),
            "missing malformed-datagram event in {events:?}"
        );
        service.shutdown();
    }

    #[test]
    #[cfg(feature = "instrument")]
    fn trace_dump_returns_request_and_tick_spans() {
        let cluster = presets::validation_cluster(2);
        let cfg = ServiceConfig {
            tracer: Tracer::new(4096),
            ..ServiceConfig::fast()
        };
        let service = SolverService::spawn_cluster(&cluster, cfg).unwrap();
        let addr = service.local_addr();
        assert_eq!(send(addr, &Request::Ping), Reply::Pong);
        // Let the ticker record a few cluster ticks.
        std::thread::sleep(Duration::from_millis(50));

        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        socket.connect(addr).unwrap();
        socket
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        socket
            .send(&proto::encode_request(&Request::TraceDump))
            .unwrap();
        let mut buf = [0u8; proto::MAX_DATAGRAM];
        let mut received = std::collections::BTreeMap::new();
        loop {
            let n = socket.recv(&mut buf).unwrap();
            match proto::decode_reply(&buf[..n]).unwrap() {
                Reply::Trace { part, parts, text } => {
                    received.insert(part, text);
                    if received.len() == parts as usize {
                        break;
                    }
                }
                other => panic!("unexpected trace reply {other:?}"),
            }
        }
        let text: String = received.into_values().collect();
        let spans = telemetry::trace::parse_jsonl(&text).unwrap();
        assert!(!spans.is_empty());
        // The ping's full lifecycle is in the dump, parented to one
        // net.request span, alongside the solver's tick spans.
        let req = spans
            .iter()
            .find(|s| s.name == "net.request")
            .expect("request span");
        for name in ["net.decode", "net.handle", "net.reply"] {
            assert!(
                spans.iter().any(|s| s.name == name && s.parent == req.id),
                "missing {name} under net.request"
            );
        }
        assert!(spans.iter().any(|s| s.name == "cluster.tick"));
        service.shutdown();
    }

    /// Sends one series query and reassembles the multi-part reply.
    fn series_query(addr: SocketAddr, req: &Request) -> String {
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        socket.connect(addr).unwrap();
        socket
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        socket.send(&proto::encode_request(req)).unwrap();
        let mut buf = [0u8; proto::MAX_DATAGRAM];
        let mut received = std::collections::BTreeMap::new();
        loop {
            let n = socket.recv(&mut buf).unwrap();
            match proto::decode_reply(&buf[..n]).unwrap() {
                Reply::Series { part, parts, text } => {
                    received.insert(part, text);
                    if received.len() == parts as usize {
                        break;
                    }
                }
                other => panic!("unexpected series reply {other:?}"),
            }
        }
        received.into_values().collect()
    }

    #[test]
    fn series_query_returns_sampled_temperature_history() {
        use telemetry::tsdb::QueryKind;
        let cfg = ServiceConfig {
            sample_every: Some(Duration::from_millis(5)),
            ..ServiceConfig::fast()
        };
        let service = SolverService::spawn_machine(&presets::validation_machine(), cfg).unwrap();
        let addr = service.local_addr();
        // Let the sampler take a couple of dozen snapshots.
        std::thread::sleep(Duration::from_millis(150));

        let text = series_query(
            addr,
            &Request::SeriesQuery {
                pattern: "temp/*".into(),
                start: 0,
                end: u64::MAX,
                step: 1000,
                kind: QueryKind::Raw,
            },
        );
        let results = telemetry::tsdb::parse_results(&text).unwrap();
        let cpu = results
            .iter()
            .find(|r| r.name == "temp/server/cpu")
            .unwrap_or_else(|| panic!("no cpu series in {results:?}"));
        assert!(cpu.points.len() >= 2, "only {} samples", cpu.points.len());
        assert!(cpu
            .points
            .iter()
            .all(|p| p.mean.is_finite() && p.mean > 0.0));
        // Timestamps are the sampler's wall clock, so they ascend.
        assert!(cpu.points.windows(2).all(|w| w[0].t <= w[1].t));

        // The store is also reachable in-process, without the wire.
        let db = service.history().expect("history enabled");
        assert!(db.latest("temp/server/cpu").is_some());
        service.shutdown();
    }

    #[test]
    fn series_query_without_sampling_is_an_error() {
        use telemetry::tsdb::QueryKind;
        let service =
            SolverService::spawn_machine(&presets::validation_machine(), ServiceConfig::fast())
                .unwrap();
        assert!(service.history().is_none());
        match send(
            service.local_addr(),
            &Request::SeriesQuery {
                pattern: "*".into(),
                start: 0,
                end: u64::MAX,
                step: 0,
                kind: QueryKind::Raw,
            },
        ) {
            Reply::Error { message } => assert!(message.contains("disabled")),
            other => panic!("unexpected {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn with_system_gives_exclusive_access() {
        let service =
            SolverService::spawn_machine(&presets::validation_machine(), ServiceConfig::fast())
                .unwrap();
        let name = service.with_system(|sys| match sys {
            EmulatedSystem::Single(s) => s.machine_name().to_string(),
            EmulatedSystem::Cluster(_) => unreachable!(),
        });
        assert_eq!(name, "server");
        service.shutdown();
    }
}
