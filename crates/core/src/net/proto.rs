//! Wire format of the Mercury UDP protocol.
//!
//! Datagrams are small, length-prefixed binary messages. Strings are
//! `u8`-length-prefixed UTF-8 (node and machine names are short);
//! utilizations travel as `f32` (plenty for a `[0, 1]` fraction) and
//! temperatures as `f64`. A typical utilization update — machine name plus
//! a handful of `(component, utilization)` pairs — fits comfortably inside
//! the 128-byte updates the paper describes.

use crate::error::Error;
use crate::fiddle::FiddleCommand;
use bytes::{Buf, BufMut};
use telemetry::tsdb::QueryKind;

/// Largest datagram either side will send or accept.
pub const MAX_DATAGRAM: usize = 1400;

/// Client → service messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `monitord` reporting fresh component utilizations.
    UtilizationUpdate {
        /// Reporting machine.
        machine: String,
        /// `(component, utilization)` pairs.
        utilizations: Vec<(String, f32)>,
    },
    /// Sensor read: the temperature of one node.
    ReadTemperature {
        /// Machine to query; empty string means "the only machine".
        machine: String,
        /// Node to query.
        node: String,
    },
    /// A fiddle command to apply immediately.
    Fiddle {
        /// The command.
        command: FiddleCommand,
    },
    /// List the node names of a machine (used by sensors to validate).
    ListNodes {
        /// Machine to query; empty string means "the only machine".
        machine: String,
    },
    /// Liveness probe.
    Ping,
    /// Scrape the service's telemetry registry (Prometheus text
    /// exposition). Answered by one or more [`Reply::Metrics`]
    /// datagrams, split at line boundaries.
    Scrape,
    /// Dump the service's recent trace spans (JSONL, one span object
    /// per line — see `telemetry::trace`). Answered by one or more
    /// [`Reply::Trace`] datagrams, split at line boundaries like a
    /// scrape. A service without an attached tracer answers with a
    /// single empty part.
    TraceDump,
    /// Query the service's sampled time-series history
    /// (`telemetry::tsdb`). Answered by one or more [`Reply::Series`]
    /// datagrams carrying the line-oriented result text
    /// (`telemetry::tsdb::render_results`), split at line boundaries
    /// like a scrape. A service without sampling enabled answers with
    /// [`Reply::Error`].
    SeriesQuery {
        /// `*`-glob over series names (e.g. `temp/*/cpu`).
        pattern: String,
        /// Range start timestamp, inclusive (service clock:
        /// milliseconds since the Unix epoch).
        start: u64,
        /// Range end timestamp, inclusive.
        end: u64,
        /// Bucket width for downsample/rate queries (same unit).
        step: u64,
        /// What to compute over the range.
        kind: QueryKind,
    },
}

/// Service → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Answer to [`Request::ReadTemperature`].
    Temperature {
        /// Temperature in °C.
        celsius: f64,
        /// Emulated time of the reading, seconds.
        time: f64,
    },
    /// Positive acknowledgement (updates, fiddle).
    Ack,
    /// Answer to [`Request::ListNodes`].
    Nodes {
        /// Node names.
        names: Vec<String>,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// One part of a scraped telemetry exposition. A full scrape rarely
    /// fits [`MAX_DATAGRAM`], so the service splits the document at
    /// metric-line boundaries into `parts` datagrams; `part` counts from
    /// 0 and each carries whole lines, so the client reassembles with
    /// plain concatenation.
    Metrics {
        /// Zero-based index of this part.
        part: u16,
        /// Total parts in the scrape.
        parts: u16,
        /// This part's whole exposition lines.
        text: String,
    },
    /// One part of a span dump ([`Request::TraceDump`]): JSONL span
    /// objects, split at line boundaries exactly like
    /// [`Reply::Metrics`], reassembled by plain concatenation.
    Trace {
        /// Zero-based index of this part.
        part: u16,
        /// Total parts in the dump.
        parts: u16,
        /// This part's whole JSONL lines.
        text: String,
    },
    /// One part of a series-query result ([`Request::SeriesQuery`]):
    /// one series per line, split at line boundaries exactly like
    /// [`Reply::Metrics`], reassembled by plain concatenation.
    Series {
        /// Zero-based index of this part.
        part: u16,
        /// Total parts in the result.
        parts: u16,
        /// This part's whole result lines.
        text: String,
    },
    /// The request failed on the service side.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

const TAG_UTIL: u8 = 0x01;
const TAG_READ: u8 = 0x02;
const TAG_FIDDLE: u8 = 0x03;
const TAG_LIST: u8 = 0x04;
const TAG_PING: u8 = 0x05;
const TAG_SCRAPE: u8 = 0x06;
const TAG_TRACE_DUMP: u8 = 0x07;
const TAG_SERIES_QUERY: u8 = 0x08;

const TAG_TEMP: u8 = 0x81;
const TAG_ACK: u8 = 0x82;
const TAG_NODES: u8 = 0x83;
const TAG_PONG: u8 = 0x84;
const TAG_ERR: u8 = 0x85;
const TAG_METRICS: u8 = 0x86;
const TAG_TRACE: u8 = 0x87;
const TAG_SERIES: u8 = 0x88;

fn put_str(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    debug_assert!(
        bytes.len() <= u8::MAX as usize,
        "protocol strings are short names"
    );
    buf.put_u8(bytes.len().min(255) as u8);
    buf.put_slice(&bytes[..bytes.len().min(255)]);
}

fn get_str(buf: &mut &[u8]) -> Result<String, Error> {
    if buf.remaining() < 1 {
        return Err(Error::protocol("truncated string length"));
    }
    let len = buf.get_u8() as usize;
    if buf.remaining() < len {
        return Err(Error::protocol("truncated string body"));
    }
    let s = std::str::from_utf8(&buf[..len])
        .map_err(|_| Error::protocol("string is not valid UTF-8"))?
        .to_string();
    buf.advance(len);
    Ok(s)
}

/// Encodes a request into a datagram.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::with_capacity(128);
    match req {
        Request::UtilizationUpdate {
            machine,
            utilizations,
        } => {
            buf.put_u8(TAG_UTIL);
            put_str(&mut buf, machine);
            buf.put_u8(utilizations.len().min(255) as u8);
            for (component, util) in utilizations.iter().take(255) {
                put_str(&mut buf, component);
                buf.put_f32(*util);
            }
        }
        Request::ReadTemperature { machine, node } => {
            buf.put_u8(TAG_READ);
            put_str(&mut buf, machine);
            put_str(&mut buf, node);
        }
        Request::Fiddle { command } => {
            buf.put_u8(TAG_FIDDLE);
            // Fiddle commands reuse their script syntax on the wire: the
            // service parses them with the same parser as script files,
            // keeping the two front doors behaviourally identical.
            let line = command.to_string();
            let bytes = line.as_bytes();
            buf.put_u16(bytes.len() as u16);
            buf.put_slice(bytes);
        }
        Request::ListNodes { machine } => {
            buf.put_u8(TAG_LIST);
            put_str(&mut buf, machine);
        }
        Request::Ping => buf.put_u8(TAG_PING),
        Request::Scrape => buf.put_u8(TAG_SCRAPE),
        Request::TraceDump => buf.put_u8(TAG_TRACE_DUMP),
        Request::SeriesQuery {
            pattern,
            start,
            end,
            step,
            kind,
        } => {
            buf.put_u8(TAG_SERIES_QUERY);
            put_str(&mut buf, pattern);
            buf.put_u64(*start);
            buf.put_u64(*end);
            buf.put_u64(*step);
            buf.put_u8(kind.as_u8());
        }
    }
    buf
}

/// Decodes a request datagram.
///
/// # Errors
///
/// Returns [`Error::Protocol`] for truncated, oversized, or malformed
/// payloads.
pub fn decode_request(mut data: &[u8]) -> Result<Request, Error> {
    if data.len() > MAX_DATAGRAM {
        return Err(Error::protocol("datagram exceeds MAX_DATAGRAM"));
    }
    if data.is_empty() {
        return Err(Error::protocol("empty datagram"));
    }
    let buf = &mut data;
    let tag = buf.get_u8();
    match tag {
        TAG_UTIL => {
            let machine = get_str(buf)?;
            if buf.remaining() < 1 {
                return Err(Error::protocol("truncated utilization count"));
            }
            let n = buf.get_u8() as usize;
            let mut utilizations = Vec::with_capacity(n);
            for _ in 0..n {
                let component = get_str(buf)?;
                if buf.remaining() < 4 {
                    return Err(Error::protocol("truncated utilization value"));
                }
                utilizations.push((component, buf.get_f32()));
            }
            Ok(Request::UtilizationUpdate {
                machine,
                utilizations,
            })
        }
        TAG_READ => {
            let machine = get_str(buf)?;
            let node = get_str(buf)?;
            Ok(Request::ReadTemperature { machine, node })
        }
        TAG_FIDDLE => {
            if buf.remaining() < 2 {
                return Err(Error::protocol("truncated fiddle length"));
            }
            let len = buf.get_u16() as usize;
            if buf.remaining() < len {
                return Err(Error::protocol("truncated fiddle body"));
            }
            let line = std::str::from_utf8(&buf[..len])
                .map_err(|_| Error::protocol("fiddle command is not valid UTF-8"))?;
            let script = crate::fiddle::FiddleScript::parse(line)
                .map_err(|e| Error::protocol(format!("bad fiddle command on the wire: {e}")))?;
            let command = script
                .events()
                .first()
                .map(|e| e.command.clone())
                .ok_or_else(|| Error::protocol("fiddle datagram carried no command"))?;
            Ok(Request::Fiddle { command })
        }
        TAG_LIST => Ok(Request::ListNodes {
            machine: get_str(buf)?,
        }),
        TAG_PING => Ok(Request::Ping),
        TAG_SCRAPE => Ok(Request::Scrape),
        TAG_TRACE_DUMP => Ok(Request::TraceDump),
        TAG_SERIES_QUERY => {
            let pattern = get_str(buf)?;
            if buf.remaining() < 25 {
                return Err(Error::protocol("truncated series query"));
            }
            let start = buf.get_u64();
            let end = buf.get_u64();
            let step = buf.get_u64();
            let kind = QueryKind::from_u8(buf.get_u8())
                .ok_or_else(|| Error::protocol("unknown series query kind"))?;
            if start > end {
                return Err(Error::protocol("series query range is inverted"));
            }
            Ok(Request::SeriesQuery {
                pattern,
                start,
                end,
                step,
                kind,
            })
        }
        other => Err(Error::protocol(format!("unknown request tag {other:#04x}"))),
    }
}

/// Splits a multi-line text document into chunks that each fit a
/// part-numbered reply datagram, breaking at line boundaries so every
/// chunk carries whole lines and the client reassembles by plain
/// concatenation. (A single line longer than one datagram is hard-split
/// as a fallback rather than dropped.)
fn chunk_lines(text: &str) -> Vec<String> {
    // Tag + part + parts + length prefix = 7 bytes of header.
    const BUDGET: usize = MAX_DATAGRAM - 7;
    let mut chunks: Vec<String> = vec![String::new()];
    let mut push = |piece: &str| {
        let last = chunks.last_mut().expect("seeded with one chunk");
        if !last.is_empty() && last.len() + piece.len() > BUDGET {
            chunks.push(piece.to_string());
        } else {
            last.push_str(piece);
        }
    };
    for line in text.split_inclusive('\n') {
        let mut rest = line;
        while rest.len() > BUDGET {
            let mut cut = BUDGET;
            while !rest.is_char_boundary(cut) {
                cut -= 1;
            }
            let (head, tail) = rest.split_at(cut);
            push(head);
            rest = tail;
        }
        push(rest);
    }
    chunks
}

/// Splits a rendered telemetry exposition into [`Reply::Metrics`] parts
/// that each encode within [`MAX_DATAGRAM`] (see [`chunk_lines`]).
pub fn metrics_replies(text: &str) -> Vec<Reply> {
    let chunks = chunk_lines(text);
    let parts = chunks.len() as u16;
    chunks
        .into_iter()
        .enumerate()
        .map(|(i, text)| Reply::Metrics {
            part: i as u16,
            parts,
            text,
        })
        .collect()
}

/// Splits a JSONL span dump into [`Reply::Trace`] parts that each
/// encode within [`MAX_DATAGRAM`] (see [`chunk_lines`]). Span objects
/// are one per line, so every part parses on its own.
pub fn trace_replies(text: &str) -> Vec<Reply> {
    let chunks = chunk_lines(text);
    let parts = chunks.len() as u16;
    chunks
        .into_iter()
        .enumerate()
        .map(|(i, text)| Reply::Trace {
            part: i as u16,
            parts,
            text,
        })
        .collect()
}

/// Splits rendered series-query results into [`Reply::Series`] parts
/// that each encode within [`MAX_DATAGRAM`] (see [`chunk_lines`]).
/// Results are one series per line, so every part parses on its own.
pub fn series_replies(text: &str) -> Vec<Reply> {
    let chunks = chunk_lines(text);
    let parts = chunks.len() as u16;
    chunks
        .into_iter()
        .enumerate()
        .map(|(i, text)| Reply::Series {
            part: i as u16,
            parts,
            text,
        })
        .collect()
}

/// Encodes a reply into a datagram.
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match reply {
        Reply::Temperature { celsius, time } => {
            buf.put_u8(TAG_TEMP);
            buf.put_f64(*celsius);
            buf.put_f64(*time);
        }
        Reply::Ack => buf.put_u8(TAG_ACK),
        Reply::Nodes { names } => {
            buf.put_u8(TAG_NODES);
            buf.put_u8(names.len().min(255) as u8);
            for name in names.iter().take(255) {
                put_str(&mut buf, name);
            }
        }
        Reply::Pong => buf.put_u8(TAG_PONG),
        Reply::Metrics { part, parts, text } => {
            buf.put_u8(TAG_METRICS);
            buf.put_u16(*part);
            buf.put_u16(*parts);
            let bytes = text.as_bytes();
            debug_assert!(
                bytes.len() <= MAX_DATAGRAM - 7,
                "metrics part must leave room for its header"
            );
            let len = bytes.len().min(MAX_DATAGRAM - 7);
            buf.put_u16(len as u16);
            buf.put_slice(&bytes[..len]);
        }
        Reply::Trace { part, parts, text } => {
            buf.put_u8(TAG_TRACE);
            buf.put_u16(*part);
            buf.put_u16(*parts);
            let bytes = text.as_bytes();
            debug_assert!(
                bytes.len() <= MAX_DATAGRAM - 7,
                "trace part must leave room for its header"
            );
            let len = bytes.len().min(MAX_DATAGRAM - 7);
            buf.put_u16(len as u16);
            buf.put_slice(&bytes[..len]);
        }
        Reply::Series { part, parts, text } => {
            buf.put_u8(TAG_SERIES);
            buf.put_u16(*part);
            buf.put_u16(*parts);
            let bytes = text.as_bytes();
            debug_assert!(
                bytes.len() <= MAX_DATAGRAM - 7,
                "series part must leave room for its header"
            );
            let len = bytes.len().min(MAX_DATAGRAM - 7);
            buf.put_u16(len as u16);
            buf.put_slice(&bytes[..len]);
        }
        Reply::Error { message } => {
            buf.put_u8(TAG_ERR);
            let bytes = message.as_bytes();
            let len = bytes.len().min(512);
            buf.put_u16(len as u16);
            buf.put_slice(&bytes[..len]);
        }
    }
    buf
}

/// Decodes a reply datagram.
///
/// # Errors
///
/// Returns [`Error::Protocol`] for truncated or malformed payloads.
pub fn decode_reply(mut data: &[u8]) -> Result<Reply, Error> {
    if data.is_empty() {
        return Err(Error::protocol("empty datagram"));
    }
    let buf = &mut data;
    let tag = buf.get_u8();
    match tag {
        TAG_TEMP => {
            if buf.remaining() < 16 {
                return Err(Error::protocol("truncated temperature reply"));
            }
            Ok(Reply::Temperature {
                celsius: buf.get_f64(),
                time: buf.get_f64(),
            })
        }
        TAG_ACK => Ok(Reply::Ack),
        TAG_NODES => {
            if buf.remaining() < 1 {
                return Err(Error::protocol("truncated node count"));
            }
            let n = buf.get_u8() as usize;
            let mut names = Vec::with_capacity(n);
            for _ in 0..n {
                names.push(get_str(buf)?);
            }
            Ok(Reply::Nodes { names })
        }
        TAG_PONG => Ok(Reply::Pong),
        TAG_METRICS => {
            if buf.remaining() < 6 {
                return Err(Error::protocol("truncated metrics header"));
            }
            let part = buf.get_u16();
            let parts = buf.get_u16();
            let len = buf.get_u16() as usize;
            if buf.remaining() < len {
                return Err(Error::protocol("truncated metrics body"));
            }
            if part >= parts {
                return Err(Error::protocol("metrics part index out of range"));
            }
            let text = std::str::from_utf8(&buf[..len])
                .map_err(|_| Error::protocol("metrics text is not valid UTF-8"))?
                .to_string();
            Ok(Reply::Metrics { part, parts, text })
        }
        TAG_TRACE => {
            if buf.remaining() < 6 {
                return Err(Error::protocol("truncated trace header"));
            }
            let part = buf.get_u16();
            let parts = buf.get_u16();
            let len = buf.get_u16() as usize;
            if buf.remaining() < len {
                return Err(Error::protocol("truncated trace body"));
            }
            if part >= parts {
                return Err(Error::protocol("trace part index out of range"));
            }
            let text = std::str::from_utf8(&buf[..len])
                .map_err(|_| Error::protocol("trace text is not valid UTF-8"))?
                .to_string();
            Ok(Reply::Trace { part, parts, text })
        }
        TAG_SERIES => {
            if buf.remaining() < 6 {
                return Err(Error::protocol("truncated series header"));
            }
            let part = buf.get_u16();
            let parts = buf.get_u16();
            let len = buf.get_u16() as usize;
            if buf.remaining() < len {
                return Err(Error::protocol("truncated series body"));
            }
            if part >= parts {
                return Err(Error::protocol("series part index out of range"));
            }
            let text = std::str::from_utf8(&buf[..len])
                .map_err(|_| Error::protocol("series text is not valid UTF-8"))?
                .to_string();
            Ok(Reply::Series { part, parts, text })
        }
        TAG_ERR => {
            if buf.remaining() < 2 {
                return Err(Error::protocol("truncated error length"));
            }
            let len = buf.get_u16() as usize;
            if buf.remaining() < len {
                return Err(Error::protocol("truncated error body"));
            }
            let message = std::str::from_utf8(&buf[..len])
                .map_err(|_| Error::protocol("error message is not valid UTF-8"))?
                .to_string();
            Ok(Reply::Error { message })
        }
        other => Err(Error::protocol(format!("unknown reply tag {other:#04x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let encoded = encode_request(&req);
        let decoded = decode_request(&encoded).unwrap();
        assert_eq!(decoded, req);
    }

    fn round_trip_reply(reply: Reply) {
        let encoded = encode_reply(&reply);
        let decoded = decode_reply(&encoded).unwrap();
        assert_eq!(decoded, reply);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Ping);
        round_trip_request(Request::Scrape);
        round_trip_request(Request::TraceDump);
        round_trip_request(Request::ReadTemperature {
            machine: "machine1".into(),
            node: "disk_shell".into(),
        });
        round_trip_request(Request::ListNodes {
            machine: String::new(),
        });
        round_trip_request(Request::UtilizationUpdate {
            machine: "machine1".into(),
            utilizations: vec![("cpu".into(), 0.75), ("disk_platters".into(), 0.1)],
        });
        round_trip_request(Request::Fiddle {
            command: FiddleCommand::Temperature {
                machine: "machine1".into(),
                node: "inlet".into(),
                celsius: 38.6,
            },
        });
        for kind in [QueryKind::Raw, QueryKind::Downsample, QueryKind::Rate] {
            round_trip_request(Request::SeriesQuery {
                pattern: "temp/*/cpu".into(),
                start: 1_700_000_000_000,
                end: u64::MAX,
                step: 10_000,
                kind,
            });
        }
    }

    #[test]
    fn series_query_validates_on_decode() {
        let good = encode_request(&Request::SeriesQuery {
            pattern: "*".into(),
            start: 10,
            end: 20,
            step: 1,
            kind: QueryKind::Raw,
        });
        assert!(decode_request(&good).is_ok());
        // Unknown kind byte rejected.
        let mut bad_kind = good.clone();
        let last = bad_kind.len() - 1;
        bad_kind[last] = 99;
        assert!(decode_request(&bad_kind).is_err());
        // Inverted range rejected.
        let inverted = encode_request(&Request::SeriesQuery {
            pattern: "*".into(),
            start: 20,
            end: 10,
            step: 1,
            kind: QueryKind::Raw,
        });
        assert!(decode_request(&inverted).is_err());
        for cut in 1..good.len() {
            let _ = decode_request(&good[..cut]); // must not panic
        }
    }

    #[test]
    fn replies_round_trip() {
        round_trip_reply(Reply::Ack);
        round_trip_reply(Reply::Pong);
        round_trip_reply(Reply::Temperature {
            celsius: 35.25,
            time: 1234.0,
        });
        round_trip_reply(Reply::Nodes {
            names: vec!["cpu".into(), "cpu_air".into()],
        });
        round_trip_reply(Reply::Error {
            message: "unknown node `gpu`".into(),
        });
        round_trip_reply(Reply::Metrics {
            part: 1,
            parts: 3,
            text: "mercury_solver_ticks_total 42\n".into(),
        });
        round_trip_reply(Reply::Trace {
            part: 0,
            parts: 2,
            text: "{\"id\":1,\"name\":\"cluster.tick\"}\n".into(),
        });
        round_trip_reply(Reply::Series {
            part: 0,
            parts: 1,
            text: "temp/m1/cpu raw 1:40.5 2:41\n".into(),
        });
    }

    #[test]
    fn series_split_reassembles_and_fits_datagrams() {
        // Many series lines force multiple parts.
        let mut doc = String::new();
        for m in 0..40 {
            doc.push_str(&format!("temp/machine{m}/cpu ds"));
            for b in 0..12 {
                doc.push_str(&format!(" {}:40.1:41.25:42.9", b * 10_000));
            }
            doc.push('\n');
        }
        let replies = series_replies(&doc);
        assert!(replies.len() > 1, "expected a multi-part result");
        let mut reassembled = String::new();
        for (i, reply) in replies.iter().enumerate() {
            let encoded = encode_reply(reply);
            assert!(encoded.len() <= MAX_DATAGRAM, "part {i} oversized");
            match decode_reply(&encoded).unwrap() {
                Reply::Series { part, parts, text } => {
                    assert_eq!(part as usize, i);
                    assert_eq!(parts as usize, replies.len());
                    assert!(text.ends_with('\n'), "parts carry whole lines");
                    reassembled.push_str(&text);
                }
                other => panic!("expected Series, got {other:?}"),
            }
        }
        assert_eq!(reassembled, doc);
        // The reassembled document parses back into structured results.
        let parsed = telemetry::tsdb::parse_results(&reassembled).unwrap();
        assert_eq!(parsed.len(), 40);
        assert_eq!(parsed[0].points.len(), 12);
    }

    #[test]
    fn trace_split_reassembles_and_fits_datagrams() {
        // ~200 span lines: forces multiple parts.
        let mut doc = String::new();
        for i in 1..=200u64 {
            doc.push_str(&format!(
                "{{\"id\":{i},\"parent\":0,\"tid\":0,\"start_ns\":{},\"dur_ns\":10,\
                 \"cat\":\"solver\",\"name\":\"cluster.tick\",\"args\":{{}}}}\n",
                i * 1000
            ));
        }
        let replies = trace_replies(&doc);
        assert!(replies.len() > 1, "expected a multi-part dump");
        let mut reassembled = String::new();
        for (i, reply) in replies.iter().enumerate() {
            let encoded = encode_reply(reply);
            assert!(encoded.len() <= MAX_DATAGRAM, "part {i} oversized");
            match decode_reply(&encoded).unwrap() {
                Reply::Trace { part, parts, text } => {
                    assert_eq!(part as usize, i);
                    assert_eq!(parts as usize, replies.len());
                    assert!(text.ends_with('\n'), "parts carry whole lines");
                    reassembled.push_str(&text);
                }
                other => panic!("expected Trace, got {other:?}"),
            }
        }
        assert_eq!(reassembled, doc);
        // Each reassembled line parses as a span.
        assert_eq!(
            telemetry::trace::parse_jsonl(&reassembled).unwrap().len(),
            200
        );
    }

    #[test]
    fn metrics_split_reassembles_and_fits_datagrams() {
        // ~100 metric lines: forces multiple parts.
        let mut doc = String::new();
        for i in 0..100 {
            doc.push_str(&format!(
                "mercury_test_metric_number_{i}{{label=\"value-{i}\"}} {i}\n"
            ));
        }
        let replies = metrics_replies(&doc);
        assert!(replies.len() > 1, "expected a multi-part scrape");
        let mut reassembled = String::new();
        for (i, reply) in replies.iter().enumerate() {
            let encoded = encode_reply(reply);
            assert!(encoded.len() <= MAX_DATAGRAM, "part {i} oversized");
            match decode_reply(&encoded).unwrap() {
                Reply::Metrics { part, parts, text } => {
                    assert_eq!(part as usize, i);
                    assert_eq!(parts as usize, replies.len());
                    // Every part carries whole lines.
                    assert!(text.ends_with('\n'));
                    reassembled.push_str(&text);
                }
                other => panic!("expected Metrics, got {other:?}"),
            }
        }
        assert_eq!(reassembled, doc);
    }

    #[test]
    fn metrics_part_index_validated() {
        let bad = encode_reply(&Reply::Metrics {
            part: 2,
            parts: 3,
            text: "x 1\n".into(),
        });
        // Corrupt `parts` below `part`.
        let mut raw = bad.clone();
        raw[3] = 0;
        raw[4] = 1;
        assert!(decode_reply(&raw).is_err());
        assert!(decode_reply(&bad).is_ok());
    }

    #[test]
    fn utilization_update_fits_the_papers_128_bytes() {
        // The paper's monitord sends 128-byte UDP messages; a realistic
        // update (machine name + CPU/disk/NIC utilizations) must fit.
        let req = Request::UtilizationUpdate {
            machine: "machine1".into(),
            utilizations: vec![
                ("cpu".into(), 0.73),
                ("disk_platters".into(), 0.21),
                ("nic".into(), 0.05),
            ],
        };
        let bytes = encode_request(&req);
        assert!(bytes.len() <= 128, "update was {} bytes", bytes.len());
    }

    #[test]
    fn truncated_datagrams_error_cleanly() {
        for req in [
            Request::ReadTemperature {
                machine: "m".into(),
                node: "cpu".into(),
            },
            Request::UtilizationUpdate {
                machine: "m".into(),
                utilizations: vec![("cpu".into(), 0.5)],
            },
        ] {
            let full = encode_request(&req);
            for cut in 1..full.len() {
                // Every strict prefix must fail without panicking.
                let _ = decode_request(&full[..cut]);
            }
        }
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[0xFF]).is_err());
        assert!(decode_reply(&[]).is_err());
        assert!(decode_reply(&[0x00]).is_err());
    }

    #[test]
    fn fiddle_wire_format_rejects_garbage() {
        let mut buf = vec![0x03u8];
        buf.extend_from_slice(&(5u16).to_be_bytes());
        buf.extend_from_slice(b"junk!");
        assert!(decode_request(&buf).is_err());
    }

    #[test]
    fn oversized_datagram_rejected() {
        let data = vec![0x05u8; MAX_DATAGRAM + 1];
        assert!(decode_request(&data).is_err());
    }
}
